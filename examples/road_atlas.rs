//! Road atlas: an interactive-style scenario over an urban county.
//!
//! Simulates the workload of a map application backed by a PMR quadtree:
//! pan a viewport across the county (window queries), drop "pins" and
//! snap them to the nearest road (nearest-line queries), and outline the
//! city block under each pin (enclosing-polygon queries). Renders each
//! viewport as ASCII art.
//!
//! ```sh
//! cargo run --release --example road_atlas
//! ```

use lsdb::core::pointgen::TwoStageGen;
use lsdb::core::{queries, IndexConfig, QueryCtx, SpatialIndex};
use lsdb::geom::{Point, Rect, WORLD_SIZE};
use lsdb::pmr::{PmrConfig, PmrQuadtree};
use lsdb::tiger::{generate, CountyClass, CountySpec};

const VIEW_W: i32 = 72;
const VIEW_H: i32 = 28;

fn main() {
    let spec = CountySpec::new("Atlas City", CountyClass::Urban, 8_000, 2024);
    let map = generate(&spec);
    println!("Atlas City: {} road segments\n", map.len());

    let mut pmr = PmrQuadtree::build(
        &map,
        PmrConfig {
            index: IndexConfig::default(),
            ..Default::default()
        },
    );

    // Pins land where the data is: the paper's 2-stage generator.
    let blocks: Vec<Rect> = pmr.leaf_blocks().iter().map(|b| b.rect()).collect();
    let mut pins = TwoStageGen::new(blocks, 99);

    for frame in 0..3 {
        let pin = pins.next_point();
        // Viewport: a 1200x1200 world window centred on the pin.
        let half = 600;
        let x0 = (pin.x - half).clamp(0, WORLD_SIZE - 1 - 2 * half);
        let y0 = (pin.y - half).clamp(0, WORLD_SIZE - 1 - 2 * half);
        let view = Rect::new(x0, y0, x0 + 2 * half, y0 + 2 * half);

        let mut ctx = QueryCtx::new();
        let roads = pmr.window(view, &mut ctx);
        let snapped = pmr.nearest(pin, &mut ctx).expect("city has roads");
        let block_walk = queries::enclosing_polygon(&pmr, pin, 10_000, &mut ctx).unwrap();
        let block: Vec<_> = block_walk.distinct_segments();

        println!("--- frame {frame}: pin at {pin:?} ---");
        println!(
            "viewport {view:?}: {} roads; snapped to segment {:?}; city block of {} segments",
            roads.len(),
            snapped,
            block.len()
        );
        // ASCII render: roads '.', the enclosing block '#', the pin 'X'.
        let mut canvas = vec![vec![' '; VIEW_W as usize]; VIEW_H as usize];
        let plot = |canvas: &mut Vec<Vec<char>>, p: Point, ch: char| {
            let cx = (p.x - view.min.x) as i64 * (VIEW_W as i64 - 1) / (view.width().max(1));
            let cy = (p.y - view.min.y) as i64 * (VIEW_H as i64 - 1) / (view.height().max(1));
            if (0..VIEW_W as i64).contains(&cx) && (0..VIEW_H as i64).contains(&cy) {
                // Screen y grows downward.
                canvas[(VIEW_H as i64 - 1 - cy) as usize][cx as usize] = ch;
            }
        };
        let draw_seg = |canvas: &mut Vec<Vec<char>>, s: lsdb::geom::Segment, ch: char| {
            // Sample along the segment; cheap and good enough for ASCII.
            let steps = 2 * (VIEW_W + VIEW_H);
            for i in 0..=steps {
                let x = s.a.x as i64 + (s.b.x - s.a.x) as i64 * i as i64 / steps as i64;
                let y = s.a.y as i64 + (s.b.y - s.a.y) as i64 * i as i64 / steps as i64;
                plot(canvas, Point::new(x as i32, y as i32), ch);
            }
        };
        for id in &roads {
            draw_seg(&mut canvas, map.segments[id.index()], '.');
        }
        for id in &block {
            draw_seg(&mut canvas, map.segments[id.index()], '#');
        }
        plot(&mut canvas, pin, 'X');
        for row in &canvas {
            println!("{}", row.iter().collect::<String>());
        }
        let s = ctx.stats();
        println!(
            "frame cost: {} disk accesses, {} segment comps, {} bucket comps\n",
            s.disk.total(),
            s.seg_comps,
            s.bbox_comps
        );
    }
}
