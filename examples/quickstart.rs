//! Quickstart: build all three spatial indexes over a synthetic county and
//! run the paper's five queries on each.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lsdb::core::{queries, IndexConfig, QueryCtx, SegId, SpatialIndex};
use lsdb::geom::{Point, Rect};
use lsdb::pmr::{PmrConfig, PmrQuadtree};
use lsdb::rplus::RPlusTree;
use lsdb::rtree::{RTree, RTreeKind};
use lsdb::tiger::{generate, CountyClass, CountySpec};

fn main() {
    // 1. A small suburban county: ~5,000 road segments on the 16K x 16K
    //    integer world, planar by construction.
    let spec = CountySpec::new("Quickstart County", CountyClass::Suburban, 5_000, 7);
    let map = generate(&spec);
    println!("generated {:?}: {} segments", map.name, map.len());

    // 2. Build the paper's three disk-resident structures (1 KB pages,
    //    16-page LRU buffer pool).
    let cfg = IndexConfig::default();
    let indexes: Vec<Box<dyn SpatialIndex>> = vec![
        Box::new(RTree::build(&map, cfg, RTreeKind::RStar)),
        Box::new(RPlusTree::build(&map, cfg)),
        Box::new(PmrQuadtree::build(
            &map,
            PmrConfig {
                index: cfg,
                ..Default::default()
            },
        )),
    ];
    for idx in &indexes {
        println!(
            "built {:<12} | {:>6} KB on disk",
            idx.name(),
            idx.size_bytes() / 1024
        );
    }

    // 3. The five queries of the paper, on each structure.
    let some_seg = SegId(42);
    let endpoint = map.segments[some_seg.index()].a;
    let center = Point::new(8_192, 8_192);
    let window = Rect::new(8_000, 8_000, 8_600, 8_600);

    for idx in &indexes {
        // Queries never mutate the index: everything they count goes into
        // a per-query context, so one index could serve many threads.
        let idx = idx.as_ref();
        let mut ctx = QueryCtx::new();
        println!("\n=== {} ===", idx.name());

        // Query 1: segments incident at an endpoint.
        let incident = idx.find_incident(endpoint, &mut ctx);
        println!("Q1 incident at {endpoint:?}: {} segments", incident.len());

        // Query 2: segments at the *other* endpoint of segment 42.
        let second = queries::second_endpoint(idx, some_seg, endpoint, &mut ctx);
        println!(
            "Q2 at the far endpoint of {some_seg:?}: {} segments",
            second.len()
        );

        // Query 3: nearest segment to the map center.
        let nearest = idx.nearest(center, &mut ctx).expect("non-empty map");
        let d = map.segments[nearest.index()]
            .dist2_point(center)
            .to_f64()
            .sqrt();
        println!("Q3 nearest to {center:?}: {nearest:?} at distance {d:.1}");

        // Extension: ranked k-nearest retrieval from the same best-first
        // search.
        let top3 = idx.nearest_k(center, 3, &mut ctx);
        println!("Q3+ three nearest: {top3:?}");

        // Query 4: the polygon (city block / field) around the center.
        let walk = queries::enclosing_polygon(idx, center, 10_000, &mut ctx).unwrap();
        println!(
            "Q4 enclosing polygon: {} boundary segments (closed: {})",
            walk.len(),
            walk.closed
        );

        // Query 5: everything in a window.
        let hits = idx.window(window, &mut ctx);
        println!("Q5 window {window:?}: {} segments", hits.len());

        // The paper's three metrics, accumulated over the five queries.
        let s = ctx.stats();
        println!(
            "metrics: {} disk accesses, {} segment comps, {} bbox/bucket comps",
            s.disk.total(),
            s.seg_comps,
            s.bbox_comps
        );
    }
}
