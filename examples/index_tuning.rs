//! Index tuning: how page size, buffer-pool size, splitting threshold and
//! structure choice trade off for a fixed workload — the operational
//! version of the paper's Figure 6 and §7 discussion.
//!
//! ```sh
//! cargo run --release --example index_tuning
//! ```

use lsdb::core::pointgen::WindowGen;
use lsdb::core::{IndexConfig, QueryCtx, QueryStats, SpatialIndex};
use lsdb::grid::UniformGrid;
use lsdb::pmr::{PmrConfig, PmrQuadtree};
use lsdb::rplus::RPlusTree;
use lsdb::rtree::{RTree, RTreeKind};
use lsdb::tiger::{generate, CountyClass, CountySpec};

fn main() {
    let spec = CountySpec::new(
        "Tuning County",
        CountyClass::Rural { meander: 24 },
        6_000,
        5,
    );
    let map = generate(&spec);
    println!(
        "workload: 200 window queries (0.01% area) over {} segments\n",
        map.len()
    );

    let mut windows = Vec::new();
    let mut gen = WindowGen::new(0.0001, 31);
    for _ in 0..200 {
        windows.push(gen.next_window());
    }
    let run = |idx: &dyn SpatialIndex| -> (u64, u64) {
        // One fresh context per window query; the totals are the sum of
        // the per-query counters (and independent of query order).
        let mut total = QueryStats::default();
        let mut ctx = QueryCtx::new();
        for &w in &windows {
            ctx.reset();
            idx.window(w, &mut ctx);
            total.add(ctx.stats());
        }
        (total.disk.total(), total.seg_comps)
    };

    println!("PMR quadtree: page size x buffer pool (disk accesses for the workload)");
    print!("{:>8}", "");
    for pool in [8, 16, 32, 64] {
        print!("{:>10}", format!("{pool}p"));
    }
    println!();
    for page in [512usize, 1024, 2048, 4096] {
        print!("{:>8}", format!("{page}B"));
        for pool in [8usize, 16, 32, 64] {
            let cfg = IndexConfig {
                page_size: page,
                pool_pages: pool,
                ..Default::default()
            };
            let pmr = PmrQuadtree::build(
                &map,
                PmrConfig {
                    index: cfg,
                    ..Default::default()
                },
            );
            let (disk, _) = run(&pmr);
            print!("{disk:>10}");
        }
        println!();
    }

    println!("\nPMR splitting threshold (1 KB pages): storage vs work");
    for t in [2usize, 4, 8, 16, 32, 64] {
        let mut pmr = PmrQuadtree::build(
            &map,
            PmrConfig {
                threshold: t,
                ..Default::default()
            },
        );
        let size_kb = pmr.size_bytes() / 1024;
        let occ = pmr.avg_bucket_occupancy();
        let (disk, segs) = run(&pmr);
        println!(
            "  t={t:<3} {size_kb:>6} KB   occupancy {occ:>5.1}   disk {disk:>6}   seg comps {segs:>7}"
        );
    }

    println!("\nstructure comparison at the paper's configuration (1 KB / 16 pages):");
    let cfg = IndexConfig::default();
    let structures: Vec<Box<dyn SpatialIndex>> = vec![
        Box::new(RTree::build(&map, cfg, RTreeKind::RStar)),
        Box::new(RTree::build(&map, cfg, RTreeKind::Quadratic)),
        Box::new(RTree::build(&map, cfg, RTreeKind::Linear)),
        Box::new(RPlusTree::build(&map, cfg)),
        Box::new(PmrQuadtree::build(
            &map,
            PmrConfig {
                index: cfg,
                ..Default::default()
            },
        )),
        Box::new(UniformGrid::build(&map, cfg, 64)),
    ];
    for idx in &structures {
        let size_kb = idx.size_bytes() / 1024;
        let (disk, segs) = run(idx.as_ref());
        println!(
            "  {:<18} {size_kb:>6} KB   disk {disk:>6}   seg comps {segs:>7}",
            idx.name()
        );
    }
}
