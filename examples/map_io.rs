//! Map generation, validation and file round-tripping.
//!
//! Generates the paper's six synthetic counties at a reduced scale,
//! validates their planarity, saves them in the `.lsdbmap` binary format,
//! reloads them, and prints per-county shape statistics (the properties
//! the experiments depend on).
//!
//! ```sh
//! cargo run --release --example map_io
//! ```

use lsdb::core::PolygonalMap;
use lsdb::tiger::{io, the_six_counties};

fn main() {
    let dir = std::env::temp_dir().join("lsdb-example-maps");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    println!("writing maps to {}\n", dir.display());
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>10} {:>9}",
        "county", "segments", "avg len", "deg-2 share", "file KB", "reload"
    );
    for spec in the_six_counties() {
        // One tenth of the paper's scale keeps this example snappy.
        let spec = spec.with_target(5_000);
        let map = io::load_or_generate(&spec, &dir);
        map.validate_planar().expect("generated maps are planar");

        let avg_len = map
            .segments
            .iter()
            .map(|s| (s.len2() as f64).sqrt())
            .sum::<f64>()
            / map.len() as f64;
        let incidence = map.vertex_incidence();
        let deg2 =
            incidence.values().filter(|v| v.len() == 2).count() as f64 / incidence.len() as f64;

        let path = dir.join(format!(
            "{}-{}.lsdbmap",
            spec.name.to_lowercase().replace(' ', "-"),
            spec.target_segments
        ));
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let reloaded: PolygonalMap = io::load(&path).expect("reload");
        assert_eq!(reloaded.segments, map.segments, "round-trip must be exact");

        println!(
            "{:<14} {:>8} {:>10.1} {:>11.0}% {:>10} {:>9}",
            map.name,
            map.len(),
            avg_len,
            deg2 * 100.0,
            bytes / 1024,
            "ok"
        );
    }
    println!("\nurban counties: long segments, intersection-dominated vertices;");
    println!("rural counties: short meander segments, chain-dominated vertices -");
    println!("the distinction that drives the paper's polygon-query numbers.");
}
