//! Umbrella crate re-exporting the full lsdb public API.
pub use lsdb_bench as bench;
pub use lsdb_btree as btree;
pub use lsdb_core as core;
pub use lsdb_geom as geom;
pub use lsdb_grid as grid;
pub use lsdb_pager as pager;
pub use lsdb_pmr as pmr;
pub use lsdb_repr as repr;
pub use lsdb_rng as rng;
pub use lsdb_rplus as rplus;
pub use lsdb_rtree as rtree;
pub use lsdb_server as server;
pub use lsdb_tiger as tiger;
