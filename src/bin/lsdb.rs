//! `lsdb` — command-line utility over the line-segment-database library.
//!
//! ```text
//! lsdb generate --county charles -o charles.lsdbmap [--segments N] [--seed S]
//! lsdb generate --class urban --segments 20000 --seed 7 -o city.lsdbmap
//! lsdb info MAP
//! lsdb build MAP [--structure rstar|rplus|pmr|grid] [--page-size B] [--pool P]
//! lsdb query MAP --structure pmr incident X Y
//! lsdb query MAP --structure rstar nearest X Y
//! lsdb query MAP --structure rplus knn X Y K
//! lsdb query MAP --structure pmr window X0 Y0 X1 Y1
//! lsdb query MAP --structure pmr polygon X Y
//! ```
//!
//! Every query prints its answer and the paper's three metrics for it.

use lsdb::core::{queries, IndexConfig, PolygonalMap, QueryCtx, SegId, SpatialIndex};
use lsdb::geom::{Point, Rect};
use lsdb::tiger::{self, io, CountyClass, CountySpec};
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            print_usage();
            2
        }
    };
    exit(code);
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         lsdb generate (--county NAME | --class urban|suburban|rural) \\\n      \
              [--segments N] [--seed S] -o FILE\n  \
         lsdb info FILE\n  \
         lsdb build FILE [--structure rstar|rplus|pmr|grid] [--page-size B] [--pool P]\n  \
         lsdb query FILE --structure S incident X Y\n  \
         lsdb query FILE --structure S nearest X Y\n  \
         lsdb query FILE --structure S knn X Y K\n  \
         lsdb query FILE --structure S window X0 Y0 X1 Y1\n  \
         lsdb query FILE --structure S polygon X Y"
    );
}

/// Pull `--flag value` out of an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn parse_or_die<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {what}: `{s}`");
        exit(2)
    })
}

fn cmd_generate(rest: &[String]) -> i32 {
    let mut args = rest.to_vec();
    let county = take_flag(&mut args, "--county");
    let class = take_flag(&mut args, "--class");
    let segments = take_flag(&mut args, "--segments");
    let seed = take_flag(&mut args, "--seed");
    let out = match take_flag(&mut args, "-o").or_else(|| take_flag(&mut args, "--out")) {
        Some(o) => o,
        None => {
            eprintln!("generate requires -o FILE");
            return 2;
        }
    };
    let mut spec: CountySpec = match (county, class) {
        (Some(name), None) => match tiger::county(&name) {
            Some(s) => s,
            None => {
                eprintln!(
                    "unknown county `{name}`; the six are: {}",
                    tiger::the_six_counties()
                        .iter()
                        .map(|c| c.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return 2;
            }
        },
        (None, Some(class)) => {
            let class = match class.as_str() {
                "urban" => CountyClass::Urban,
                "suburban" => CountyClass::Suburban,
                "rural" => CountyClass::Rural { meander: 24 },
                other => {
                    eprintln!("unknown class `{other}` (urban|suburban|rural)");
                    return 2;
                }
            };
            CountySpec::new("custom", class, 20_000, 1)
        }
        _ => {
            eprintln!("generate needs exactly one of --county or --class");
            return 2;
        }
    };
    if let Some(n) = segments {
        spec = spec.with_target(parse_or_die(&n, "--segments"));
    }
    if let Some(s) = seed {
        spec.seed = parse_or_die(&s, "--seed");
    }
    let map = tiger::generate(&spec);
    if let Err(v) = map.validate_planar() {
        eprintln!("internal error: generated map is not planar ({v:?})");
        return 1;
    }
    if let Err(e) = io::save(&map, Path::new(&out)) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    println!("wrote {} ({} segments) to {out}", map.name, map.len());
    0
}

fn load_map(path: &str) -> PolygonalMap {
    io::load(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    })
}

fn cmd_info(rest: &[String]) -> i32 {
    let Some(path) = rest.first() else {
        eprintln!("info needs a map file");
        return 2;
    };
    let map = load_map(path);
    println!("name      : {}", map.name);
    println!("segments  : {}", map.len());
    if let Some(b) = map.bbox() {
        println!("bbox      : {b:?}");
    }
    let inc = map.vertex_incidence();
    println!("vertices  : {}", inc.len());
    let mut hist = [0usize; 8];
    for v in inc.values() {
        hist[v.len().min(7)] += 1;
    }
    for (d, n) in hist.iter().enumerate().skip(1) {
        if *n > 0 {
            println!("  degree {d}{}: {n}", if d == 7 { "+" } else { " " });
        }
    }
    match map.validate_planar() {
        Ok(()) => println!("planarity : ok"),
        Err(v) => println!("planarity : VIOLATED by segments {} and {}", v.first, v.second),
    }
    0
}

fn structure_flag(args: &mut Vec<String>) -> String {
    take_flag(args, "--structure").unwrap_or_else(|| "pmr".to_string())
}

fn build_structure(
    name: &str,
    map: &PolygonalMap,
    cfg: IndexConfig,
) -> Option<Box<dyn SpatialIndex>> {
    Some(match name {
        "rstar" => Box::new(lsdb::rtree::RTree::build(map, cfg, lsdb::rtree::RTreeKind::RStar)),
        "rquad" => Box::new(lsdb::rtree::RTree::build(map, cfg, lsdb::rtree::RTreeKind::Quadratic)),
        "rlin" => Box::new(lsdb::rtree::RTree::build(map, cfg, lsdb::rtree::RTreeKind::Linear)),
        "rplus" => Box::new(lsdb::rplus::RPlusTree::build(map, cfg)),
        "pmr" => Box::new(lsdb::pmr::PmrQuadtree::build(
            map,
            lsdb::pmr::PmrConfig { index: cfg, ..Default::default() },
        )),
        "grid" => Box::new(lsdb::grid::UniformGrid::build(map, cfg, 64)),
        _ => {
            eprintln!("unknown structure `{name}` (rstar|rquad|rlin|rplus|pmr|grid)");
            return None;
        }
    })
}

fn cmd_build(rest: &[String]) -> i32 {
    let mut args = rest.to_vec();
    let structure = structure_flag(&mut args);
    let page = take_flag(&mut args, "--page-size")
        .map(|v| parse_or_die(&v, "--page-size"))
        .unwrap_or(1024usize);
    let pool = take_flag(&mut args, "--pool")
        .map(|v| parse_or_die(&v, "--pool"))
        .unwrap_or(16usize);
    let Some(path) = args.first() else {
        eprintln!("build needs a map file");
        return 2;
    };
    let map = load_map(path);
    let cfg = IndexConfig { page_size: page, pool_pages: pool };
    let start = std::time::Instant::now();
    let Some(mut idx) = build_structure(&structure, &map, cfg) else {
        return 2;
    };
    let secs = start.elapsed().as_secs_f64();
    idx.clear_cache();
    let s = idx.stats();
    println!("structure     : {}", idx.name());
    println!("segments      : {}", idx.len());
    println!("size          : {} KB ({} B pages, {}-page pool)", idx.size_bytes() / 1024, page, pool);
    println!("build disk    : {} accesses ({} reads, {} writes)", s.disk.total(), s.disk.reads, s.disk.writes);
    println!("build cpu     : {secs:.2} s");
    0
}

fn cmd_query(rest: &[String]) -> i32 {
    let mut args = rest.to_vec();
    let structure = structure_flag(&mut args);
    if args.len() < 2 {
        eprintln!("query needs a map file and a query");
        return 2;
    }
    let map = load_map(&args[0]);
    let cfg = IndexConfig::default();
    let Some(idx) = build_structure(&structure, &map, cfg) else {
        return 2;
    };
    let mut ctx = QueryCtx::new();
    let q = args[1].as_str();
    let coords: Vec<i32> = args[2..]
        .iter()
        .map(|v| parse_or_die::<i32>(v, "coordinate"))
        .collect();
    let print_segs = |ids: &[SegId], map: &PolygonalMap| {
        for id in ids {
            println!("  {:?}: {:?}", id, map.segments[id.index()]);
        }
    };
    match (q, coords.len()) {
        ("incident", 2) => {
            let got = idx.find_incident(Point::new(coords[0], coords[1]), &mut ctx);
            println!("{} incident segments:", got.len());
            print_segs(&got, &map);
        }
        ("nearest", 2) => {
            let p = Point::new(coords[0], coords[1]);
            match idx.nearest(p, &mut ctx) {
                Some(id) => {
                    let d = map.segments[id.index()].dist2_point(p).to_f64().sqrt();
                    println!("nearest segment (distance {d:.2}):");
                    print_segs(&[id], &map);
                }
                None => println!("empty map"),
            }
        }
        ("knn", 3) => {
            let p = Point::new(coords[0], coords[1]);
            let got = idx.nearest_k(p, coords[2].max(0) as usize, &mut ctx);
            println!("{} nearest segments:", got.len());
            for id in &got {
                let d = map.segments[id.index()].dist2_point(p).to_f64().sqrt();
                println!("  {:?} at {d:.2}: {:?}", id, map.segments[id.index()]);
            }
        }
        ("window", 4) => {
            let w = Rect::bounding(Point::new(coords[0], coords[1]), Point::new(coords[2], coords[3]));
            let got = idx.window(w, &mut ctx);
            println!("{} segments in {w:?}:", got.len());
            print_segs(&got, &map);
        }
        ("polygon", 2) => {
            let p = Point::new(coords[0], coords[1]);
            match queries::enclosing_polygon(idx.as_ref(), p, map.len() * 2 + 16, &mut ctx) {
                Some(walk) => {
                    println!(
                        "enclosing polygon: {} boundary segments (closed: {}):",
                        walk.len(),
                        walk.closed
                    );
                    print_segs(&walk.distinct_segments(), &map);
                }
                None => println!("empty map"),
            }
        }
        _ => {
            eprintln!("unknown query `{q}` or wrong number of coordinates");
            return 2;
        }
    }
    let s = ctx.stats();
    println!(
        "[{}] {} disk accesses, {} segment comps, {} bbox/bucket comps",
        idx.name(),
        s.disk.total(),
        s.seg_comps,
        s.bbox_comps
    );
    0
}
