//! `lsdb` — command-line utility over the line-segment-database library.
//!
//! ```text
//! lsdb generate --county charles -o charles.lsdbmap [--segments N] [--seed S]
//! lsdb generate --class urban --segments 20000 --seed 7 -o city.lsdbmap
//! lsdb info MAP
//! lsdb build MAP [--structure rstar|rplus|pmr|grid] [--page-size B] [--pool P]
//! lsdb query MAP --structure pmr incident X Y
//! lsdb query MAP --structure rstar nearest X Y
//! lsdb query MAP --structure rplus knn X Y K
//! lsdb query MAP --structure pmr window X0 Y0 X1 Y1
//! lsdb query MAP --structure pmr polygon X Y
//! lsdb query MAP --structure pmr --stdin        # one query per line
//! lsdb serve MAP --structure pmr --port 4750 --workers 4 [--max-frame B] \
//!      [--store DIR] [--bulk]
//! lsdb serve --continent 16 --county-segments 50000 --budget 8388608 \
//!      --max-open 8 --bulk --structure rstar
//! lsdb bench-client MAP --addr 127.0.0.1:4750 --workload range \
//!      --queries 1000 --connections 4
//! lsdb bench-client MAP --addr 127.0.0.1:4750 --workload range --open-loop 5000
//! lsdb bench-client MAP --addr 127.0.0.1:4750 --workload polygon2 --batch
//! lsdb bench-client --addr 127.0.0.1:4750 --multimap 16 --open-loop 2000 \
//!      --zipf 1.0 --county-segments 50000
//! ```
//!
//! Every query prints its answer and the paper's three metrics for it.
//! `serve` exposes the built structure over the lsdb wire protocol (v3,
//! with v1/v2 compatibility); with `--store DIR` the server also accepts
//! `INSERT`/`DELETE`/`FLUSH`, journaling every acknowledged mutation to
//! `DIR/ops.wal` (checkpointed into `DIR/ops.pages`) and replaying the
//! log over the freshly built index on restart, so acknowledged writes
//! survive a crash. With `--continent N` it instead hosts a catalog of N
//! deterministic county maps behind one port — maps open lazily, close
//! under `--max-open` pressure, and share one `--budget` of page-pool
//! bytes. Its config is seeded from the environment
//! ([`lsdb::server::ServerConfig::from_env`]) with flags taking
//! precedence. `bench-client` is the matching load generator: closed
//! loop by default, open loop at a fixed arrival rate with `--open-loop
//! QPS` (tail percentiles up to p999), a single locality-sorted `BATCH`
//! frame with `--batch`, or the multi-map mode with `--multimap K`
//! (Zipf map popularity, per-map counters, budget gauge).

use lsdb::core::{queries, IndexConfig, PolygonalMap, QueryCtx, SegId, SpatialIndex};
use lsdb::geom::{Point, Rect};
use lsdb::tiger::{self, io, CountyClass, CountySpec};
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-client") => cmd_bench_client(&args[1..]),
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            print_usage();
            2
        }
    };
    exit(code);
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         lsdb generate (--county NAME | --class urban|suburban|rural) \\\n      \
              [--segments N] [--seed S] -o FILE\n  \
         lsdb info FILE\n  \
         lsdb build FILE [--structure rstar|rplus|pmr|grid] [--page-size B] [--pool P]\n  \
         lsdb query FILE --structure S incident X Y\n  \
         lsdb query FILE --structure S nearest X Y\n  \
         lsdb query FILE --structure S knn X Y K\n  \
         lsdb query FILE --structure S window X0 Y0 X1 Y1\n  \
         lsdb query FILE --structure S polygon X Y\n  \
         lsdb query FILE --structure S --stdin\n  \
         lsdb serve FILE [--structure S] [--addr HOST] [--port P] [--workers W] \\\n      \
              [--max-frame B] [--page-size B] [--pool P] [--store DIR] [--bulk] \\\n      \
              [--cache-bytes B] [--verbose]\n  \
         lsdb serve --continent N [--county-segments S] [--continent-seed S] \\\n      \
              [--budget BYTES] [--max-open M] [--bulk] [--structure S] \\\n      \
              [--cache-bytes B] [--verbose] [...]\n  \
         lsdb bench-client FILE --addr HOST:PORT [--workload W] [--queries N] \\\n      \
              [--connections C] [--seed S] [--open-loop QPS | --batch] \\\n      \
              [--cache] [--shutdown]\n  \
         lsdb bench-client --addr HOST:PORT --multimap K [--open-loop QPS] \\\n      \
              [--zipf THETA] [--county-segments S] [--continent-seed S] [...]\n\n\
         bench-client workloads: point1 point2 nearest1 nearest2 polygon1 polygon2 range\n\
         serve env fallbacks: LSDB_SERVER_WORKERS (or LSDB_THREADS), \
         LSDB_SERVER_READ_TIMEOUT_MS,\n\
         LSDB_SERVER_WRITE_TIMEOUT_MS, LSDB_SERVER_MAX_FRAME, LSDB_SERVER_VERBOSE"
    );
}

/// Pull `--flag value` out of an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn parse_or_die<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {what}: `{s}`");
        exit(2)
    })
}

fn cmd_generate(rest: &[String]) -> i32 {
    let mut args = rest.to_vec();
    let county = take_flag(&mut args, "--county");
    let class = take_flag(&mut args, "--class");
    let segments = take_flag(&mut args, "--segments");
    let seed = take_flag(&mut args, "--seed");
    let out = match take_flag(&mut args, "-o").or_else(|| take_flag(&mut args, "--out")) {
        Some(o) => o,
        None => {
            eprintln!("generate requires -o FILE");
            return 2;
        }
    };
    let mut spec: CountySpec = match (county, class) {
        (Some(name), None) => match tiger::county(&name) {
            Some(s) => s,
            None => {
                eprintln!(
                    "unknown county `{name}`; the six are: {}",
                    tiger::the_six_counties()
                        .iter()
                        .map(|c| c.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return 2;
            }
        },
        (None, Some(class)) => {
            let class = match class.as_str() {
                "urban" => CountyClass::Urban,
                "suburban" => CountyClass::Suburban,
                "rural" => CountyClass::Rural { meander: 24 },
                other => {
                    eprintln!("unknown class `{other}` (urban|suburban|rural)");
                    return 2;
                }
            };
            CountySpec::new("custom", class, 20_000, 1)
        }
        _ => {
            eprintln!("generate needs exactly one of --county or --class");
            return 2;
        }
    };
    if let Some(n) = segments {
        spec = spec.with_target(parse_or_die(&n, "--segments"));
    }
    if let Some(s) = seed {
        spec.seed = parse_or_die(&s, "--seed");
    }
    let map = tiger::generate(&spec);
    if let Err(v) = map.validate_planar() {
        eprintln!("internal error: generated map is not planar ({v:?})");
        return 1;
    }
    if let Err(e) = io::save(&map, Path::new(&out)) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    println!("wrote {} ({} segments) to {out}", map.name, map.len());
    0
}

fn load_map(path: &str) -> PolygonalMap {
    io::load(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    })
}

fn cmd_info(rest: &[String]) -> i32 {
    let Some(path) = rest.first() else {
        eprintln!("info needs a map file");
        return 2;
    };
    let map = load_map(path);
    println!("name      : {}", map.name);
    println!("segments  : {}", map.len());
    if let Some(b) = map.bbox() {
        println!("bbox      : {b:?}");
    }
    let inc = map.vertex_incidence();
    println!("vertices  : {}", inc.len());
    let mut hist = [0usize; 8];
    for v in inc.values() {
        hist[v.len().min(7)] += 1;
    }
    for (d, n) in hist.iter().enumerate().skip(1) {
        if *n > 0 {
            println!("  degree {d}{}: {n}", if d == 7 { "+" } else { " " });
        }
    }
    match map.validate_planar() {
        Ok(()) => println!("planarity : ok"),
        Err(v) => println!(
            "planarity : VIOLATED by segments {} and {}",
            v.first, v.second
        ),
    }
    0
}

fn structure_flag(args: &mut Vec<String>) -> String {
    take_flag(args, "--structure").unwrap_or_else(|| "pmr".to_string())
}

fn build_structure(
    name: &str,
    map: &PolygonalMap,
    cfg: IndexConfig,
) -> Option<Box<dyn SpatialIndex>> {
    Some(match name {
        "rstar" => Box::new(lsdb::rtree::RTree::build(
            map,
            cfg,
            lsdb::rtree::RTreeKind::RStar,
        )),
        "rquad" => Box::new(lsdb::rtree::RTree::build(
            map,
            cfg,
            lsdb::rtree::RTreeKind::Quadratic,
        )),
        "rlin" => Box::new(lsdb::rtree::RTree::build(
            map,
            cfg,
            lsdb::rtree::RTreeKind::Linear,
        )),
        "rplus" => Box::new(lsdb::rplus::RPlusTree::build(map, cfg)),
        "pmr" => Box::new(lsdb::pmr::PmrQuadtree::build(
            map,
            lsdb::pmr::PmrConfig {
                index: cfg,
                ..Default::default()
            },
        )),
        "grid" => Box::new(lsdb::grid::UniformGrid::build(map, cfg, 64)),
        _ => {
            eprintln!("unknown structure `{name}` (rstar|rquad|rlin|rplus|pmr|grid)");
            return None;
        }
    })
}

fn cmd_build(rest: &[String]) -> i32 {
    let mut args = rest.to_vec();
    let structure = structure_flag(&mut args);
    let page = take_flag(&mut args, "--page-size")
        .map(|v| parse_or_die(&v, "--page-size"))
        .unwrap_or(1024usize);
    let pool = take_flag(&mut args, "--pool")
        .map(|v| parse_or_die(&v, "--pool"))
        .unwrap_or(16usize);
    let Some(path) = args.first() else {
        eprintln!("build needs a map file");
        return 2;
    };
    let map = load_map(path);
    let cfg = IndexConfig {
        page_size: page,
        pool_pages: pool,
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let Some(mut idx) = build_structure(&structure, &map, cfg) else {
        return 2;
    };
    let secs = start.elapsed().as_secs_f64();
    idx.clear_cache();
    let s = idx.stats();
    println!("structure     : {}", idx.name());
    println!("segments      : {}", idx.len());
    println!(
        "size          : {} KB ({} B pages, {}-page pool)",
        idx.size_bytes() / 1024,
        page,
        pool
    );
    println!(
        "build disk    : {} accesses ({} reads, {} writes)",
        s.disk.total(),
        s.disk.reads,
        s.disk.writes
    );
    println!("build cpu     : {secs:.2} s");
    0
}

fn cmd_query(rest: &[String]) -> i32 {
    let mut args = rest.to_vec();
    let structure = structure_flag(&mut args);
    let stdin_mode = if let Some(i) = args.iter().position(|a| a == "--stdin") {
        args.remove(i);
        true
    } else {
        false
    };
    if args.is_empty() || (!stdin_mode && args.len() < 2) {
        eprintln!("query needs a map file and a query (or --stdin)");
        return 2;
    }
    let map = load_map(&args[0]);
    let cfg = IndexConfig::default();
    let Some(idx) = build_structure(&structure, &map, cfg) else {
        return 2;
    };
    let mut ctx = QueryCtx::new();

    if stdin_mode {
        // Batch mode: the index above is built exactly once; every line of
        // stdin is one query in the same grammar as the positional form.
        let mut failures = 0u64;
        for (lineno, line) in std::io::stdin().lines().enumerate() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("stdin read error: {e}");
                    return 1;
                }
            };
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.split_first() {
                None => continue, // blank line
                Some((first, _)) if first.starts_with('#') => continue,
                Some((q, rest)) => {
                    let mut coords = Vec::with_capacity(rest.len());
                    let mut bad = false;
                    for v in rest {
                        match v.parse::<i32>() {
                            Ok(c) => coords.push(c),
                            Err(_) => {
                                eprintln!("line {}: cannot parse coordinate `{v}`", lineno + 1);
                                bad = true;
                                break;
                            }
                        }
                    }
                    ctx.reset();
                    if bad || !run_query(idx.as_ref(), &map, q, &coords, &mut ctx) {
                        failures += 1;
                        continue;
                    }
                    print_query_stats(idx.as_ref(), &ctx);
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} line(s) failed");
            return 2;
        }
        return 0;
    }

    let q = args[1].as_str();
    let coords: Vec<i32> = args[2..]
        .iter()
        .map(|v| parse_or_die::<i32>(v, "coordinate"))
        .collect();
    if !run_query(idx.as_ref(), &map, q, &coords, &mut ctx) {
        return 2;
    }
    print_query_stats(idx.as_ref(), &ctx);
    0
}

fn print_query_stats(idx: &dyn SpatialIndex, ctx: &QueryCtx) {
    let s = ctx.stats();
    println!(
        "[{}] {} disk accesses, {} segment comps, {} bbox/bucket comps",
        idx.name(),
        s.disk.total(),
        s.seg_comps,
        s.bbox_comps
    );
}

/// Execute and print one query. Returns false on an unrecognized query
/// name or arity (reported to stderr).
fn run_query(
    idx: &dyn SpatialIndex,
    map: &PolygonalMap,
    q: &str,
    coords: &[i32],
    ctx: &mut QueryCtx,
) -> bool {
    let print_segs = |ids: &[SegId], map: &PolygonalMap| {
        for id in ids {
            println!("  {:?}: {:?}", id, map.segments[id.index()]);
        }
    };
    match (q, coords.len()) {
        ("incident", 2) => {
            let got = idx.find_incident(Point::new(coords[0], coords[1]), ctx);
            println!("{} incident segments:", got.len());
            print_segs(&got, map);
        }
        ("nearest", 2) => {
            let p = Point::new(coords[0], coords[1]);
            match idx.nearest(p, ctx) {
                Some(id) => {
                    let d = map.segments[id.index()].dist2_point(p).to_f64().sqrt();
                    println!("nearest segment (distance {d:.2}):");
                    print_segs(&[id], map);
                }
                None => println!("empty map"),
            }
        }
        ("knn", 3) => {
            let p = Point::new(coords[0], coords[1]);
            let got = idx.nearest_k(p, coords[2].max(0) as usize, ctx);
            println!("{} nearest segments:", got.len());
            for id in &got {
                let d = map.segments[id.index()].dist2_point(p).to_f64().sqrt();
                println!("  {:?} at {d:.2}: {:?}", id, map.segments[id.index()]);
            }
        }
        ("window", 4) => {
            let w = Rect::bounding(
                Point::new(coords[0], coords[1]),
                Point::new(coords[2], coords[3]),
            );
            let got = idx.window(w, ctx);
            println!("{} segments in {w:?}:", got.len());
            print_segs(&got, map);
        }
        ("polygon", 2) => {
            let p = Point::new(coords[0], coords[1]);
            match queries::enclosing_polygon(idx, p, map.len() * 2 + 16, ctx) {
                Some(walk) => {
                    println!(
                        "enclosing polygon: {} boundary segments (closed: {}):",
                        walk.len(),
                        walk.closed
                    );
                    print_segs(&walk.distinct_segments(), map);
                }
                None => println!("empty map"),
            }
        }
        _ => {
            eprintln!("unknown query `{q}` or wrong number of coordinates");
            return false;
        }
    }
    true
}

/// Open (or initialize) the durable op log under `dir` and return the
/// recovered map. `ops.pages` is the checkpointed base store, `ops.wal`
/// the redo log; both are created on first use.
fn open_store(
    dir: &str,
    page_size: usize,
) -> std::io::Result<(lsdb::core::DurableMap, lsdb::core::RecoveryReport)> {
    use lsdb::core::{DurableMap, FileLog, FileStorage};
    std::fs::create_dir_all(dir)?;
    let pages = Path::new(dir).join("ops.pages");
    let wal = Path::new(dir).join("ops.wal");
    let base = if pages.exists() {
        FileStorage::open(&pages, page_size)?
    } else {
        FileStorage::create(&pages, page_size)?
    };
    let log = FileLog::open(&wal)?;
    DurableMap::open(Box::new(base), Box::new(log))
}

/// Build `name` over `map`, preferring the STR-style bulk loaders when
/// `bulk` is set (R-tree variants and the R+-tree have one; the others
/// fall back to their insertion build).
fn build_structure_maybe_bulk(
    name: &str,
    map: &PolygonalMap,
    cfg: IndexConfig,
    bulk: bool,
) -> Option<Box<dyn SpatialIndex>> {
    if bulk {
        match name {
            "rstar" | "rquad" | "rlin" => {
                return Some(Box::new(lsdb::rtree::RTree::bulk_load(map, cfg)))
            }
            "rplus" => return Some(Box::new(lsdb::rplus::RPlusTree::bulk_load(map, cfg))),
            _ => {}
        }
    }
    build_structure(name, map, cfg)
}

fn cmd_serve(rest: &[String]) -> i32 {
    use lsdb::core::LiveIndex;
    use lsdb::server::{Catalog, Server, ServerConfig};

    let mut args = rest.to_vec();
    let structure = structure_flag(&mut args);
    let store = take_flag(&mut args, "--store");
    let host = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = take_flag(&mut args, "--port")
        .map(|v| parse_or_die(&v, "--port"))
        .unwrap_or(4750);
    // Environment variables seed the config (LSDB_SERVER_WORKERS /
    // LSDB_THREADS / LSDB_SERVER_*); explicit flags override them.
    let env_cfg = ServerConfig::from_env();
    let workers: usize = take_flag(&mut args, "--workers")
        .map(|v| parse_or_die(&v, "--workers"))
        .unwrap_or(env_cfg.workers);
    let max_frame: u32 = take_flag(&mut args, "--max-frame")
        .map(|v| parse_or_die(&v, "--max-frame"))
        .unwrap_or(env_cfg.max_request_frame);
    let page = take_flag(&mut args, "--page-size")
        .map(|v| parse_or_die(&v, "--page-size"))
        .unwrap_or(1024usize);
    let pool = take_flag(&mut args, "--pool")
        .map(|v| parse_or_die(&v, "--pool"))
        .unwrap_or(16usize);
    let continent: Option<usize> =
        take_flag(&mut args, "--continent").map(|v| parse_or_die(&v, "--continent"));
    let county_segments: usize = take_flag(&mut args, "--county-segments")
        .map(|v| parse_or_die(&v, "--county-segments"))
        .unwrap_or(50_000);
    let continent_seed: u64 = take_flag(&mut args, "--continent-seed")
        .map(|v| parse_or_die(&v, "--continent-seed"))
        .unwrap_or(0x7161);
    let budget: u64 = take_flag(&mut args, "--budget")
        .map(|v| parse_or_die(&v, "--budget"))
        .unwrap_or(0);
    let max_open: Option<usize> =
        take_flag(&mut args, "--max-open").map(|v| parse_or_die(&v, "--max-open"));
    let cache_bytes: u64 = take_flag(&mut args, "--cache-bytes")
        .map(|v| parse_or_die(&v, "--cache-bytes"))
        .unwrap_or(0);
    let bulk = if let Some(i) = args.iter().position(|a| a == "--bulk") {
        args.remove(i);
        true
    } else {
        false
    };
    let verbose = if let Some(i) = args.iter().position(|a| a == "--verbose") {
        args.remove(i);
        true
    } else {
        env_cfg.verbose
    };
    let config = ServerConfig {
        workers,
        max_request_frame: max_frame,
        verbose,
        ..env_cfg
    };
    if let Err(e) = config.validate() {
        eprintln!("{e}");
        return 2;
    }
    let cfg = IndexConfig {
        page_size: page,
        pool_pages: pool,
        ..Default::default()
    };

    // Continent mode: host a whole catalog of deterministic county maps
    // behind one port. Every map is rebuilt on demand (lazily, and again
    // after an LRU close), so cold maps cost nothing but their slot.
    if let Some(counties) = continent {
        if counties == 0 {
            eprintln!("--continent needs at least 1 county");
            return 2;
        }
        if store.is_some() {
            eprintln!(
                "--store is incompatible with --continent: continental counties \
                 rebuild deterministically and are served read-only"
            );
            return 2;
        }
        if !args.is_empty() {
            eprintln!("--continent takes no map file (counties are generated)");
            return 2;
        }
        // Vet the structure name once, before it is buried in builders.
        if build_structure(&structure, &PolygonalMap::new("probe", Vec::new()), cfg).is_none() {
            return 2;
        }
        let mut catalog = Catalog::new(budget, max_open.unwrap_or(counties));
        for spec in tiger::continent(counties, county_segments, continent_seed) {
            let name = spec.name.clone();
            let structure = structure.clone();
            catalog.add_map(
                &name,
                Box::new(move || {
                    let map = tiger::generate(&spec);
                    build_structure_maybe_bulk(&structure, &map, cfg, bulk).ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("unknown structure `{structure}`"),
                        )
                    })
                }),
            );
        }
        catalog.set_reply_cache_bytes(cache_bytes);
        println!(
            "catalog: {counties} county maps x {county_segments} segments ({structure}, \
             bulk={bulk}), budget {}, max-open {}, reply cache {}",
            if budget == 0 {
                "unlimited".to_string()
            } else {
                format!("{budget} bytes")
            },
            max_open.unwrap_or(counties),
            if cache_bytes == 0 {
                "off".to_string()
            } else {
                format!("{cache_bytes} bytes")
            }
        );
        let server = match Server::bind_catalog((host.as_str(), port), catalog, config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind {host}:{port}: {e}");
                return 1;
            }
        };
        return run_server(server, &host, port, workers);
    }

    let Some(path) = args.first() else {
        eprintln!("serve needs a map file (or --continent N)");
        return 2;
    };
    let map = load_map(path);
    // Open the store *before* the index build: a missing or unreadable
    // store (wrong superblock version, foreign file, page-size mismatch)
    // must fail fast with a structured error, not after minutes of
    // building an index it can never serve.
    let recovered = match &store {
        Some(dir) => {
            let (dmap, report) = match open_store(dir, page) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("cannot open store {dir}: {e}");
                    return 1;
                }
            };
            if report.discarded > 0 {
                eprintln!(
                    "store {dir}: discarded {} bytes of torn log tail ({:?})",
                    report.discarded, report.tail
                );
            }
            println!(
                "store {dir}: {} op(s) recovered ({} from the redo log), replaying",
                dmap.len(),
                report.images
            );
            Some(dmap)
        }
        None => None,
    };
    let start = std::time::Instant::now();
    let Some(mut idx) = build_structure_maybe_bulk(&structure, &map, cfg, bulk) else {
        return 2;
    };
    println!(
        "built {} over {} ({} segments) in {:.2}s",
        idx.name(),
        map.name,
        map.len(),
        start.elapsed().as_secs_f64()
    );
    // With --store, acknowledged mutations outlive the process: the op
    // log recovered above replays over the freshly built index, and the
    // server serves the live (writable) index instead of a read-only one.
    let live = match recovered {
        Some(dmap) => {
            dmap.replay_into(idx.as_mut());
            LiveIndex::new(idx, dmap)
        }
        None => LiveIndex::volatile(idx),
    };
    // A one-map catalog (exactly what bind_live builds) so the reply
    // cache knob applies to the single-map server too.
    let catalog = Catalog::single(live);
    catalog.set_reply_cache_bytes(cache_bytes);
    if cache_bytes > 0 {
        println!("reply cache: {cache_bytes} bytes");
    }
    let server = match Server::bind_catalog((host.as_str(), port), catalog, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {host}:{port}: {e}");
            return 1;
        }
    };
    run_server(server, &host, port, workers)
}

/// Shared serve epilogue: announce the address, run to drain, report.
fn run_server(server: lsdb::server::Server, host: &str, port: u16, workers: usize) -> i32 {
    match server.local_addr() {
        Ok(addr) => {
            println!("serving on {addr} with {workers} worker(s); a SHUTDOWN request stops it")
        }
        Err(_) => println!("serving on {host}:{port}"),
    }
    match server.run() {
        Ok(report) => {
            println!(
                "served {} queries over {} connection(s)",
                report.queries, report.connections
            );
            println!(
                "totals: {} disk accesses, {} segment comps, {} bbox/bucket comps",
                report.totals.disk.total(),
                report.totals.seg_comps,
                report.totals.bbox_comps
            );
            0
        }
        Err(e) => {
            eprintln!("server error: {e}");
            1
        }
    }
}

/// Cumulative Zipf(θ) popularity over ranks `0..k` (rank 0 hottest).
fn zipf_cdf(k: usize, theta: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn cmd_bench_client(rest: &[String]) -> i32 {
    use lsdb::bench::wire::requests_for;
    use lsdb::bench::workloads::{QueryWorkbench, Workload};
    use lsdb::server::{run_closed_loop, run_open_loop, Client};
    use std::net::ToSocketAddrs;

    let mut args = rest.to_vec();
    let Some(addr_str) = take_flag(&mut args, "--addr") else {
        eprintln!("bench-client needs --addr HOST:PORT");
        return 2;
    };
    let workload_name = take_flag(&mut args, "--workload").unwrap_or_else(|| "range".to_string());
    let queries: usize = take_flag(&mut args, "--queries")
        .map(|v| parse_or_die(&v, "--queries"))
        .unwrap_or(1000);
    let connections: usize = take_flag(&mut args, "--connections")
        .map(|v| parse_or_die(&v, "--connections"))
        .unwrap_or(1);
    let seed: u64 = take_flag(&mut args, "--seed")
        .map(|v| parse_or_die(&v, "--seed"))
        .unwrap_or(0xC4A5);
    let open_loop_qps: Option<f64> =
        take_flag(&mut args, "--open-loop").map(|v| parse_or_die(&v, "--open-loop"));
    let multimap: Option<usize> =
        take_flag(&mut args, "--multimap").map(|v| parse_or_die(&v, "--multimap"));
    let zipf_theta: f64 = take_flag(&mut args, "--zipf")
        .map(|v| parse_or_die(&v, "--zipf"))
        .unwrap_or(1.0);
    let county_segments: usize = take_flag(&mut args, "--county-segments")
        .map(|v| parse_or_die(&v, "--county-segments"))
        .unwrap_or(50_000);
    let continent_seed: u64 = take_flag(&mut args, "--continent-seed")
        .map(|v| parse_or_die(&v, "--continent-seed"))
        .unwrap_or(0x7161);
    let batch_mode = if let Some(i) = args.iter().position(|a| a == "--batch") {
        args.remove(i);
        true
    } else {
        false
    };
    let report_cache = if let Some(i) = args.iter().position(|a| a == "--cache") {
        args.remove(i);
        true
    } else {
        false
    };
    let send_shutdown = if let Some(i) = args.iter().position(|a| a == "--shutdown") {
        args.remove(i);
        true
    } else {
        false
    };
    if batch_mode && open_loop_qps.is_some() {
        eprintln!("--batch and --open-loop are mutually exclusive");
        return 2;
    }
    let workload = match workload_name.as_str() {
        "point1" => Workload::Point1,
        "point2" => Workload::Point2,
        "nearest1" => Workload::NearestOneStage,
        "nearest2" => Workload::NearestTwoStage,
        "polygon1" => Workload::PolygonOneStage,
        "polygon2" => Workload::PolygonTwoStage,
        "range" => Workload::Range,
        other => {
            eprintln!(
                "unknown workload `{other}` (point1|point2|nearest1|nearest2|polygon1|polygon2|range)"
            );
            return 2;
        }
    };
    let addr = match addr_str.to_socket_addrs().map(|mut it| it.next()) {
        Ok(Some(a)) => a,
        _ => {
            eprintln!("cannot resolve address `{addr_str}`");
            return 2;
        }
    };

    // Multi-map mode: route a Zipf-popular mix of per-county query
    // streams to a continental server at a fixed arrival rate and report
    // the latency SLO plus the server's per-map and budget counters.
    if let Some(k) = multimap {
        if k == 0 {
            eprintln!("--multimap needs at least 1 map");
            return 2;
        }
        if batch_mode || !args.is_empty() {
            eprintln!("--multimap takes no map file or --batch (county streams are generated)");
            return 2;
        }
        return bench_multimap(
            addr,
            k,
            county_segments,
            continent_seed,
            workload,
            queries,
            connections.max(1),
            open_loop_qps,
            zipf_theta,
            seed,
            report_cache,
            send_shutdown,
        );
    }
    let Some(path) = args.first() else {
        eprintln!("bench-client needs the map file the server loaded (to derive the query stream)");
        return 2;
    };
    let map = load_map(path);
    let wb = QueryWorkbench::new(&map, queries, seed);

    if batch_mode {
        // One BATCH frame carrying the whole workload: the server
        // executes it Morton-sorted over a warm context.
        let batch = wb.batch(workload);
        println!(
            "1 batch of {} x {} against {addr}",
            batch.len(),
            workload.label()
        );
        let mut client = match Client::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot connect: {e}");
                return 1;
            }
        };
        let t0 = std::time::Instant::now();
        let items = match client.call_batch(&batch) {
            Ok(items) => items,
            Err(e) => {
                eprintln!("batch call failed: {e}");
                return 1;
            }
        };
        let wall = t0.elapsed();
        let mut totals = lsdb::core::QueryStats::default();
        let mut result_items = 0u64;
        for item in &items {
            if let Some(stats) = item.stats() {
                totals.add(stats);
            }
            result_items += item.result_size() as u64;
        }
        let n = items.len().max(1) as f64;
        println!(
            "throughput : {:.0} queries/s ({} queries in {:.3}s, one round trip)",
            n / wall.as_secs_f64().max(1e-9),
            items.len(),
            wall.as_secs_f64()
        );
        println!(
            "per query  : {:.2} disk accesses, {:.2} segment comps, {:.2} bbox/bucket comps, {:.2} results",
            totals.disk.total() as f64 / n,
            totals.seg_comps as f64 / n,
            totals.bbox_comps as f64 / n,
            result_items as f64 / n
        );
        return finish(addr, report_cache, send_shutdown);
    }

    let requests = requests_for(&wb, workload);
    match open_loop_qps {
        Some(qps) => println!(
            "{} x {} against {addr}, {} connection(s), open loop at {qps} queries/s",
            requests.len(),
            workload.label(),
            connections.max(1)
        ),
        None => println!(
            "{} x {} against {addr}, {} connection(s)",
            requests.len(),
            workload.label(),
            connections.max(1)
        ),
    }
    let run = match open_loop_qps {
        Some(qps) => run_open_loop(addr, &requests, connections.max(1), qps),
        None => run_closed_loop(addr, &requests, connections.max(1)),
    };
    let report = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return 1;
        }
    };
    let n = report.queries.max(1) as f64;
    println!(
        "throughput : {:.0} queries/s ({} queries in {:.3}s)",
        report.throughput_qps(),
        report.queries,
        report.wall.as_secs_f64()
    );
    println!(
        "latency    : p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, p999 {:.0} us, max {:.0} us",
        report.p50().as_secs_f64() * 1e6,
        report.p95().as_secs_f64() * 1e6,
        report.p99().as_secs_f64() * 1e6,
        report.p999().as_secs_f64() * 1e6,
        report.max_latency().as_secs_f64() * 1e6
    );
    println!(
        "per query  : {:.2} disk accesses, {:.2} segment comps, {:.2} bbox/bucket comps, {:.2} results",
        report.totals.disk.total() as f64 / n,
        report.totals.seg_comps as f64 / n,
        report.totals.bbox_comps as f64 / n,
        report.result_items as f64 / n
    );
    finish(addr, report_cache, send_shutdown)
}

/// The multi-map run: open `k` continental county maps on the server,
/// generate each county's query stream locally (byte-identical to what
/// a single-map run would issue), draw the per-request map from a
/// Zipf(θ) popularity distribution, and fire the routed stream over v3
/// connections — open loop at `target_qps` when given, closed loop
/// otherwise (the mode cache hit-rate curves want: no arrival schedule
/// to pick, the cache is the only variable).
#[allow(clippy::too_many_arguments)]
fn bench_multimap(
    addr: std::net::SocketAddr,
    k: usize,
    county_segments: usize,
    continent_seed: u64,
    workload: lsdb::bench::workloads::Workload,
    queries: usize,
    connections: usize,
    target_qps: Option<f64>,
    zipf_theta: f64,
    seed: u64,
    report_cache: bool,
    send_shutdown: bool,
) -> i32 {
    use lsdb::bench::wire::requests_for;
    use lsdb::bench::workloads::QueryWorkbench;
    use lsdb::server::{run_closed_loop_routed, run_open_loop_routed, Client};
    use lsdb_rng::StdRng;

    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            return 1;
        }
    };
    if !client.is_v3() {
        eprintln!(
            "--multimap needs a v3 (catalog) server; this one negotiated v{}",
            client.version()
        );
        return 1;
    }

    // Open every targeted county and build its local stream. Stream
    // length is the per-map worst case (a map could absorb the whole
    // run), cycled by cursor if the Zipf draw exceeds it.
    let specs = tiger::continent(k, county_segments, continent_seed);
    let mut ids = Vec::with_capacity(k);
    let mut streams = Vec::with_capacity(k);
    for spec in &specs {
        let id = match client.open_map(&spec.name) {
            Ok((id, _len)) => id,
            Err(e) => {
                eprintln!(
                    "cannot open map `{}` (does the server host a --continent {k} catalog \
                     with the same --county-segments/--continent-seed?): {e}",
                    spec.name
                );
                return 1;
            }
        };
        ids.push(id);
        let map = tiger::generate(spec);
        let wb = QueryWorkbench::new(&map, queries.max(1), seed ^ spec.seed);
        streams.push(requests_for(&wb, workload));
    }

    let cdf = zipf_cdf(k, zipf_theta);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x05EE_D2A9);
    let mut cursors = vec![0usize; k];
    let routed: Vec<(u32, lsdb::server::Request)> = (0..queries)
        .map(|_| {
            let u = rng.next_f64();
            let m = cdf.iter().position(|&c| u <= c).unwrap_or(k - 1);
            let stream = &streams[m];
            let req = stream[cursors[m] % stream.len()].clone();
            cursors[m] += 1;
            (ids[m], req)
        })
        .collect();

    match target_qps {
        Some(qps) => println!(
            "{queries} x {} across {k} maps (Zipf theta {zipf_theta}) against {addr}, \
             {connections} connection(s), open loop at {qps} queries/s",
            workload.label()
        ),
        None => println!(
            "{queries} x {} across {k} maps (Zipf theta {zipf_theta}) against {addr}, \
             {connections} connection(s), closed loop",
            workload.label()
        ),
    }
    let run = match target_qps {
        Some(qps) => run_open_loop_routed(addr, &routed, connections, qps),
        None => run_closed_loop_routed(addr, &routed, connections),
    };
    let report = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return 1;
        }
    };
    let n = report.queries.max(1) as f64;
    println!(
        "throughput : {:.0} queries/s ({} queries in {:.3}s)",
        report.throughput_qps(),
        report.queries,
        report.wall.as_secs_f64()
    );
    println!(
        "latency    : p50 {:.0} us, p99 {:.0} us, p999 {:.0} us, max {:.0} us",
        report.p50().as_secs_f64() * 1e6,
        report.p99().as_secs_f64() * 1e6,
        report.p999().as_secs_f64() * 1e6,
        report.max_latency().as_secs_f64() * 1e6
    );
    println!(
        "per query  : {:.2} disk accesses, {:.2} segment comps, {:.2} bbox/bucket comps, {:.2} results",
        report.totals.disk.total() as f64 / n,
        report.totals.seg_comps as f64 / n,
        report.totals.bbox_comps as f64 / n,
        report.result_items as f64 / n
    );
    match client.stats_v3() {
        Ok(stats) => {
            if stats.budget.total != u64::MAX {
                println!(
                    "budget     : {} / {} bytes resident, {} admissions, {} denials",
                    stats.budget.used,
                    stats.budget.total,
                    stats.budget.admissions,
                    stats.budget.denials
                );
            }
            for m in stats.maps.iter().filter(|m| m.queries > 0) {
                println!(
                    "map {:10}: {} queries, {} disk accesses, cache {}h/{}m/{}e",
                    m.name,
                    m.queries,
                    m.totals.disk.total(),
                    m.cache.hits,
                    m.cache.misses,
                    m.cache.evictions
                );
            }
            if report_cache {
                print_reply_cache_summary(&stats.maps);
            }
        }
        Err(e) => eprintln!("per-map stats unavailable: {e}"),
    }
    if send_shutdown {
        match client.shutdown() {
            Ok(()) => println!("server shutdown requested"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                return 1;
            }
        }
    }
    0
}

/// Shared bench-client epilogue: report server-side totals and honor
/// `--cache` / `--shutdown`.
fn finish(addr: std::net::SocketAddr, report_cache: bool, send_shutdown: bool) -> i32 {
    match lsdb::server::Client::connect(addr) {
        Ok(mut client) => {
            if let Ok((served, totals)) = client.stats() {
                println!(
                    "server     : {served} queries served since start, {} disk accesses total",
                    totals.disk.total()
                );
            }
            if report_cache {
                match client.stats_v3() {
                    Ok(stats) => print_reply_cache_summary(&stats.maps),
                    Err(e) => eprintln!("reply-cache stats unavailable (needs a v3 server): {e}"),
                }
            }
            if send_shutdown {
                match client.shutdown() {
                    Ok(()) => println!("server shutdown requested"),
                    Err(e) => {
                        eprintln!("shutdown failed: {e}");
                        return 1;
                    }
                }
            }
        }
        Err(e) => eprintln!("post-run stats unavailable: {e}"),
    }
    0
}

/// Sum the per-map reply-cache counters from a v3 STATS reply and print
/// one summary line (hit rate across all maps, resident bytes, churn).
fn print_reply_cache_summary(maps: &[lsdb::server::MapStatsWire]) {
    let mut c = lsdb::server::ReplyCacheWire {
        enabled: maps.iter().any(|m| m.reply_cache.enabled),
        ..Default::default()
    };
    for m in maps {
        let rc = &m.reply_cache;
        c.entries += rc.entries;
        c.bytes += rc.bytes;
        c.hits += rc.hits;
        c.misses += rc.misses;
        c.insertions += rc.insertions;
        c.evictions += rc.evictions;
        c.invalidations += rc.invalidations;
        c.rejections += rc.rejections;
    }
    if !c.enabled {
        println!("reply cache: off");
        return;
    }
    let probes = c.hits + c.misses;
    let rate = if probes == 0 {
        0.0
    } else {
        100.0 * c.hits as f64 / probes as f64
    };
    println!(
        "reply cache: {} hits / {} misses ({rate:.1}% hit rate), {} entries / {} bytes resident, \
         {} insertions, {} evictions, {} invalidations, {} rejections",
        c.hits,
        c.misses,
        c.entries,
        c.bytes,
        c.insertions,
        c.evictions,
        c.invalidations,
        c.rejections
    );
}
