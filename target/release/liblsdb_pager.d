/root/repo/target/release/liblsdb_pager.rlib: /root/repo/crates/pager/src/lib.rs /root/repo/crates/pager/src/pool.rs /root/repo/crates/pager/src/storage.rs
