/root/repo/target/release/deps/lsdb_tiger-c20a2166233c567b.d: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_tiger-c20a2166233c567b.rmeta: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs Cargo.toml

crates/tiger/src/lib.rs:
crates/tiger/src/gen.rs:
crates/tiger/src/io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
