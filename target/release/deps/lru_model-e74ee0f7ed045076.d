/root/repo/target/release/deps/lru_model-e74ee0f7ed045076.d: crates/pager/tests/lru_model.rs Cargo.toml

/root/repo/target/release/deps/liblru_model-e74ee0f7ed045076.rmeta: crates/pager/tests/lru_model.rs Cargo.toml

crates/pager/tests/lru_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
