/root/repo/target/release/deps/lsdb_rng-ec511c84ae02c2d3.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_rng-ec511c84ae02c2d3.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
