/root/repo/target/release/deps/lsdb_pager-4bf8a76418f77d80.d: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

/root/repo/target/release/deps/liblsdb_pager-4bf8a76418f77d80.rlib: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

/root/repo/target/release/deps/liblsdb_pager-4bf8a76418f77d80.rmeta: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

crates/pager/src/lib.rs:
crates/pager/src/pool.rs:
crates/pager/src/storage.rs:
