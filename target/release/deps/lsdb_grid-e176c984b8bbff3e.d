/root/repo/target/release/deps/lsdb_grid-e176c984b8bbff3e.d: crates/grid/src/lib.rs

/root/repo/target/release/deps/liblsdb_grid-e176c984b8bbff3e.rlib: crates/grid/src/lib.rs

/root/repo/target/release/deps/liblsdb_grid-e176c984b8bbff3e.rmeta: crates/grid/src/lib.rs

crates/grid/src/lib.rs:
