/root/repo/target/release/deps/figures-52a3cc454a227340.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/release/deps/libfigures-52a3cc454a227340.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
