/root/repo/target/release/deps/prop-49570629788d3230.d: crates/repr/tests/prop.rs

/root/repo/target/release/deps/prop-49570629788d3230: crates/repr/tests/prop.rs

crates/repr/tests/prop.rs:
