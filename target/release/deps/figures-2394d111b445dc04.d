/root/repo/target/release/deps/figures-2394d111b445dc04.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/release/deps/libfigures-2394d111b445dc04.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
