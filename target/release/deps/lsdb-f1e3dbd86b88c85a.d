/root/repo/target/release/deps/lsdb-f1e3dbd86b88c85a.d: src/bin/lsdb.rs Cargo.toml

/root/repo/target/release/deps/liblsdb-f1e3dbd86b88c85a.rmeta: src/bin/lsdb.rs Cargo.toml

src/bin/lsdb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
