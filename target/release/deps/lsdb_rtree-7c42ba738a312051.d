/root/repo/target/release/deps/lsdb_rtree-7c42ba738a312051.d: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

/root/repo/target/release/deps/liblsdb_rtree-7c42ba738a312051.rlib: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

/root/repo/target/release/deps/liblsdb_rtree-7c42ba738a312051.rmeta: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

crates/rtree/src/lib.rs:
crates/rtree/src/bulk.rs:
crates/rtree/src/split.rs:
