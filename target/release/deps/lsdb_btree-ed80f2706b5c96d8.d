/root/repo/target/release/deps/lsdb_btree-ed80f2706b5c96d8.d: crates/btree/src/lib.rs crates/btree/src/node.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_btree-ed80f2706b5c96d8.rmeta: crates/btree/src/lib.rs crates/btree/src/node.rs Cargo.toml

crates/btree/src/lib.rs:
crates/btree/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
