/root/repo/target/release/deps/lsdb_btree-0e20b285a4719ea0.d: crates/btree/src/lib.rs crates/btree/src/node.rs

/root/repo/target/release/deps/lsdb_btree-0e20b285a4719ea0: crates/btree/src/lib.rs crates/btree/src/node.rs

crates/btree/src/lib.rs:
crates/btree/src/node.rs:
