/root/repo/target/release/deps/experiments_smoke-5882944ab5210757.d: tests/experiments_smoke.rs

/root/repo/target/release/deps/experiments_smoke-5882944ab5210757: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
