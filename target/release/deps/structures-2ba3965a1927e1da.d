/root/repo/target/release/deps/structures-2ba3965a1927e1da.d: crates/bench/benches/structures.rs Cargo.toml

/root/repo/target/release/deps/libstructures-2ba3965a1927e1da.rmeta: crates/bench/benches/structures.rs Cargo.toml

crates/bench/benches/structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
