/root/repo/target/release/deps/prop-d1873d551d7d4410.d: crates/repr/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-d1873d551d7d4410.rmeta: crates/repr/tests/prop.rs Cargo.toml

crates/repr/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
