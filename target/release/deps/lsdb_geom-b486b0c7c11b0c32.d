/root/repo/target/release/deps/lsdb_geom-b486b0c7c11b0c32.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_geom-b486b0c7c11b0c32.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/dist.rs:
crates/geom/src/morton.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/segment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
