/root/repo/target/release/deps/ablation-04f3cc2402601e8d.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-04f3cc2402601e8d.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
