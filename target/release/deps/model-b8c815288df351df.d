/root/repo/target/release/deps/model-b8c815288df351df.d: crates/btree/tests/model.rs

/root/repo/target/release/deps/model-b8c815288df351df: crates/btree/tests/model.rs

crates/btree/tests/model.rs:
