/root/repo/target/release/deps/lsdb_bench-09b07e5c2dfff47b.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_bench-09b07e5c2dfff47b.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
