/root/repo/target/release/deps/parallel_driver-499a34d6dab8cdf7.d: tests/parallel_driver.rs

/root/repo/target/release/deps/parallel_driver-499a34d6dab8cdf7: tests/parallel_driver.rs

tests/parallel_driver.rs:
