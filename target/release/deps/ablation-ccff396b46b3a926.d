/root/repo/target/release/deps/ablation-ccff396b46b3a926.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-ccff396b46b3a926.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
