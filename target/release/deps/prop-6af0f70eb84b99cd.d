/root/repo/target/release/deps/prop-6af0f70eb84b99cd.d: crates/grid/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-6af0f70eb84b99cd.rmeta: crates/grid/tests/prop.rs Cargo.toml

crates/grid/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
