/root/repo/target/release/deps/lsdb_btree-2ca58b1aa1f177fc.d: crates/btree/src/lib.rs crates/btree/src/node.rs

/root/repo/target/release/deps/liblsdb_btree-2ca58b1aa1f177fc.rlib: crates/btree/src/lib.rs crates/btree/src/node.rs

/root/repo/target/release/deps/liblsdb_btree-2ca58b1aa1f177fc.rmeta: crates/btree/src/lib.rs crates/btree/src/node.rs

crates/btree/src/lib.rs:
crates/btree/src/node.rs:
