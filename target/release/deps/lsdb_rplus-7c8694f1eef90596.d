/root/repo/target/release/deps/lsdb_rplus-7c8694f1eef90596.d: crates/rplus/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_rplus-7c8694f1eef90596.rmeta: crates/rplus/src/lib.rs Cargo.toml

crates/rplus/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
