/root/repo/target/release/deps/prop-456c779c2700b924.d: crates/geom/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-456c779c2700b924.rmeta: crates/geom/tests/prop.rs Cargo.toml

crates/geom/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
