/root/repo/target/release/deps/lsdb_pager-e191f577ad4a40c7.d: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

/root/repo/target/release/deps/lsdb_pager-e191f577ad4a40c7: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

crates/pager/src/lib.rs:
crates/pager/src/pool.rs:
crates/pager/src/storage.rs:
