/root/repo/target/release/deps/lru_model-ff0ccaa63b70a3b4.d: crates/pager/tests/lru_model.rs

/root/repo/target/release/deps/lru_model-ff0ccaa63b70a3b4: crates/pager/tests/lru_model.rs

crates/pager/tests/lru_model.rs:
