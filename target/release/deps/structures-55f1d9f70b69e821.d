/root/repo/target/release/deps/structures-55f1d9f70b69e821.d: crates/bench/benches/structures.rs

/root/repo/target/release/deps/structures-55f1d9f70b69e821: crates/bench/benches/structures.rs

crates/bench/benches/structures.rs:
