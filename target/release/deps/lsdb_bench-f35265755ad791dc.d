/root/repo/target/release/deps/lsdb_bench-f35265755ad791dc.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/lsdb_bench-f35265755ad791dc: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
