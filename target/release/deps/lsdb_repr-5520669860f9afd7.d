/root/repo/target/release/deps/lsdb_repr-5520669860f9afd7.d: crates/repr/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_repr-5520669860f9afd7.rmeta: crates/repr/src/lib.rs Cargo.toml

crates/repr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
