/root/repo/target/release/deps/lsdb_rng-b680ee6bc8ed21e2.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/liblsdb_rng-b680ee6bc8ed21e2.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/liblsdb_rng-b680ee6bc8ed21e2.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
