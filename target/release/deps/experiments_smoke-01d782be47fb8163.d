/root/repo/target/release/deps/experiments_smoke-01d782be47fb8163.d: tests/experiments_smoke.rs Cargo.toml

/root/repo/target/release/deps/libexperiments_smoke-01d782be47fb8163.rmeta: tests/experiments_smoke.rs Cargo.toml

tests/experiments_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
