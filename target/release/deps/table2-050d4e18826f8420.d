/root/repo/target/release/deps/table2-050d4e18826f8420.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-050d4e18826f8420: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
