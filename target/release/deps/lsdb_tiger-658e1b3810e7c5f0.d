/root/repo/target/release/deps/lsdb_tiger-658e1b3810e7c5f0.d: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

/root/repo/target/release/deps/liblsdb_tiger-658e1b3810e7c5f0.rlib: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

/root/repo/target/release/deps/liblsdb_tiger-658e1b3810e7c5f0.rmeta: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

crates/tiger/src/lib.rs:
crates/tiger/src/gen.rs:
crates/tiger/src/io.rs:
