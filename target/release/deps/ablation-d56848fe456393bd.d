/root/repo/target/release/deps/ablation-d56848fe456393bd.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-d56848fe456393bd: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
