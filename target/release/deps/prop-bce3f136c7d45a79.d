/root/repo/target/release/deps/prop-bce3f136c7d45a79.d: crates/rtree/tests/prop.rs

/root/repo/target/release/deps/prop-bce3f136c7d45a79: crates/rtree/tests/prop.rs

crates/rtree/tests/prop.rs:
