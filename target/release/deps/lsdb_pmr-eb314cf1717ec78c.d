/root/repo/target/release/deps/lsdb_pmr-eb314cf1717ec78c.d: crates/pmr/src/lib.rs

/root/repo/target/release/deps/liblsdb_pmr-eb314cf1717ec78c.rlib: crates/pmr/src/lib.rs

/root/repo/target/release/deps/liblsdb_pmr-eb314cf1717ec78c.rmeta: crates/pmr/src/lib.rs

crates/pmr/src/lib.rs:
