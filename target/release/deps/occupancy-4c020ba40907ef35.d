/root/repo/target/release/deps/occupancy-4c020ba40907ef35.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/release/deps/occupancy-4c020ba40907ef35: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
