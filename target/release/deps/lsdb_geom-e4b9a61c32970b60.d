/root/repo/target/release/deps/lsdb_geom-e4b9a61c32970b60.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

/root/repo/target/release/deps/liblsdb_geom-e4b9a61c32970b60.rlib: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

/root/repo/target/release/deps/liblsdb_geom-e4b9a61c32970b60.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/dist.rs:
crates/geom/src/morton.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/segment.rs:
