/root/repo/target/release/deps/fig6-3b0adfd3c4aa2b7d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-3b0adfd3c4aa2b7d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
