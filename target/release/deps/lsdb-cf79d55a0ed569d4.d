/root/repo/target/release/deps/lsdb-cf79d55a0ed569d4.d: src/bin/lsdb.rs

/root/repo/target/release/deps/lsdb-cf79d55a0ed569d4: src/bin/lsdb.rs

src/bin/lsdb.rs:
