/root/repo/target/release/deps/prop-43f63b86dc2b9f77.d: crates/rtree/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-43f63b86dc2b9f77.rmeta: crates/rtree/tests/prop.rs Cargo.toml

crates/rtree/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
