/root/repo/target/release/deps/lsdb_pmr-21a9abba72267b4a.d: crates/pmr/src/lib.rs

/root/repo/target/release/deps/lsdb_pmr-21a9abba72267b4a: crates/pmr/src/lib.rs

crates/pmr/src/lib.rs:
