/root/repo/target/release/deps/occupancy-a152e1bfc494e05a.d: crates/bench/src/bin/occupancy.rs Cargo.toml

/root/repo/target/release/deps/liboccupancy-a152e1bfc494e05a.rmeta: crates/bench/src/bin/occupancy.rs Cargo.toml

crates/bench/src/bin/occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
