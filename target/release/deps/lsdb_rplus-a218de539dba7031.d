/root/repo/target/release/deps/lsdb_rplus-a218de539dba7031.d: crates/rplus/src/lib.rs

/root/repo/target/release/deps/liblsdb_rplus-a218de539dba7031.rlib: crates/rplus/src/lib.rs

/root/repo/target/release/deps/liblsdb_rplus-a218de539dba7031.rmeta: crates/rplus/src/lib.rs

crates/rplus/src/lib.rs:
