/root/repo/target/release/deps/table1-c8f7f90b948639b5.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-c8f7f90b948639b5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
