/root/repo/target/release/deps/cross_structure-70676c128532616a.d: tests/cross_structure.rs Cargo.toml

/root/repo/target/release/deps/libcross_structure-70676c128532616a.rmeta: tests/cross_structure.rs Cargo.toml

tests/cross_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
