/root/repo/target/release/deps/occupancy-c33a85ed4dbe8c09.d: crates/bench/src/bin/occupancy.rs Cargo.toml

/root/repo/target/release/deps/liboccupancy-c33a85ed4dbe8c09.rmeta: crates/bench/src/bin/occupancy.rs Cargo.toml

crates/bench/src/bin/occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
