/root/repo/target/release/deps/prop-659020cd60d2eafa.d: crates/pmr/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-659020cd60d2eafa.rmeta: crates/pmr/tests/prop.rs Cargo.toml

crates/pmr/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
