/root/repo/target/release/deps/lsdb_pager-dcc28185c3765ba9.d: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_pager-dcc28185c3765ba9.rmeta: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs Cargo.toml

crates/pager/src/lib.rs:
crates/pager/src/pool.rs:
crates/pager/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
