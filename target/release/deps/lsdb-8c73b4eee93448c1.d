/root/repo/target/release/deps/lsdb-8c73b4eee93448c1.d: src/lib.rs

/root/repo/target/release/deps/lsdb-8c73b4eee93448c1: src/lib.rs

src/lib.rs:
