/root/repo/target/release/deps/lsdb_pmr-1b387c941eee0ea3.d: crates/pmr/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_pmr-1b387c941eee0ea3.rmeta: crates/pmr/src/lib.rs Cargo.toml

crates/pmr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
