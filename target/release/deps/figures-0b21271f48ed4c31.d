/root/repo/target/release/deps/figures-0b21271f48ed4c31.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-0b21271f48ed4c31: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
