/root/repo/target/release/deps/lsdb_pmr-4c6cd3ea0d0b0e80.d: crates/pmr/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_pmr-4c6cd3ea0d0b0e80.rmeta: crates/pmr/src/lib.rs Cargo.toml

crates/pmr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
