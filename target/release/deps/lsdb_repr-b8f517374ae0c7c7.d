/root/repo/target/release/deps/lsdb_repr-b8f517374ae0c7c7.d: crates/repr/src/lib.rs

/root/repo/target/release/deps/liblsdb_repr-b8f517374ae0c7c7.rlib: crates/repr/src/lib.rs

/root/repo/target/release/deps/liblsdb_repr-b8f517374ae0c7c7.rmeta: crates/repr/src/lib.rs

crates/repr/src/lib.rs:
