/root/repo/target/release/deps/fig6-eee44c13a04fc3ce.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-eee44c13a04fc3ce: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
