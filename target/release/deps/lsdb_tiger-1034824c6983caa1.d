/root/repo/target/release/deps/lsdb_tiger-1034824c6983caa1.d: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_tiger-1034824c6983caa1.rmeta: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs Cargo.toml

crates/tiger/src/lib.rs:
crates/tiger/src/gen.rs:
crates/tiger/src/io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
