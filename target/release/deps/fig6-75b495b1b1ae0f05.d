/root/repo/target/release/deps/fig6-75b495b1b1ae0f05.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/release/deps/libfig6-75b495b1b1ae0f05.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
