/root/repo/target/release/deps/lsdb_rplus-e857f3463a6d082a.d: crates/rplus/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_rplus-e857f3463a6d082a.rmeta: crates/rplus/src/lib.rs Cargo.toml

crates/rplus/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
