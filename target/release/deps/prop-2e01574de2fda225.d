/root/repo/target/release/deps/prop-2e01574de2fda225.d: crates/rplus/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-2e01574de2fda225.rmeta: crates/rplus/tests/prop.rs Cargo.toml

crates/rplus/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
