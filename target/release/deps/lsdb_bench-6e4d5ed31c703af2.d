/root/repo/target/release/deps/lsdb_bench-6e4d5ed31c703af2.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_bench-6e4d5ed31c703af2.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
