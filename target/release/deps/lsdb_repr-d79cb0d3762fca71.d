/root/repo/target/release/deps/lsdb_repr-d79cb0d3762fca71.d: crates/repr/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_repr-d79cb0d3762fca71.rmeta: crates/repr/src/lib.rs Cargo.toml

crates/repr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
