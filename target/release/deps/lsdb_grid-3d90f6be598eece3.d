/root/repo/target/release/deps/lsdb_grid-3d90f6be598eece3.d: crates/grid/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_grid-3d90f6be598eece3.rmeta: crates/grid/src/lib.rs Cargo.toml

crates/grid/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
