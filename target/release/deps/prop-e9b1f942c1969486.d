/root/repo/target/release/deps/prop-e9b1f942c1969486.d: crates/pmr/tests/prop.rs

/root/repo/target/release/deps/prop-e9b1f942c1969486: crates/pmr/tests/prop.rs

crates/pmr/tests/prop.rs:
