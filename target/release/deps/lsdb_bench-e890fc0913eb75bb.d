/root/repo/target/release/deps/lsdb_bench-e890fc0913eb75bb.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/liblsdb_bench-e890fc0913eb75bb.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/liblsdb_bench-e890fc0913eb75bb.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
