/root/repo/target/release/deps/parallel_driver-c3af7e6b6846a358.d: tests/parallel_driver.rs Cargo.toml

/root/repo/target/release/deps/libparallel_driver-c3af7e6b6846a358.rmeta: tests/parallel_driver.rs Cargo.toml

tests/parallel_driver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
