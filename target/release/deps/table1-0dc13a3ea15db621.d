/root/repo/target/release/deps/table1-0dc13a3ea15db621.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-0dc13a3ea15db621: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
