/root/repo/target/release/deps/prop-b90d77c7e5bff182.d: crates/geom/tests/prop.rs

/root/repo/target/release/deps/prop-b90d77c7e5bff182: crates/geom/tests/prop.rs

crates/geom/tests/prop.rs:
