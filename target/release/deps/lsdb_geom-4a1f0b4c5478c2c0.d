/root/repo/target/release/deps/lsdb_geom-4a1f0b4c5478c2c0.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

/root/repo/target/release/deps/lsdb_geom-4a1f0b4c5478c2c0: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/dist.rs:
crates/geom/src/morton.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/segment.rs:
