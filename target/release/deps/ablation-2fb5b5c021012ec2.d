/root/repo/target/release/deps/ablation-2fb5b5c021012ec2.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-2fb5b5c021012ec2: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
