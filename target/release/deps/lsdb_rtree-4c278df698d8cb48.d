/root/repo/target/release/deps/lsdb_rtree-4c278df698d8cb48.d: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

/root/repo/target/release/deps/lsdb_rtree-4c278df698d8cb48: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

crates/rtree/src/lib.rs:
crates/rtree/src/bulk.rs:
crates/rtree/src/split.rs:
