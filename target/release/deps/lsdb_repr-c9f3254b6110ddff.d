/root/repo/target/release/deps/lsdb_repr-c9f3254b6110ddff.d: crates/repr/src/lib.rs

/root/repo/target/release/deps/lsdb_repr-c9f3254b6110ddff: crates/repr/src/lib.rs

crates/repr/src/lib.rs:
