/root/repo/target/release/deps/lsdb_rtree-7ddae10c81d89d01.d: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_rtree-7ddae10c81d89d01.rmeta: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs Cargo.toml

crates/rtree/src/lib.rs:
crates/rtree/src/bulk.rs:
crates/rtree/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
