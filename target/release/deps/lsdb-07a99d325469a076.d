/root/repo/target/release/deps/lsdb-07a99d325469a076.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb-07a99d325469a076.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
