/root/repo/target/release/deps/lsdb_core-b86cb9b8c81ac537.d: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_core-b86cb9b8c81ac537.rmeta: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/brute.rs:
crates/core/src/index.rs:
crates/core/src/map.rs:
crates/core/src/pointgen.rs:
crates/core/src/queries.rs:
crates/core/src/rectnode.rs:
crates/core/src/seg_table.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
