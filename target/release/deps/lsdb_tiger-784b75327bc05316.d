/root/repo/target/release/deps/lsdb_tiger-784b75327bc05316.d: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

/root/repo/target/release/deps/lsdb_tiger-784b75327bc05316: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

crates/tiger/src/lib.rs:
crates/tiger/src/gen.rs:
crates/tiger/src/io.rs:
