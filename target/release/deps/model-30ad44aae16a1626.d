/root/repo/target/release/deps/model-30ad44aae16a1626.d: crates/btree/tests/model.rs Cargo.toml

/root/repo/target/release/deps/libmodel-30ad44aae16a1626.rmeta: crates/btree/tests/model.rs Cargo.toml

crates/btree/tests/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
