/root/repo/target/release/deps/lsdb_grid-6950240deed93201.d: crates/grid/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblsdb_grid-6950240deed93201.rmeta: crates/grid/src/lib.rs Cargo.toml

crates/grid/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
