/root/repo/target/release/deps/lsdb_core-bdd183c1d782e314.d: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs

/root/repo/target/release/deps/lsdb_core-bdd183c1d782e314: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/brute.rs:
crates/core/src/index.rs:
crates/core/src/map.rs:
crates/core/src/pointgen.rs:
crates/core/src/queries.rs:
crates/core/src/rectnode.rs:
crates/core/src/seg_table.rs:
crates/core/src/stats.rs:
