/root/repo/target/release/deps/lsdb_grid-b0d867d1b6dbfdaf.d: crates/grid/src/lib.rs

/root/repo/target/release/deps/lsdb_grid-b0d867d1b6dbfdaf: crates/grid/src/lib.rs

crates/grid/src/lib.rs:
