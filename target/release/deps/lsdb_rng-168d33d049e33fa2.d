/root/repo/target/release/deps/lsdb_rng-168d33d049e33fa2.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/lsdb_rng-168d33d049e33fa2: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
