/root/repo/target/release/deps/table2-4b7d71772730719a.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-4b7d71772730719a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
