/root/repo/target/release/deps/figures-1b104b855a5d6bae.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-1b104b855a5d6bae: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
