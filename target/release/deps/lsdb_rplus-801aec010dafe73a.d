/root/repo/target/release/deps/lsdb_rplus-801aec010dafe73a.d: crates/rplus/src/lib.rs

/root/repo/target/release/deps/lsdb_rplus-801aec010dafe73a: crates/rplus/src/lib.rs

crates/rplus/src/lib.rs:
