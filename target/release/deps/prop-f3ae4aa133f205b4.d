/root/repo/target/release/deps/prop-f3ae4aa133f205b4.d: crates/rplus/tests/prop.rs

/root/repo/target/release/deps/prop-f3ae4aa133f205b4: crates/rplus/tests/prop.rs

crates/rplus/tests/prop.rs:
