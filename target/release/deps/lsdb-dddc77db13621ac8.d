/root/repo/target/release/deps/lsdb-dddc77db13621ac8.d: src/bin/lsdb.rs Cargo.toml

/root/repo/target/release/deps/liblsdb-dddc77db13621ac8.rmeta: src/bin/lsdb.rs Cargo.toml

src/bin/lsdb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
