/root/repo/target/release/deps/occupancy-38e0103193f9c298.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/release/deps/occupancy-38e0103193f9c298: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
