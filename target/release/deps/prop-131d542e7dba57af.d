/root/repo/target/release/deps/prop-131d542e7dba57af.d: crates/grid/tests/prop.rs

/root/repo/target/release/deps/prop-131d542e7dba57af: crates/grid/tests/prop.rs

crates/grid/tests/prop.rs:
