/root/repo/target/release/deps/lsdb-45b14f42b2fbeba2.d: src/bin/lsdb.rs

/root/repo/target/release/deps/lsdb-45b14f42b2fbeba2: src/bin/lsdb.rs

src/bin/lsdb.rs:
