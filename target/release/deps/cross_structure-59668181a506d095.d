/root/repo/target/release/deps/cross_structure-59668181a506d095.d: tests/cross_structure.rs

/root/repo/target/release/deps/cross_structure-59668181a506d095: tests/cross_structure.rs

tests/cross_structure.rs:
