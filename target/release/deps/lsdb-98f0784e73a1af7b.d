/root/repo/target/release/deps/lsdb-98f0784e73a1af7b.d: src/lib.rs

/root/repo/target/release/deps/liblsdb-98f0784e73a1af7b.rlib: src/lib.rs

/root/repo/target/release/deps/liblsdb-98f0784e73a1af7b.rmeta: src/lib.rs

src/lib.rs:
