/root/repo/target/release/liblsdb_rng.rlib: /root/repo/crates/rng/src/lib.rs
