/root/repo/target/release/examples/quickstart-eecbbeca8d2834bd.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-eecbbeca8d2834bd: examples/quickstart.rs

examples/quickstart.rs:
