/root/repo/target/release/examples/road_atlas-d307b6465bbb143f.d: examples/road_atlas.rs

/root/repo/target/release/examples/road_atlas-d307b6465bbb143f: examples/road_atlas.rs

examples/road_atlas.rs:
