/root/repo/target/release/examples/map_io-572726bd98a5cd22.d: examples/map_io.rs Cargo.toml

/root/repo/target/release/examples/libmap_io-572726bd98a5cd22.rmeta: examples/map_io.rs Cargo.toml

examples/map_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
