/root/repo/target/release/examples/map_io-705883a8fe11afbd.d: examples/map_io.rs

/root/repo/target/release/examples/map_io-705883a8fe11afbd: examples/map_io.rs

examples/map_io.rs:
