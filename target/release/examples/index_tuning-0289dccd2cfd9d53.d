/root/repo/target/release/examples/index_tuning-0289dccd2cfd9d53.d: examples/index_tuning.rs

/root/repo/target/release/examples/index_tuning-0289dccd2cfd9d53: examples/index_tuning.rs

examples/index_tuning.rs:
