/root/repo/target/release/examples/road_atlas-db76354fa3287e09.d: examples/road_atlas.rs Cargo.toml

/root/repo/target/release/examples/libroad_atlas-db76354fa3287e09.rmeta: examples/road_atlas.rs Cargo.toml

examples/road_atlas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
