/root/repo/target/release/examples/quickstart-5b1cf16064187f1d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-5b1cf16064187f1d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
