/root/repo/target/release/examples/index_tuning-b9493480e945f6e1.d: examples/index_tuning.rs Cargo.toml

/root/repo/target/release/examples/libindex_tuning-b9493480e945f6e1.rmeta: examples/index_tuning.rs Cargo.toml

examples/index_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
