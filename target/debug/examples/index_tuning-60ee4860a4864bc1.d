/root/repo/target/debug/examples/index_tuning-60ee4860a4864bc1.d: examples/index_tuning.rs

/root/repo/target/debug/examples/index_tuning-60ee4860a4864bc1: examples/index_tuning.rs

examples/index_tuning.rs:
