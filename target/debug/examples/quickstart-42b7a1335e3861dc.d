/root/repo/target/debug/examples/quickstart-42b7a1335e3861dc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-42b7a1335e3861dc: examples/quickstart.rs

examples/quickstart.rs:
