/root/repo/target/debug/examples/road_atlas-0679c02e20836ed3.d: examples/road_atlas.rs

/root/repo/target/debug/examples/road_atlas-0679c02e20836ed3: examples/road_atlas.rs

examples/road_atlas.rs:
