/root/repo/target/debug/examples/map_io-1654a7ec908f2dbf.d: examples/map_io.rs

/root/repo/target/debug/examples/map_io-1654a7ec908f2dbf: examples/map_io.rs

examples/map_io.rs:
