/root/repo/target/debug/deps/lsdb_tiger-21f896d0f5bb4ff3.d: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

/root/repo/target/debug/deps/liblsdb_tiger-21f896d0f5bb4ff3.rlib: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

/root/repo/target/debug/deps/liblsdb_tiger-21f896d0f5bb4ff3.rmeta: crates/tiger/src/lib.rs crates/tiger/src/gen.rs crates/tiger/src/io.rs

crates/tiger/src/lib.rs:
crates/tiger/src/gen.rs:
crates/tiger/src/io.rs:
