/root/repo/target/debug/deps/lsdb-84146cce49d8f94c.d: src/lib.rs

/root/repo/target/debug/deps/liblsdb-84146cce49d8f94c.rlib: src/lib.rs

/root/repo/target/debug/deps/liblsdb-84146cce49d8f94c.rmeta: src/lib.rs

src/lib.rs:
