/root/repo/target/debug/deps/prop-6a375ad9239bd28f.d: crates/rplus/tests/prop.rs

/root/repo/target/debug/deps/prop-6a375ad9239bd28f: crates/rplus/tests/prop.rs

crates/rplus/tests/prop.rs:
