/root/repo/target/debug/deps/lsdb_core-f81a76d25e8be52a.d: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/liblsdb_core-f81a76d25e8be52a.rlib: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/liblsdb_core-f81a76d25e8be52a.rmeta: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/brute.rs:
crates/core/src/index.rs:
crates/core/src/map.rs:
crates/core/src/pointgen.rs:
crates/core/src/queries.rs:
crates/core/src/rectnode.rs:
crates/core/src/seg_table.rs:
crates/core/src/stats.rs:
