/root/repo/target/debug/deps/lru_model-f9926397cc48bfb7.d: crates/pager/tests/lru_model.rs

/root/repo/target/debug/deps/lru_model-f9926397cc48bfb7: crates/pager/tests/lru_model.rs

crates/pager/tests/lru_model.rs:
