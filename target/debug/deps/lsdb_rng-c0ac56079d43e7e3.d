/root/repo/target/debug/deps/lsdb_rng-c0ac56079d43e7e3.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/liblsdb_rng-c0ac56079d43e7e3.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/liblsdb_rng-c0ac56079d43e7e3.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
