/root/repo/target/debug/deps/lsdb_pager-276b5ce61184503b.d: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

/root/repo/target/debug/deps/lsdb_pager-276b5ce61184503b: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

crates/pager/src/lib.rs:
crates/pager/src/pool.rs:
crates/pager/src/storage.rs:
