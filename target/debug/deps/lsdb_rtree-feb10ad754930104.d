/root/repo/target/debug/deps/lsdb_rtree-feb10ad754930104.d: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

/root/repo/target/debug/deps/lsdb_rtree-feb10ad754930104: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

crates/rtree/src/lib.rs:
crates/rtree/src/bulk.rs:
crates/rtree/src/split.rs:
