/root/repo/target/debug/deps/prop-36e1847a6acc84af.d: crates/pmr/tests/prop.rs

/root/repo/target/debug/deps/prop-36e1847a6acc84af: crates/pmr/tests/prop.rs

crates/pmr/tests/prop.rs:
