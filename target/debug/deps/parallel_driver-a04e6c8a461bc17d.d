/root/repo/target/debug/deps/parallel_driver-a04e6c8a461bc17d.d: tests/parallel_driver.rs

/root/repo/target/debug/deps/parallel_driver-a04e6c8a461bc17d: tests/parallel_driver.rs

tests/parallel_driver.rs:
