/root/repo/target/debug/deps/lsdb_grid-d539399218516612.d: crates/grid/src/lib.rs

/root/repo/target/debug/deps/liblsdb_grid-d539399218516612.rlib: crates/grid/src/lib.rs

/root/repo/target/debug/deps/liblsdb_grid-d539399218516612.rmeta: crates/grid/src/lib.rs

crates/grid/src/lib.rs:
