/root/repo/target/debug/deps/lsdb_btree-9066392aab80de0c.d: crates/btree/src/lib.rs crates/btree/src/node.rs

/root/repo/target/debug/deps/lsdb_btree-9066392aab80de0c: crates/btree/src/lib.rs crates/btree/src/node.rs

crates/btree/src/lib.rs:
crates/btree/src/node.rs:
