/root/repo/target/debug/deps/lsdb_pager-628120594e43d485.d: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

/root/repo/target/debug/deps/liblsdb_pager-628120594e43d485.rlib: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

/root/repo/target/debug/deps/liblsdb_pager-628120594e43d485.rmeta: crates/pager/src/lib.rs crates/pager/src/pool.rs crates/pager/src/storage.rs

crates/pager/src/lib.rs:
crates/pager/src/pool.rs:
crates/pager/src/storage.rs:
