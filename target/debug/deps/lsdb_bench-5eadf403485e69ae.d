/root/repo/target/debug/deps/lsdb_bench-5eadf403485e69ae.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/liblsdb_bench-5eadf403485e69ae.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/liblsdb_bench-5eadf403485e69ae.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
