/root/repo/target/debug/deps/lsdb-d48d25302c334df9.d: src/lib.rs

/root/repo/target/debug/deps/lsdb-d48d25302c334df9: src/lib.rs

src/lib.rs:
