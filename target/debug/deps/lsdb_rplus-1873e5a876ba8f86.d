/root/repo/target/debug/deps/lsdb_rplus-1873e5a876ba8f86.d: crates/rplus/src/lib.rs

/root/repo/target/debug/deps/lsdb_rplus-1873e5a876ba8f86: crates/rplus/src/lib.rs

crates/rplus/src/lib.rs:
