/root/repo/target/debug/deps/lsdb-e423542d939572c9.d: src/bin/lsdb.rs

/root/repo/target/debug/deps/lsdb-e423542d939572c9: src/bin/lsdb.rs

src/bin/lsdb.rs:
