/root/repo/target/debug/deps/cross_structure-ef4f9d99f60db283.d: tests/cross_structure.rs

/root/repo/target/debug/deps/cross_structure-ef4f9d99f60db283: tests/cross_structure.rs

tests/cross_structure.rs:
