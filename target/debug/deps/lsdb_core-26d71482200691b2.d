/root/repo/target/debug/deps/lsdb_core-26d71482200691b2.d: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/lsdb_core-26d71482200691b2: crates/core/src/lib.rs crates/core/src/brute.rs crates/core/src/index.rs crates/core/src/map.rs crates/core/src/pointgen.rs crates/core/src/queries.rs crates/core/src/rectnode.rs crates/core/src/seg_table.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/brute.rs:
crates/core/src/index.rs:
crates/core/src/map.rs:
crates/core/src/pointgen.rs:
crates/core/src/queries.rs:
crates/core/src/rectnode.rs:
crates/core/src/seg_table.rs:
crates/core/src/stats.rs:
