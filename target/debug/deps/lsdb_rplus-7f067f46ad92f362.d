/root/repo/target/debug/deps/lsdb_rplus-7f067f46ad92f362.d: crates/rplus/src/lib.rs

/root/repo/target/debug/deps/liblsdb_rplus-7f067f46ad92f362.rlib: crates/rplus/src/lib.rs

/root/repo/target/debug/deps/liblsdb_rplus-7f067f46ad92f362.rmeta: crates/rplus/src/lib.rs

crates/rplus/src/lib.rs:
