/root/repo/target/debug/deps/experiments_smoke-125d0a441fb2b5c9.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-125d0a441fb2b5c9: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
