/root/repo/target/debug/deps/lsdb_pmr-6c9950921d670d6c.d: crates/pmr/src/lib.rs

/root/repo/target/debug/deps/liblsdb_pmr-6c9950921d670d6c.rlib: crates/pmr/src/lib.rs

/root/repo/target/debug/deps/liblsdb_pmr-6c9950921d670d6c.rmeta: crates/pmr/src/lib.rs

crates/pmr/src/lib.rs:
