/root/repo/target/debug/deps/lsdb_btree-d795e594a6b4f64e.d: crates/btree/src/lib.rs crates/btree/src/node.rs

/root/repo/target/debug/deps/liblsdb_btree-d795e594a6b4f64e.rlib: crates/btree/src/lib.rs crates/btree/src/node.rs

/root/repo/target/debug/deps/liblsdb_btree-d795e594a6b4f64e.rmeta: crates/btree/src/lib.rs crates/btree/src/node.rs

crates/btree/src/lib.rs:
crates/btree/src/node.rs:
