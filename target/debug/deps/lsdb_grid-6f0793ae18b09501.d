/root/repo/target/debug/deps/lsdb_grid-6f0793ae18b09501.d: crates/grid/src/lib.rs

/root/repo/target/debug/deps/lsdb_grid-6f0793ae18b09501: crates/grid/src/lib.rs

crates/grid/src/lib.rs:
