/root/repo/target/debug/deps/lsdb_geom-83f741a4a41f8898.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

/root/repo/target/debug/deps/liblsdb_geom-83f741a4a41f8898.rlib: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

/root/repo/target/debug/deps/liblsdb_geom-83f741a4a41f8898.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/dist.rs crates/geom/src/morton.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/segment.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/dist.rs:
crates/geom/src/morton.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/segment.rs:
