/root/repo/target/debug/deps/lsdb_repr-9fa33f9d6dd4cf70.d: crates/repr/src/lib.rs

/root/repo/target/debug/deps/liblsdb_repr-9fa33f9d6dd4cf70.rlib: crates/repr/src/lib.rs

/root/repo/target/debug/deps/liblsdb_repr-9fa33f9d6dd4cf70.rmeta: crates/repr/src/lib.rs

crates/repr/src/lib.rs:
