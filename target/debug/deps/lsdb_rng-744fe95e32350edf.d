/root/repo/target/debug/deps/lsdb_rng-744fe95e32350edf.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/lsdb_rng-744fe95e32350edf: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
