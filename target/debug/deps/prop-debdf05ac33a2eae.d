/root/repo/target/debug/deps/prop-debdf05ac33a2eae.d: crates/grid/tests/prop.rs

/root/repo/target/debug/deps/prop-debdf05ac33a2eae: crates/grid/tests/prop.rs

crates/grid/tests/prop.rs:
