/root/repo/target/debug/deps/lsdb_repr-1861c8a08d1e16f7.d: crates/repr/src/lib.rs

/root/repo/target/debug/deps/lsdb_repr-1861c8a08d1e16f7: crates/repr/src/lib.rs

crates/repr/src/lib.rs:
