/root/repo/target/debug/deps/lsdb-6cb080ea91d3e6a9.d: src/bin/lsdb.rs

/root/repo/target/debug/deps/lsdb-6cb080ea91d3e6a9: src/bin/lsdb.rs

src/bin/lsdb.rs:
