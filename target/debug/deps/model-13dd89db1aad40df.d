/root/repo/target/debug/deps/model-13dd89db1aad40df.d: crates/btree/tests/model.rs

/root/repo/target/debug/deps/model-13dd89db1aad40df: crates/btree/tests/model.rs

crates/btree/tests/model.rs:
