/root/repo/target/debug/deps/prop-72c5277253c8e143.d: crates/rtree/tests/prop.rs

/root/repo/target/debug/deps/prop-72c5277253c8e143: crates/rtree/tests/prop.rs

crates/rtree/tests/prop.rs:
