/root/repo/target/debug/deps/lsdb_pmr-d83b171983337fd0.d: crates/pmr/src/lib.rs

/root/repo/target/debug/deps/lsdb_pmr-d83b171983337fd0: crates/pmr/src/lib.rs

crates/pmr/src/lib.rs:
