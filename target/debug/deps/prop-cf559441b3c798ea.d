/root/repo/target/debug/deps/prop-cf559441b3c798ea.d: crates/repr/tests/prop.rs

/root/repo/target/debug/deps/prop-cf559441b3c798ea: crates/repr/tests/prop.rs

crates/repr/tests/prop.rs:
