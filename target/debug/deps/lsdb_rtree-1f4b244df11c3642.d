/root/repo/target/debug/deps/lsdb_rtree-1f4b244df11c3642.d: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

/root/repo/target/debug/deps/liblsdb_rtree-1f4b244df11c3642.rlib: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

/root/repo/target/debug/deps/liblsdb_rtree-1f4b244df11c3642.rmeta: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/split.rs

crates/rtree/src/lib.rs:
crates/rtree/src/bulk.rs:
crates/rtree/src/split.rs:
