//! Raw on-page node layouts.
//!
//! All accessors operate on the raw page buffer so that a node is never
//! deserialized wholesale on the hot search path; whole-node vectors are
//! materialized only for splits and merges.

const HDR: usize = 8;
const LEAF_ENTRY: usize = 8;
const INT_ENTRY: usize = 12; // (sep: u64, child: u32)
const INT_CHILD0: usize = 8;
const INT_PAIRS: usize = 12;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tag {
    Leaf,
    Internal,
}

fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Accessors for leaf pages: a sorted array of `u64` keys.
pub struct LeafView;

impl LeafView {
    pub fn capacity(page_size: usize) -> usize {
        (page_size - HDR) / LEAF_ENTRY
    }

    pub fn init(buf: &mut [u8]) {
        buf[..HDR].fill(0);
        buf[0] = 0; // Tag::Leaf
    }

    pub fn tag(buf: &[u8]) -> Tag {
        if buf[0] == 0 {
            Tag::Leaf
        } else {
            Tag::Internal
        }
    }

    pub fn count(buf: &[u8]) -> usize {
        get_u16(buf, 2) as usize
    }

    fn set_count(buf: &mut [u8], c: usize) {
        put_u16(buf, 2, c as u16);
    }

    pub fn key_at(buf: &[u8], i: usize) -> u64 {
        debug_assert!(i < Self::count(buf));
        get_u64(buf, HDR + i * LEAF_ENTRY)
    }

    /// The raw bytes of the key region `start..count` — a packed array of
    /// ascending `u64` LE keys, handed to the shared scan kernel so range
    /// scans walk the page in place instead of re-decoding per index.
    pub fn key_bytes(buf: &[u8], start: usize, count: usize) -> &[u8] {
        debug_assert!(start <= count && count <= Self::count(buf));
        &buf[HDR + start * LEAF_ENTRY..HDR + count * LEAF_ENTRY]
    }

    /// Binary search: `Ok(i)` if `key` is at index `i`, else `Err(i)` with
    /// the insertion point.
    pub fn search(buf: &[u8], key: u64) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = Self::count(buf);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = get_u64(buf, HDR + mid * LEAF_ENTRY);
            if k < key {
                lo = mid + 1;
            } else if k > key {
                hi = mid;
            } else {
                return Ok(mid);
            }
        }
        Err(lo)
    }

    pub fn insert_at(buf: &mut [u8], at: usize, key: u64) {
        let c = Self::count(buf);
        debug_assert!(at <= c && c < Self::capacity(buf.len()));
        let start = HDR + at * LEAF_ENTRY;
        let end = HDR + c * LEAF_ENTRY;
        buf.copy_within(start..end, start + LEAF_ENTRY);
        put_u64(buf, start, key);
        Self::set_count(buf, c + 1);
    }

    pub fn remove_at(buf: &mut [u8], at: usize) {
        let c = Self::count(buf);
        debug_assert!(at < c);
        let start = HDR + at * LEAF_ENTRY;
        let end = HDR + c * LEAF_ENTRY;
        buf.copy_within(start + LEAF_ENTRY..end, start);
        Self::set_count(buf, c - 1);
    }

    pub fn keys(buf: &[u8]) -> Vec<u64> {
        (0..Self::count(buf))
            .map(|i| Self::key_at(buf, i))
            .collect()
    }

    pub fn write_keys(buf: &mut [u8], keys: &[u64]) {
        debug_assert!(keys.len() <= Self::capacity(buf.len()));
        for (i, &k) in keys.iter().enumerate() {
            put_u64(buf, HDR + i * LEAF_ENTRY, k);
        }
        Self::set_count(buf, keys.len());
    }
}

/// Accessors for internal pages: `child[0]` then `count` pairs
/// `(sep, child)`; `sep[i]` separates `child[i]` (keys `< sep`) from
/// `child[i+1]` (keys `>= sep`).
pub struct InternalView;

impl InternalView {
    /// Maximum separator count. One physical entry slot is held back as a
    /// transient overflow slot: inserts land in the page first and the
    /// split happens after, so the page must fit `capacity + 1` pairs.
    pub fn capacity(page_size: usize) -> usize {
        (page_size - INT_PAIRS) / INT_ENTRY - 1
    }

    pub fn init(buf: &mut [u8], child0: lsdb_pager::PageId) {
        buf[..HDR].fill(0);
        buf[0] = 1; // Tag::Internal
        put_u32(buf, INT_CHILD0, child0.0);
    }

    pub fn tag(buf: &[u8]) -> Tag {
        LeafView::tag(buf)
    }

    /// Number of separator keys (children = count + 1).
    pub fn count(buf: &[u8]) -> usize {
        get_u16(buf, 2) as usize
    }

    fn set_count(buf: &mut [u8], c: usize) {
        put_u16(buf, 2, c as u16);
    }

    pub fn sep_at(buf: &[u8], i: usize) -> u64 {
        debug_assert!(i < Self::count(buf));
        get_u64(buf, INT_PAIRS + i * INT_ENTRY)
    }

    pub fn set_sep(buf: &mut [u8], i: usize, sep: u64) {
        debug_assert!(i < Self::count(buf));
        put_u64(buf, INT_PAIRS + i * INT_ENTRY, sep);
    }

    pub fn child_at(buf: &[u8], i: usize) -> lsdb_pager::PageId {
        debug_assert!(i <= Self::count(buf));
        if i == 0 {
            lsdb_pager::PageId(get_u32(buf, INT_CHILD0))
        } else {
            lsdb_pager::PageId(get_u32(buf, INT_PAIRS + (i - 1) * INT_ENTRY + 8))
        }
    }

    /// Index of the child whose subtree may contain `key`:
    /// the number of separators `<= key`.
    pub fn child_index_for(buf: &[u8], key: u64) -> usize {
        let mut lo = 0usize;
        let mut hi = Self::count(buf);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if Self::sep_at(buf, mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    pub fn child_for(buf: &[u8], key: u64) -> lsdb_pager::PageId {
        Self::child_at(buf, Self::child_index_for(buf, key))
    }

    /// Insert `(sep, child)` so that `sep` lands at separator index `at`
    /// and `child` at child index `at + 1`.
    pub fn insert_at(buf: &mut [u8], at: usize, sep: u64, child: lsdb_pager::PageId) {
        let c = Self::count(buf);
        debug_assert!(at <= c, "insert_at {at} > count {c}");
        let start = INT_PAIRS + at * INT_ENTRY;
        let end = INT_PAIRS + c * INT_ENTRY;
        buf.copy_within(start..end, start + INT_ENTRY);
        put_u64(buf, start, sep);
        put_u32(buf, start + 8, child.0);
        Self::set_count(buf, c + 1);
    }

    /// Remove separator `at` and child `at + 1`.
    pub fn remove_pair_at(buf: &mut [u8], at: usize) {
        let c = Self::count(buf);
        debug_assert!(at < c);
        let start = INT_PAIRS + at * INT_ENTRY;
        let end = INT_PAIRS + c * INT_ENTRY;
        buf.copy_within(start + INT_ENTRY..end, start);
        Self::set_count(buf, c - 1);
    }

    /// Drop trailing pairs so that `new_count` separators remain.
    pub fn truncate(buf: &mut [u8], new_count: usize) {
        debug_assert!(new_count <= Self::count(buf));
        Self::set_count(buf, new_count);
    }

    /// Prepend: `new_child0` becomes child 0 and the old child 0 is pushed
    /// into pair position 0 behind separator `sep`.
    pub fn push_front(buf: &mut [u8], new_child0: lsdb_pager::PageId, sep: u64) {
        let old_child0 = Self::child_at(buf, 0);
        Self::insert_at(buf, 0, sep, old_child0);
        put_u32(buf, INT_CHILD0, new_child0.0);
    }

    /// Remove child 0 and separator 0; child 1 becomes the new child 0.
    pub fn pop_front(buf: &mut [u8]) {
        let new_child0 = Self::child_at(buf, 1);
        Self::remove_pair_at(buf, 0);
        put_u32(buf, INT_CHILD0, new_child0.0);
    }

    pub fn seps(buf: &[u8]) -> Vec<u64> {
        (0..Self::count(buf))
            .map(|i| Self::sep_at(buf, i))
            .collect()
    }

    /// All `count + 1` children.
    pub fn children(buf: &[u8]) -> Vec<lsdb_pager::PageId> {
        (0..=Self::count(buf))
            .map(|i| Self::child_at(buf, i))
            .collect()
    }

    /// Overwrite the pair region: `seps[i]` paired with `tail_children[i]`
    /// (the children at indices `1..`). Child 0 must already be set via
    /// [`InternalView::init`].
    pub fn write_pairs(buf: &mut [u8], seps: &[u64], tail_children: &[lsdb_pager::PageId]) {
        debug_assert_eq!(seps.len(), tail_children.len());
        debug_assert!(seps.len() <= Self::capacity(buf.len()));
        for (i, (&s, &c)) in seps.iter().zip(tail_children).enumerate() {
            put_u64(buf, INT_PAIRS + i * INT_ENTRY, s);
            put_u32(buf, INT_PAIRS + i * INT_ENTRY + 8, c.0);
        }
        Self::set_count(buf, seps.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_pager::PageId;

    #[test]
    fn leaf_capacity_matches_paper_scale() {
        // 1 KB pages hold on the order of 120 8-byte tuples (we fit 127;
        // the paper reserves a little more header space).
        assert_eq!(LeafView::capacity(1024), 127);
        assert_eq!(LeafView::capacity(64), 7);
    }

    #[test]
    fn leaf_insert_remove_shift() {
        let mut buf = vec![0u8; 64];
        LeafView::init(&mut buf);
        LeafView::insert_at(&mut buf, 0, 10);
        LeafView::insert_at(&mut buf, 1, 30);
        LeafView::insert_at(&mut buf, 1, 20);
        assert_eq!(LeafView::keys(&buf), vec![10, 20, 30]);
        LeafView::remove_at(&mut buf, 1);
        assert_eq!(LeafView::keys(&buf), vec![10, 30]);
    }

    #[test]
    fn leaf_search() {
        let mut buf = vec![0u8; 128];
        LeafView::init(&mut buf);
        LeafView::write_keys(&mut buf, &[2, 4, 6, 8]);
        assert_eq!(LeafView::search(&buf, 4), Ok(1));
        assert_eq!(LeafView::search(&buf, 5), Err(2));
        assert_eq!(LeafView::search(&buf, 1), Err(0));
        assert_eq!(LeafView::search(&buf, 9), Err(4));
    }

    #[test]
    fn internal_child_routing() {
        let mut buf = vec![0u8; 128];
        InternalView::init(&mut buf, PageId(100));
        InternalView::insert_at(&mut buf, 0, 10, PageId(101));
        InternalView::insert_at(&mut buf, 1, 20, PageId(102));
        // keys < 10 -> child 0; 10..20 -> child 1; >= 20 -> child 2.
        assert_eq!(InternalView::child_for(&buf, 5), PageId(100));
        assert_eq!(InternalView::child_for(&buf, 10), PageId(101));
        assert_eq!(InternalView::child_for(&buf, 19), PageId(101));
        assert_eq!(InternalView::child_for(&buf, 20), PageId(102));
        assert_eq!(InternalView::child_for(&buf, u64::MAX), PageId(102));
    }

    #[test]
    fn internal_push_pop_front() {
        let mut buf = vec![0u8; 128];
        InternalView::init(&mut buf, PageId(1));
        InternalView::insert_at(&mut buf, 0, 50, PageId(2));
        InternalView::push_front(&mut buf, PageId(0), 25);
        assert_eq!(
            InternalView::children(&buf),
            vec![PageId(0), PageId(1), PageId(2)]
        );
        assert_eq!(InternalView::seps(&buf), vec![25, 50]);
        InternalView::pop_front(&mut buf);
        assert_eq!(InternalView::children(&buf), vec![PageId(1), PageId(2)]);
        assert_eq!(InternalView::seps(&buf), vec![50]);
    }
}
