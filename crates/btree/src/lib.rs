//! A disk-resident B-tree over `u64` keys.
//!
//! This is the storage engine underneath the linear PMR quadtree: the paper
//! stores each q-edge as an 8-byte 2-tuple *(locational code, segment id)*
//! "in a B-tree indexed on the basis of the value of L". We follow the
//! classic composite-key trick — the whole 2-tuple is the key — so the tree
//! is a **set of u64s** with fully ordered, duplicate-free keys, and range
//! scans over a locational-code prefix enumerate a bucket's q-edges.
//!
//! Layout (page size `S`):
//!
//! * **Leaf**: `[tag=0, _, count: u16, _pad to 8]` then `count` sorted
//!   little-endian `u64` keys. Capacity `(S - 8) / 8` (127 for the paper's
//!   1 KB pages; the paper reports ≈120, the difference being header
//!   bookkeeping).
//! * **Internal**: `[tag=1, _, count: u16, _pad to 8]`, then `child[0]:
//!   u32`, then `count` pairs `(sep: u64, child: u32)`. Separator `sep[i]`
//!   is a copy of the smallest key in `child[i+1]`'s subtree: child `i`
//!   holds keys `< sep[i]`, child `i+1` holds keys `>= sep[i]`.
//!
//! All nodes live in pages behind an [`lsdb_pager::BufferPool`], so every
//! traversal is charged realistic (potential) disk accesses.

use lsdb_pager::{BufferPool, MemPool, PageId, Storage};
use std::ops::ControlFlow;

mod node;
use node::{InternalView, LeafView, Tag};

/// Statistics on logical node activity (page-level I/O lives in the pool).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NodeStats {
    /// B-tree nodes examined (each examination touches one page).
    pub node_visits: u64,
}

/// A disk B-tree storing a set of `u64` keys.
pub struct BTree<S: Storage> {
    pool: BufferPool<S>,
    root: PageId,
    len: u64,
    height: u32,
    leaf_cap: usize,
    internal_cap: usize, // max separator keys per internal node
    stats: NodeStats,
}

/// The in-memory-backed B-tree used by experiments.
pub type MemBTree = BTree<lsdb_pager::MemStorage>;

impl MemBTree {
    /// Convenience constructor over an in-memory pool.
    pub fn in_memory(page_size: usize, pool_pages: usize) -> MemBTree {
        BTree::new(MemPool::in_memory(page_size, pool_pages))
    }
}

enum Insert {
    Done(bool),
    Split { sep: u64, right: PageId },
}

impl<S: Storage> BTree<S> {
    /// Create an empty tree owning `pool`.
    pub fn new(mut pool: BufferPool<S>) -> Self {
        let page_size = pool.page_size();
        let leaf_cap = LeafView::capacity(page_size);
        let internal_cap = InternalView::capacity(page_size);
        assert!(leaf_cap >= 3 && internal_cap >= 3, "page size too small");
        let root = pool.allocate();
        pool.with_page_mut(root, LeafView::init);
        BTree {
            pool,
            root,
            len: 0,
            height: 1,
            leaf_cap,
            internal_cap,
            stats: NodeStats::default(),
        }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree in nodes (1 = the root is a leaf). The paper
    /// observes height 4 for its 50k-segment maps with 1 KB pages.
    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    pub fn pool_mut(&mut self) -> &mut BufferPool<S> {
        &mut self.pool
    }

    pub fn into_pool(self) -> BufferPool<S> {
        self.pool
    }

    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = NodeStats::default();
    }

    /// Insert a key; returns `false` if it was already present.
    pub fn insert(&mut self, key: u64) -> bool {
        match self.insert_rec(self.root, key, self.height) {
            Insert::Done(added) => {
                if added {
                    self.len += 1;
                }
                added
            }
            Insert::Split { sep, right } => {
                // Grow a new root above the old one.
                let old_root = self.root;
                let new_root = self.pool.allocate();
                self.pool.with_page_mut(new_root, |buf| {
                    InternalView::init(buf, old_root);
                    InternalView::insert_at(buf, 0, sep, right);
                });
                self.root = new_root;
                self.height += 1;
                self.len += 1;
                true
            }
        }
    }

    /// Remove a key; returns `false` if absent.
    pub fn remove(&mut self, key: u64) -> bool {
        let removed = self.remove_rec(self.root, key, self.height);
        if removed {
            self.len -= 1;
            // Collapse a root that became a trivial internal node.
            if self.height > 1 {
                let (count, only_child) = self.pool.with_page(self.root, |buf| {
                    (InternalView::count(buf), InternalView::child_at(buf, 0))
                });
                if count == 0 {
                    self.pool.free(self.root);
                    self.root = only_child;
                    self.height -= 1;
                }
            }
        }
        removed
    }

    /// Exact-key membership test.
    pub fn contains(&mut self, key: u64) -> bool {
        let mut pid = self.root;
        let mut level = self.height;
        loop {
            self.stats.node_visits += 1;
            if level == 1 {
                return self
                    .pool
                    .with_page(pid, |buf| LeafView::search(buf, key).is_ok());
            }
            pid = self
                .pool
                .with_page(pid, |buf| InternalView::child_for(buf, key));
            level -= 1;
        }
    }

    /// Visit all keys in `[lo, hi]` in ascending order. The callback may
    /// stop the scan early by returning [`ControlFlow::Break`].
    pub fn scan_range(
        &mut self,
        lo: u64,
        hi: u64,
        f: &mut impl FnMut(u64) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi {
            return ControlFlow::Continue(());
        }
        self.scan_rec(self.root, self.height, lo, hi, f)
    }

    /// Collect all keys in `[lo, hi]`.
    pub fn collect_range(&mut self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let _ = self.scan_range(lo, hi, &mut |k| {
            out.push(k);
            ControlFlow::Continue(())
        });
        out
    }

    /// Number of keys in `[lo, hi]`.
    pub fn count_range(&mut self, lo: u64, hi: u64) -> u64 {
        let mut n = 0;
        let _ = self.scan_range(lo, hi, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// Smallest key `>= lo` within `[lo, hi]`, if any.
    pub fn first_in_range(&mut self, lo: u64, hi: u64) -> Option<u64> {
        let mut found = None;
        let _ = self.scan_range(lo, hi, &mut |k| {
            found = Some(k);
            ControlFlow::Break(())
        });
        found
    }

    /// Largest key `<= hi` within `[lo, hi]`, if any. This is the
    /// predecessor search linear quadtrees use for point location.
    pub fn last_in_range(&mut self, lo: u64, hi: u64) -> Option<u64> {
        if lo > hi {
            return None;
        }
        self.last_rec(self.root, self.height, lo, hi)
    }

    // ------------------------------------------------------------------
    // Shared (&self) read path.
    //
    // Mirrors of the queries above that never touch the pool's LRU or the
    // tree's internal counters: page accesses are charged to the caller's
    // [`PoolCtx`], so any number of query threads can search one tree
    // concurrently while a batch's disk totals stay a plain per-context
    // sum. Build and maintenance stay on the exclusive (&mut) methods.
    // ------------------------------------------------------------------

    /// Exact-key membership test on the shared read path.
    pub fn contains_ctx(&self, key: u64, ctx: &mut lsdb_pager::PoolCtx) -> bool {
        let mut pid = self.root;
        let mut level = self.height;
        loop {
            let buf = self.pool.read_page_pinned(pid, ctx);
            if level == 1 {
                return LeafView::search(buf, key).is_ok();
            }
            pid = InternalView::child_for(buf, key);
            level -= 1;
        }
    }

    /// Visit all keys in `[lo, hi]` ascending, on the shared read path.
    pub fn scan_range_ctx(
        &self,
        lo: u64,
        hi: u64,
        ctx: &mut lsdb_pager::PoolCtx,
        f: &mut impl FnMut(u64) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi {
            return ControlFlow::Continue(());
        }
        self.scan_rec_ctx(self.root, self.height, lo, hi, ctx, f)
    }

    /// Collect all keys in `[lo, hi]`, on the shared read path.
    pub fn collect_range_ctx(&self, lo: u64, hi: u64, ctx: &mut lsdb_pager::PoolCtx) -> Vec<u64> {
        let mut out = Vec::new();
        let _ = self.scan_range_ctx(lo, hi, ctx, &mut |k| {
            out.push(k);
            ControlFlow::Continue(())
        });
        out
    }

    /// Number of keys in `[lo, hi]`, on the shared read path.
    pub fn count_range_ctx(&self, lo: u64, hi: u64, ctx: &mut lsdb_pager::PoolCtx) -> u64 {
        let mut n = 0;
        let _ = self.scan_range_ctx(lo, hi, ctx, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// Smallest key `>= lo` within `[lo, hi]`, on the shared read path.
    pub fn first_in_range_ctx(
        &self,
        lo: u64,
        hi: u64,
        ctx: &mut lsdb_pager::PoolCtx,
    ) -> Option<u64> {
        let mut found = None;
        let _ = self.scan_range_ctx(lo, hi, ctx, &mut |k| {
            found = Some(k);
            ControlFlow::Break(())
        });
        found
    }

    /// Largest key `<= hi` within `[lo, hi]` (the predecessor search linear
    /// quadtrees use for point location), on the shared read path.
    pub fn last_in_range_ctx(
        &self,
        lo: u64,
        hi: u64,
        ctx: &mut lsdb_pager::PoolCtx,
    ) -> Option<u64> {
        if lo > hi {
            return None;
        }
        self.last_rec_ctx(self.root, self.height, lo, hi, ctx)
    }

    fn scan_rec_ctx(
        &self,
        pid: PageId,
        level: u32,
        lo: u64,
        hi: u64,
        ctx: &mut lsdb_pager::PoolCtx,
        f: &mut impl FnMut(u64) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Steady-state queries must not allocate: leaves are walked in
        // place over the pinned borrow, and internal child ids are staged
        // through a fixed stack buffer. Re-borrowing the parent between
        // chunks is free in the disk counters — the page is already pinned
        // in `ctx` after its first access.
        if level == 1 {
            let buf = self.pool.read_page_pinned(pid, ctx);
            let start = LeafView::search(buf, lo).unwrap_or_else(|i| i);
            let count = LeafView::count(buf);
            return lsdb_core::scan::scan_keys_le(LeafView::key_bytes(buf, start, count), hi, f);
        }
        let buf = self.pool.read_page_pinned(pid, ctx);
        let count = InternalView::count(buf);
        let start = InternalView::child_index_for(buf, lo);
        let end = InternalView::child_index_for(buf, hi).min(count);
        // Recursing needs `ctx` back, so child ids are staged on the stack
        // in fixed chunks rather than re-reading the parent per child (or
        // collecting into a Vec — steady-state queries must not allocate).
        const CHUNK: usize = 32;
        let mut kids = [PageId(0); CHUNK];
        let mut i = start;
        while i <= end {
            let n = (end - i + 1).min(CHUNK);
            let buf = self.pool.read_page_pinned(pid, ctx);
            for (j, kid) in kids[..n].iter_mut().enumerate() {
                *kid = InternalView::child_at(buf, i + j);
            }
            for &child in &kids[..n] {
                self.scan_rec_ctx(child, level - 1, lo, hi, ctx, f)?;
            }
            i += n;
        }
        ControlFlow::Continue(())
    }

    fn last_rec_ctx(
        &self,
        pid: PageId,
        level: u32,
        lo: u64,
        hi: u64,
        ctx: &mut lsdb_pager::PoolCtx,
    ) -> Option<u64> {
        if level == 1 {
            let buf = self.pool.read_page_pinned(pid, ctx);
            let end = match LeafView::search(buf, hi) {
                Ok(i) => i + 1,
                Err(i) => i,
            };
            if end == 0 {
                return None;
            }
            let k = LeafView::key_at(buf, end - 1);
            return (k >= lo).then_some(k);
        }
        let buf = self.pool.read_page_pinned(pid, ctx);
        let count = InternalView::count(buf);
        let start = InternalView::child_index_for(buf, lo);
        let end = InternalView::child_index_for(buf, hi).min(count);
        // Rightmost candidate almost always hits, so a per-child pinned
        // re-borrow (free in the disk counters) beats staging the ids.
        for i in (start..=end).rev() {
            let buf = self.pool.read_page_pinned(pid, ctx);
            let child = InternalView::child_at(buf, i);
            if let Some(k) = self.last_rec_ctx(child, level - 1, lo, hi, ctx) {
                return Some(k);
            }
        }
        None
    }

    fn last_rec(&mut self, pid: PageId, level: u32, lo: u64, hi: u64) -> Option<u64> {
        self.stats.node_visits += 1;
        if level == 1 {
            return self.pool.with_page(pid, |buf| {
                let count = LeafView::count(buf);
                // Index of the first key > hi; the answer precedes it.
                let end = match LeafView::search(buf, hi) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let _ = count;
                if end == 0 {
                    return None;
                }
                let k = LeafView::key_at(buf, end - 1);
                (k >= lo).then_some(k)
            });
        }
        let (start, end, children) = self.pool.with_page(pid, |buf| {
            let count = InternalView::count(buf);
            let start = InternalView::child_index_for(buf, lo);
            let end = InternalView::child_index_for(buf, hi).min(count);
            let children: Vec<PageId> = (start..=end)
                .map(|i| InternalView::child_at(buf, i))
                .collect();
            (start, end, children)
        });
        let _ = (start, end);
        // Scan candidate children from the right.
        for child in children.into_iter().rev() {
            if let Some(k) = self.last_rec(child, level - 1, lo, hi) {
                return Some(k);
            }
        }
        None
    }

    fn scan_rec(
        &mut self,
        pid: PageId,
        level: u32,
        lo: u64,
        hi: u64,
        f: &mut impl FnMut(u64) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.stats.node_visits += 1;
        if level == 1 {
            let keys = self.pool.with_page(pid, |buf| {
                let count = LeafView::count(buf);
                let start = LeafView::search(buf, lo).unwrap_or_else(|i| i);
                let mut keys = Vec::new();
                for i in start..count {
                    let k = LeafView::key_at(buf, i);
                    if k > hi {
                        break;
                    }
                    keys.push(k);
                }
                keys
            });
            for k in keys {
                f(k)?;
            }
            return ControlFlow::Continue(());
        }
        let children = self.pool.with_page(pid, |buf| {
            let count = InternalView::count(buf);
            let start = InternalView::child_index_for(buf, lo);
            let end = InternalView::child_index_for(buf, hi);
            (start..=end.min(count))
                .map(|i| InternalView::child_at(buf, i))
                .collect::<Vec<_>>()
        });
        for child in children {
            self.scan_rec(child, level - 1, lo, hi, f)?;
        }
        ControlFlow::Continue(())
    }

    fn insert_rec(&mut self, pid: PageId, key: u64, level: u32) -> Insert {
        self.stats.node_visits += 1;
        if level == 1 {
            return self.insert_leaf(pid, key);
        }
        let (idx, child) = self.pool.with_page(pid, |buf| {
            let idx = InternalView::child_index_for(buf, key);
            (idx, InternalView::child_at(buf, idx))
        });
        match self.insert_rec(child, key, level - 1) {
            Insert::Done(added) => Insert::Done(added),
            Insert::Split { sep, right } => {
                let count = self.pool.with_page_mut(pid, |buf| {
                    InternalView::insert_at(buf, idx, sep, right);
                    InternalView::count(buf)
                });
                if count <= self.internal_cap {
                    return Insert::Done(true);
                }
                self.split_internal(pid)
            }
        }
    }

    fn insert_leaf(&mut self, pid: PageId, key: u64) -> Insert {
        enum Outcome {
            Present,
            Inserted,
            NeedsSplit(Vec<u64>),
        }
        let outcome = self
            .pool
            .with_page_mut(pid, |buf| match LeafView::search(buf, key) {
                Ok(_) => Outcome::Present,
                Err(at) => {
                    if LeafView::count(buf) < LeafView::capacity(buf.len()) {
                        LeafView::insert_at(buf, at, key);
                        Outcome::Inserted
                    } else {
                        let mut keys = LeafView::keys(buf);
                        keys.insert(at, key);
                        Outcome::NeedsSplit(keys)
                    }
                }
            });
        match outcome {
            Outcome::Present => Insert::Done(false),
            Outcome::Inserted => Insert::Done(true),
            Outcome::NeedsSplit(keys) => {
                let mid = keys.len() / 2;
                let sep = keys[mid];
                let right = self.pool.allocate();
                self.pool.with_page_mut(pid, |buf| {
                    LeafView::init(buf);
                    LeafView::write_keys(buf, &keys[..mid]);
                });
                self.pool.with_page_mut(right, |buf| {
                    LeafView::init(buf);
                    LeafView::write_keys(buf, &keys[mid..]);
                });
                Insert::Split { sep, right }
            }
        }
    }

    fn split_internal(&mut self, pid: PageId) -> Insert {
        let (seps, children) = self.pool.with_page(pid, |buf| {
            (InternalView::seps(buf), InternalView::children(buf))
        });
        let mid = seps.len() / 2;
        let sep_up = seps[mid];
        let right = self.pool.allocate();
        self.pool.with_page_mut(pid, |buf| {
            InternalView::init(buf, children[0]);
            InternalView::write_pairs(buf, &seps[..mid], &children[1..=mid]);
        });
        self.pool.with_page_mut(right, |buf| {
            InternalView::init(buf, children[mid + 1]);
            InternalView::write_pairs(buf, &seps[mid + 1..], &children[mid + 2..]);
        });
        Insert::Split { sep: sep_up, right }
    }

    fn remove_rec(&mut self, pid: PageId, key: u64, level: u32) -> bool {
        self.stats.node_visits += 1;
        if level == 1 {
            return self
                .pool
                .with_page_mut(pid, |buf| match LeafView::search(buf, key) {
                    Ok(at) => {
                        LeafView::remove_at(buf, at);
                        true
                    }
                    Err(_) => false,
                });
        }
        let (idx, child) = self.pool.with_page(pid, |buf| {
            let idx = InternalView::child_index_for(buf, key);
            (idx, InternalView::child_at(buf, idx))
        });
        let removed = self.remove_rec(child, key, level - 1);
        if removed {
            self.fix_underflow(pid, idx, level);
        }
        removed
    }

    /// After a deletion in `child_idx` of internal node `pid` (at `level`),
    /// rebalance if the child dropped below minimum occupancy.
    fn fix_underflow(&mut self, pid: PageId, child_idx: usize, level: u32) {
        let child_level = level - 1;
        let child = self
            .pool
            .with_page(pid, |buf| InternalView::child_at(buf, child_idx));
        let child_count = self.node_count(child, child_level);
        let min = if child_level == 1 {
            self.leaf_cap / 2
        } else {
            self.internal_cap / 2
        };
        if child_count >= min {
            return;
        }
        let parent_count = self.pool.with_page(pid, InternalView::count);
        // Prefer borrowing from / merging with the left sibling; fall back
        // to the right one when the child is leftmost.
        let (left_idx, right_idx) = if child_idx > 0 {
            (child_idx - 1, child_idx)
        } else {
            (child_idx, child_idx + 1)
        };
        debug_assert!(right_idx <= parent_count);
        let (left, right, sep) = self.pool.with_page(pid, |buf| {
            (
                InternalView::child_at(buf, left_idx),
                InternalView::child_at(buf, right_idx),
                InternalView::sep_at(buf, left_idx),
            )
        });
        let donor = if left == child { right } else { left };
        let donor_count = self.node_count(donor, child_level);
        if donor_count > min {
            self.rotate(pid, left_idx, left, right, sep, child_level, donor == left);
        } else {
            self.merge(pid, left_idx, left, right, sep, child_level);
        }
    }

    fn node_count(&mut self, pid: PageId, level: u32) -> usize {
        self.pool.with_page(pid, |buf| {
            if level == 1 {
                LeafView::count(buf)
            } else {
                InternalView::count(buf)
            }
        })
    }

    /// Move one entry from the donor sibling through the parent separator.
    #[allow(clippy::too_many_arguments)]
    fn rotate(
        &mut self,
        parent: PageId,
        sep_idx: usize,
        left: PageId,
        right: PageId,
        sep: u64,
        level: u32,
        donor_is_left: bool,
    ) {
        let new_sep;
        if level == 1 {
            if donor_is_left {
                let moved = self.pool.with_page_mut(left, |buf| {
                    let c = LeafView::count(buf);
                    let k = LeafView::key_at(buf, c - 1);
                    LeafView::remove_at(buf, c - 1);
                    k
                });
                self.pool
                    .with_page_mut(right, |buf| LeafView::insert_at(buf, 0, moved));
                new_sep = moved;
            } else {
                let moved = self.pool.with_page_mut(right, |buf| {
                    let k = LeafView::key_at(buf, 0);
                    LeafView::remove_at(buf, 0);
                    k
                });
                self.pool.with_page_mut(left, |buf| {
                    let c = LeafView::count(buf);
                    LeafView::insert_at(buf, c, moved)
                });
                new_sep = self.pool.with_page(right, |buf| LeafView::key_at(buf, 0));
            }
        } else if donor_is_left {
            // Donor's last (sep, child) rotates: donor sep goes up, parent
            // sep comes down in front of the receiver, donor's last child
            // becomes the receiver's first child.
            let (moved_sep, moved_child) = self.pool.with_page_mut(left, |buf| {
                let c = InternalView::count(buf);
                let s = InternalView::sep_at(buf, c - 1);
                let ch = InternalView::child_at(buf, c);
                InternalView::truncate(buf, c - 1);
                (s, ch)
            });
            self.pool.with_page_mut(right, |buf| {
                InternalView::push_front(buf, moved_child, sep);
            });
            new_sep = moved_sep;
        } else {
            let (moved_sep, moved_child) = self.pool.with_page_mut(right, |buf| {
                let s = InternalView::sep_at(buf, 0);
                let ch = InternalView::child_at(buf, 0);
                InternalView::pop_front(buf);
                (s, ch)
            });
            self.pool.with_page_mut(left, |buf| {
                let c = InternalView::count(buf);
                InternalView::insert_at(buf, c, sep, moved_child);
            });
            new_sep = moved_sep;
        }
        self.pool
            .with_page_mut(parent, |buf| InternalView::set_sep(buf, sep_idx, new_sep));
    }

    /// Merge `right` into `left`, removing the separator from the parent.
    fn merge(
        &mut self,
        parent: PageId,
        sep_idx: usize,
        left: PageId,
        right: PageId,
        sep: u64,
        level: u32,
    ) {
        if level == 1 {
            let right_keys = self.pool.with_page(right, LeafView::keys);
            self.pool.with_page_mut(left, |buf| {
                // `c` is a write cursor, not a pure counter: insert_at
                // appends each key at the current end of the leaf.
                let mut c = LeafView::count(buf);
                #[allow(clippy::explicit_counter_loop)]
                for k in right_keys {
                    LeafView::insert_at(buf, c, k);
                    c += 1;
                }
            });
        } else {
            let (seps, children) = self.pool.with_page(right, |buf| {
                (InternalView::seps(buf), InternalView::children(buf))
            });
            self.pool.with_page_mut(left, |buf| {
                let mut c = InternalView::count(buf);
                InternalView::insert_at(buf, c, sep, children[0]);
                c += 1;
                for (s, ch) in seps.iter().zip(children[1..].iter()) {
                    InternalView::insert_at(buf, c, *s, *ch);
                    c += 1;
                }
            });
        }
        self.pool.free(right);
        self.pool.with_page_mut(parent, |buf| {
            InternalView::remove_pair_at(buf, sep_idx);
        });
    }

    /// Walk the whole tree validating structural invariants; returns the
    /// number of keys seen. Test/debug aid — O(n), touches every page.
    pub fn check_invariants(&mut self) -> u64 {
        let root = self.root;
        let height = self.height;
        let n = self.check_rec(root, height, None, None, true);
        assert_eq!(n, self.len, "len counter diverged from tree contents");
        n
    }

    fn check_rec(
        &mut self,
        pid: PageId,
        level: u32,
        lo: Option<u64>,
        hi: Option<u64>,
        is_root: bool,
    ) -> u64 {
        if level == 1 {
            let keys = self.pool.with_page(pid, |buf| {
                assert_eq!(LeafView::tag(buf), Tag::Leaf, "expected leaf at level 1");
                LeafView::keys(buf)
            });
            if !is_root {
                assert!(
                    keys.len() >= self.leaf_cap / 2,
                    "leaf underflow: {}",
                    keys.len()
                );
            }
            assert!(keys.len() <= self.leaf_cap);
            for w in keys.windows(2) {
                assert!(w[0] < w[1], "leaf keys not strictly sorted");
            }
            for &k in &keys {
                if let Some(lo) = lo {
                    assert!(k >= lo, "key below subtree bound");
                }
                if let Some(hi) = hi {
                    assert!(k < hi, "key above subtree bound");
                }
            }
            return keys.len() as u64;
        }
        let (seps, children) = self.pool.with_page(pid, |buf| {
            assert_eq!(InternalView::tag(buf), Tag::Internal);
            (InternalView::seps(buf), InternalView::children(buf))
        });
        if !is_root {
            assert!(seps.len() >= self.internal_cap / 2, "internal underflow");
        } else {
            assert!(!seps.is_empty(), "internal root must have >= 2 children");
        }
        assert!(seps.len() <= self.internal_cap);
        for w in seps.windows(2) {
            assert!(w[0] < w[1], "separators not strictly sorted");
        }
        let mut total = 0;
        for (i, &child) in children.iter().enumerate() {
            let clo = if i == 0 { lo } else { Some(seps[i - 1]) };
            let chi = if i == seps.len() { hi } else { Some(seps[i]) };
            total += self.check_rec(child, level - 1, clo, chi, false);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MemBTree {
        // 64-byte pages: leaf capacity 7, internal capacity 4 — forces deep
        // trees and frequent splits/merges at small n.
        BTree::new(MemPool::in_memory(64, 8))
    }

    #[test]
    fn empty_tree() {
        let mut t = tiny();
        assert!(t.is_empty());
        assert!(!t.contains(42));
        assert!(!t.remove(42));
        assert_eq!(t.collect_range(0, u64::MAX), vec![]);
        t.check_invariants();
    }

    #[test]
    fn insert_and_contains() {
        let mut t = tiny();
        assert!(t.insert(5));
        assert!(!t.insert(5), "duplicate rejected");
        assert!(t.insert(3));
        assert!(t.insert(9));
        assert_eq!(t.len(), 3);
        assert!(t.contains(3) && t.contains(5) && t.contains(9));
        assert!(!t.contains(4));
        t.check_invariants();
    }

    #[test]
    fn ascending_bulk_insert_splits() {
        let mut t = tiny();
        for k in 0..500u64 {
            assert!(t.insert(k));
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 3, "tiny pages must force a deep tree");
        assert_eq!(t.collect_range(0, u64::MAX), (0..500).collect::<Vec<_>>());
        t.check_invariants();
    }

    #[test]
    fn descending_and_shuffled_inserts() {
        let mut t = tiny();
        for k in (0..300u64).rev() {
            t.insert(k);
        }
        t.check_invariants();
        let mut t2 = tiny();
        // Deterministic pseudo-shuffle.
        for i in 0..300u64 {
            t2.insert((i * 7919) % 300);
        }
        assert_eq!(t2.len(), 300);
        assert_eq!(t2.collect_range(0, 299), (0..300).collect::<Vec<_>>());
        t2.check_invariants();
    }

    #[test]
    fn range_scans() {
        let mut t = tiny();
        for k in (0..100u64).map(|i| i * 10) {
            t.insert(k);
        }
        assert_eq!(t.collect_range(95, 130), vec![100, 110, 120, 130]);
        assert_eq!(t.collect_range(101, 109), vec![]);
        assert_eq!(t.collect_range(0, 0), vec![0]);
        assert_eq!(t.collect_range(991, u64::MAX), vec![]);
        assert_eq!(t.count_range(0, 990), 100);
        assert_eq!(t.first_in_range(55, 1000), Some(60));
        assert_eq!(t.first_in_range(991, u64::MAX), None);
        // Inverted range is empty.
        assert_eq!(t.collect_range(50, 10), vec![]);
    }

    #[test]
    fn scan_early_exit() {
        let mut t = tiny();
        for k in 0..200u64 {
            t.insert(k);
        }
        let mut seen = Vec::new();
        let flow = t.scan_range(0, u64::MAX, &mut |k| {
            seen.push(k);
            if seen.len() == 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn remove_everything_both_orders() {
        for ascending in [true, false] {
            let mut t = tiny();
            let n = 400u64;
            for k in 0..n {
                t.insert(k);
            }
            let order: Vec<u64> = if ascending {
                (0..n).collect()
            } else {
                (0..n).rev().collect()
            };
            for (i, k) in order.iter().enumerate() {
                assert!(t.remove(*k), "removing {k}");
                if i % 37 == 0 {
                    t.check_invariants();
                }
            }
            assert!(t.is_empty());
            assert_eq!(t.height(), 1, "tree collapsed back to a single leaf");
            t.check_invariants();
        }
    }

    #[test]
    fn interleaved_insert_remove() {
        let mut t = tiny();
        for round in 0..10u64 {
            for k in 0..100 {
                t.insert(round * 1000 + k);
            }
            for k in 0..50 {
                assert!(t.remove(round * 1000 + k * 2));
            }
            t.check_invariants();
        }
        assert_eq!(t.len(), 10 * 50);
    }

    #[test]
    fn height_grows_and_shrinks() {
        let mut t = tiny();
        for k in 0..1000u64 {
            t.insert(k);
        }
        let h = t.height();
        assert!(h >= 3);
        for k in 0..1000u64 {
            t.remove(k);
        }
        assert_eq!(t.height(), 1);
        // Pages from removed nodes are recycled.
        for k in 0..1000u64 {
            t.insert(k);
        }
        assert_eq!(t.height(), h, "rebuild reaches the same height");
        t.check_invariants();
    }

    #[test]
    fn disk_stats_reflect_pool_misses() {
        // A pool big enough to hold everything: after warm-up, queries are
        // free; with a tiny pool, they are not.
        let mut big = BTree::new(MemPool::in_memory(64, 1024));
        let mut small = BTree::new(MemPool::in_memory(64, 2));
        for k in 0..500u64 {
            big.insert(k);
            small.insert(k);
        }
        big.pool_mut().reset_stats();
        small.pool_mut().reset_stats();
        for k in (0..500u64).step_by(17) {
            assert!(big.contains(k));
            assert!(small.contains(k));
        }
        assert_eq!(big.pool().stats().reads, 0, "fully cached tree");
        assert!(small.pool().stats().reads > 0, "thrashing pool must fault");
    }

    #[test]
    fn u64_extremes() {
        let mut t = tiny();
        assert!(t.insert(0));
        assert!(t.insert(u64::MAX));
        assert!(t.insert(u64::MAX - 1));
        assert!(t.contains(u64::MAX));
        assert_eq!(
            t.collect_range(u64::MAX - 1, u64::MAX),
            vec![u64::MAX - 1, u64::MAX]
        );
        assert!(t.remove(u64::MAX));
        assert!(!t.contains(u64::MAX));
    }

    #[test]
    fn ctx_reads_agree_with_exclusive_reads() {
        let mut t = tiny();
        for k in (0..300u64).map(|i| i * 3) {
            t.insert(k);
        }
        let mut ctx = lsdb_pager::PoolCtx::new();
        for probe in [0, 1, 3, 299 * 3, 900, u64::MAX] {
            let expect = t.contains(probe);
            assert_eq!(t.contains_ctx(probe, &mut ctx), expect);
        }
        assert_eq!(
            t.collect_range_ctx(10, 200, &mut ctx),
            t.collect_range(10, 200)
        );
        assert_eq!(t.count_range_ctx(0, u64::MAX, &mut ctx), 300);
        assert_eq!(
            t.first_in_range_ctx(100, 200, &mut ctx),
            t.first_in_range(100, 200)
        );
        assert_eq!(
            t.last_in_range_ctx(100, 200, &mut ctx),
            t.last_in_range(100, 200)
        );
        assert_eq!(t.last_in_range_ctx(1, 2, &mut ctx), None);
        assert_eq!(t.collect_range_ctx(50, 10, &mut ctx), vec![]);
    }

    #[test]
    fn ctx_reads_charge_the_context_not_the_pool() {
        // Pool of 2 frames over a ~500-key tree: almost nothing resident.
        let mut t = BTree::new(MemPool::in_memory(64, 2));
        for k in 0..500u64 {
            t.insert(k);
        }
        t.pool_mut().clear();
        t.pool_mut().reset_stats();
        let mut ctx = lsdb_pager::PoolCtx::new();
        assert!(t.contains_ctx(250, &mut ctx));
        assert_eq!(
            ctx.stats.reads as u32,
            t.height(),
            "cold point lookup faults once per level"
        );
        assert_eq!(
            t.pool().stats().reads,
            0,
            "pool counters untouched by ctx reads"
        );
        // Re-walking the same path in the same context is free (pinned).
        let before = ctx.stats.reads;
        assert!(t.contains_ctx(250, &mut ctx));
        assert_eq!(ctx.stats.reads, before);
    }

    #[test]
    fn concurrent_ctx_scans() {
        let mut t = BTree::new(MemPool::in_memory(64, 4));
        for k in 0..400u64 {
            t.insert(k);
        }
        t.pool_mut().clear();
        let t = &t;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    scope.spawn(move || {
                        let mut ctx = lsdb_pager::PoolCtx::new();
                        let lo = i * 50;
                        let keys = t.collect_range_ctx(lo, lo + 99, &mut ctx);
                        assert_eq!(keys, (lo..=lo + 99).collect::<Vec<_>>());
                        assert!(ctx.stats.reads > 0, "cold scan must fault");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn node_visit_stats_accumulate() {
        let mut t = tiny();
        for k in 0..200u64 {
            t.insert(k);
        }
        t.reset_stats();
        t.contains(100);
        let v = t.stats().node_visits;
        assert_eq!(v as u32, t.height(), "one visit per level on point lookup");
    }
}
