//! Model-based tests: the disk B-tree must behave exactly like
//! `std::collections::BTreeSet<u64>` under arbitrary operation sequences,
//! across several page sizes (including degenerate 64-byte pages that force
//! deep trees) and a thrashing 2-frame buffer pool. Operation sequences are
//! drawn from fixed-seed [`lsdb_rng::StdRng`] streams, so every run checks
//! the same cases.

use lsdb_btree::BTree;
use lsdb_pager::{MemPool, PoolCtx};
use lsdb_rng::StdRng;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
    Range(u64, u64),
    First(u64, u64),
    Count(u64, u64),
}

/// Small key domain (0..512) so inserts and removes collide often.
fn gen_op(rng: &mut StdRng) -> Op {
    let key = |rng: &mut StdRng| rng.gen_range(0u64..512);
    let span = |rng: &mut StdRng| {
        let a = rng.gen_range(0u64..512);
        let b = rng.gen_range(0u64..512);
        (a.min(b), a.max(b))
    };
    match rng.gen_range(0u32..10) {
        0..=3 => Op::Insert(key(rng)),
        4..=5 => Op::Remove(key(rng)),
        6 => Op::Contains(key(rng)),
        7 => {
            let (lo, hi) = span(rng);
            Op::Range(lo, hi)
        }
        8 => {
            let (lo, hi) = span(rng);
            Op::First(lo, hi)
        }
        _ => {
            let (lo, hi) = span(rng);
            Op::Count(lo, hi)
        }
    }
}

fn run_model(page_size: usize, pool_pages: usize, ops: &[Op]) {
    let mut tree = BTree::new(MemPool::in_memory(page_size, pool_pages));
    let mut model: BTreeSet<u64> = BTreeSet::new();
    let mut ctx = PoolCtx::new();
    for op in ops {
        match *op {
            Op::Insert(k) => {
                assert_eq!(tree.insert(k), model.insert(k), "insert {k}");
            }
            Op::Remove(k) => {
                assert_eq!(tree.remove(k), model.remove(&k), "remove {k}");
            }
            Op::Contains(k) => {
                assert_eq!(tree.contains(k), model.contains(&k), "contains {k}");
                ctx.reset();
                assert_eq!(tree.contains_ctx(k, &mut ctx), model.contains(&k));
            }
            Op::Range(lo, hi) => {
                let got = tree.collect_range(lo, hi);
                let want: Vec<u64> = model.range(lo..=hi).copied().collect();
                assert_eq!(got, want, "range {lo}..={hi}");
                ctx.reset();
                assert_eq!(tree.collect_range_ctx(lo, hi, &mut ctx), want);
            }
            Op::First(lo, hi) => {
                let got = tree.first_in_range(lo, hi);
                let want = model.range(lo..=hi).next().copied();
                assert_eq!(got, want, "first {lo}..={hi}");
                let got_last = tree.last_in_range(lo, hi);
                let want_last = model.range(lo..=hi).next_back().copied();
                assert_eq!(got_last, want_last, "last {lo}..={hi}");
                ctx.reset();
                assert_eq!(tree.first_in_range_ctx(lo, hi, &mut ctx), want);
                assert_eq!(tree.last_in_range_ctx(lo, hi, &mut ctx), want_last);
            }
            Op::Count(lo, hi) => {
                let want = model.range(lo..=hi).count() as u64;
                assert_eq!(tree.count_range(lo, hi), want);
                ctx.reset();
                assert_eq!(tree.count_range_ctx(lo, hi, &mut ctx), want);
            }
        }
        assert_eq!(tree.len(), model.len() as u64);
    }
    tree.check_invariants();
    // Full contents agree at the end.
    assert_eq!(
        tree.collect_range(0, u64::MAX),
        model.iter().copied().collect::<Vec<_>>()
    );
}

fn run_cases(seed: u64, cases: usize, max_ops: usize, page_size: usize, pool_pages: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..cases {
        let n = rng.gen_range(1usize..max_ops);
        let ops: Vec<Op> = (0..n).map(|_| gen_op(&mut rng)).collect();
        run_model(page_size, pool_pages, &ops);
    }
}

#[test]
fn matches_btreeset_tiny_pages() {
    run_cases(0xB7EE_0001, 64, 400, 64, 8);
}

#[test]
fn matches_btreeset_paper_pages() {
    run_cases(0xB7EE_0002, 64, 400, 1024, 16);
}

#[test]
fn matches_btreeset_thrashing_pool() {
    // A 2-frame pool: every structural operation spills; correctness must
    // not depend on residency.
    run_cases(0xB7EE_0003, 64, 250, 64, 2);
}

#[test]
fn dense_then_sparse_deletion_pattern() {
    let mut tree = BTree::new(MemPool::in_memory(64, 4));
    let mut model = BTreeSet::new();
    for k in 0..2000u64 {
        tree.insert(k);
        model.insert(k);
    }
    // Delete every third key, then every remaining even key.
    for k in (0..2000u64).step_by(3) {
        assert_eq!(tree.remove(k), model.remove(&k));
    }
    for k in (0..2000u64).step_by(2) {
        assert_eq!(tree.remove(k), model.remove(&k));
    }
    tree.check_invariants();
    assert_eq!(
        tree.collect_range(0, u64::MAX),
        model.iter().copied().collect::<Vec<_>>()
    );
}

#[test]
fn file_backed_btree_persists_across_reopen() {
    use lsdb_pager::{BufferPool, FileStorage};
    let dir = std::env::temp_dir().join(format!("lsdb-btree-file-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.lsdb");
    {
        let storage = FileStorage::create(&path, 256).unwrap();
        let mut tree = BTree::new(BufferPool::new(storage, 8));
        for k in 0..500u64 {
            tree.insert(k * 3);
        }
        // Flush through into_pool.
        let _ = tree.into_pool().into_storage();
    }
    // Reopen the raw storage: the pages must be intact (full structural
    // reopen requires the superblock, exercised at the pager level).
    let storage = FileStorage::open(&path, 256).unwrap();
    use lsdb_pager::Storage;
    assert!(storage.num_pages() > 10, "a 500-key tree spans many pages");
    std::fs::remove_dir_all(&dir).ok();
}
