//! Model-based property tests: the disk B-tree must behave exactly like
//! `std::collections::BTreeSet<u64>` under arbitrary operation sequences,
//! across several page sizes (including degenerate 64-byte pages that force
//! deep trees) and a thrashing 2-frame buffer pool.

use lsdb_btree::BTree;
use lsdb_pager::MemPool;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
    Range(u64, u64),
    First(u64, u64),
    Count(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key domain so inserts and removes collide often.
    let key = 0u64..512;
    prop_oneof![
        4 => key.clone().prop_map(Op::Insert),
        2 => key.clone().prop_map(Op::Remove),
        1 => key.clone().prop_map(Op::Contains),
        1 => (key.clone(), key.clone()).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
        1 => (key.clone(), key.clone()).prop_map(|(a, b)| Op::First(a.min(b), a.max(b))),
        1 => (key.clone(), key).prop_map(|(a, b)| Op::Count(a.min(b), a.max(b))),
    ]
}

fn run_model(page_size: usize, pool_pages: usize, ops: &[Op]) {
    let mut tree = BTree::new(MemPool::in_memory(page_size, pool_pages));
    let mut model: BTreeSet<u64> = BTreeSet::new();
    for op in ops {
        match *op {
            Op::Insert(k) => {
                assert_eq!(tree.insert(k), model.insert(k), "insert {k}");
            }
            Op::Remove(k) => {
                assert_eq!(tree.remove(k), model.remove(&k), "remove {k}");
            }
            Op::Contains(k) => {
                assert_eq!(tree.contains(k), model.contains(&k), "contains {k}");
            }
            Op::Range(lo, hi) => {
                let got = tree.collect_range(lo, hi);
                let want: Vec<u64> = model.range(lo..=hi).copied().collect();
                assert_eq!(got, want, "range {lo}..={hi}");
            }
            Op::First(lo, hi) => {
                let got = tree.first_in_range(lo, hi);
                let want = model.range(lo..=hi).next().copied();
                assert_eq!(got, want, "first {lo}..={hi}");
                let got_last = tree.last_in_range(lo, hi);
                let want_last = model.range(lo..=hi).next_back().copied();
                assert_eq!(got_last, want_last, "last {lo}..={hi}");
            }
            Op::Count(lo, hi) => {
                assert_eq!(tree.count_range(lo, hi), model.range(lo..=hi).count() as u64);
            }
        }
        assert_eq!(tree.len(), model.len() as u64);
    }
    tree.check_invariants();
    // Full contents agree at the end.
    assert_eq!(
        tree.collect_range(0, u64::MAX),
        model.iter().copied().collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreeset_tiny_pages(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model(64, 8, &ops);
    }

    #[test]
    fn matches_btreeset_paper_pages(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model(1024, 16, &ops);
    }

    #[test]
    fn matches_btreeset_thrashing_pool(ops in prop::collection::vec(op_strategy(), 1..250)) {
        // A 2-frame pool: every structural operation spills; correctness
        // must not depend on residency.
        run_model(64, 2, &ops);
    }
}

#[test]
fn dense_then_sparse_deletion_pattern() {
    let mut tree = BTree::new(MemPool::in_memory(64, 4));
    let mut model = BTreeSet::new();
    for k in 0..2000u64 {
        tree.insert(k);
        model.insert(k);
    }
    // Delete every third key, then every remaining even key.
    for k in (0..2000u64).step_by(3) {
        assert_eq!(tree.remove(k), model.remove(&k));
    }
    for k in (0..2000u64).step_by(2) {
        assert_eq!(tree.remove(k), model.remove(&k));
    }
    tree.check_invariants();
    assert_eq!(
        tree.collect_range(0, u64::MAX),
        model.iter().copied().collect::<Vec<_>>()
    );
}

#[test]
fn file_backed_btree_persists_across_reopen() {
    use lsdb_pager::{BufferPool, FileStorage};
    let dir = std::env::temp_dir().join(format!("lsdb-btree-file-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.lsdb");
    // The BTree keeps its root/height in memory; persist them alongside
    // (a real deployment would write a superblock page).
    let (root_meta, height_meta, len_meta);
    {
        let storage = FileStorage::create(&path, 256).unwrap();
        let mut tree = BTree::new(BufferPool::new(storage, 8));
        for k in 0..500u64 {
            tree.insert(k * 3);
        }
        root_meta = format!("{:?}", tree.len());
        height_meta = tree.height();
        len_meta = tree.len();
        // Flush through into_pool.
        let _ = tree.into_pool().into_storage();
    }
    let _ = (root_meta, height_meta, len_meta);
    // Reopen the raw storage: the pages must be intact (full structural
    // reopen requires the superblock, exercised at the pager level).
    let storage = FileStorage::open(&path, 256).unwrap();
    use lsdb_pager::Storage;
    assert!(storage.num_pages() > 10, "a 500-key tree spans many pages");
    std::fs::remove_dir_all(&dir).ok();
}
