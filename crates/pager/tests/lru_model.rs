//! Model-based check of the buffer pool against a reference LRU simulator.
//!
//! The model tracks which pages an ideal LRU cache of the same capacity
//! would hold and how many misses it would charge; the pool must match the
//! miss count exactly and must never lose written data. Deterministic:
//! cases are drawn from a fixed-seed [`lsdb_rng::StdRng`] stream.

use lsdb_pager::{BufferPool, MemStorage, PageId};
use lsdb_rng::StdRng;
use std::collections::{HashMap, VecDeque};

const PAGE: usize = 64;

/// Reference LRU cache: `front` is least recently used, `back` most.
struct LruModel {
    capacity: usize,
    resident: VecDeque<PageId>,
    reads: u64,
}

impl LruModel {
    fn new(capacity: usize) -> Self {
        LruModel {
            capacity,
            resident: VecDeque::new(),
            reads: 0,
        }
    }

    /// An access to `pid`: moves it to MRU, evicting the LRU page when the
    /// cache is full. Fresh allocations pass `counts_read_if_absent =
    /// false` because a brand-new zeroed page costs no disk read.
    fn touch(&mut self, pid: PageId, counts_read_if_absent: bool) {
        if let Some(i) = self.resident.iter().position(|&p| p == pid) {
            self.resident.remove(i);
        } else {
            if counts_read_if_absent {
                self.reads += 1;
            }
            if self.resident.len() == self.capacity {
                self.resident.pop_front();
            }
        }
        self.resident.push_back(pid);
    }

    fn drop_page(&mut self, pid: PageId) {
        if let Some(i) = self.resident.iter().position(|&p| p == pid) {
            self.resident.remove(i);
        }
    }
}

#[test]
fn pool_matches_model() {
    let mut rng = StdRng::seed_from_u64(0x10DE1);
    for case in 0..200usize {
        let capacity = 1 + case % 5;
        // A single shard, so the whole pool is one global LRU — exactly
        // what the reference model simulates.
        let mut pool = BufferPool::with_shards(MemStorage::new(PAGE), capacity, 1);
        let mut model = LruModel::new(capacity);
        // Last value written to byte 3 of every live page.
        let mut shadow: HashMap<PageId, u8> = HashMap::new();
        let mut live: Vec<PageId> = Vec::new();

        let ops = rng.gen_range(1usize..120);
        for _ in 0..ops {
            match rng.gen_range(0u32..13) {
                0..=2 => {
                    let pid = pool.allocate();
                    model.touch(pid, false);
                    shadow.insert(pid, 0);
                    live.push(pid);
                }
                3..=6 if !live.is_empty() => {
                    let pid = live[rng.gen_range(0..live.len())];
                    let byte = rng.gen_range(0u32..=255) as u8;
                    pool.with_page_mut(pid, |d| d[3] = byte);
                    model.touch(pid, true);
                    shadow.insert(pid, byte);
                }
                7..=9 if !live.is_empty() => {
                    let pid = live[rng.gen_range(0..live.len())];
                    let expect = shadow[&pid];
                    pool.with_page(pid, |d| assert_eq!(d[3], expect, "lost write to {pid:?}"));
                    model.touch(pid, true);
                }
                10 if !live.is_empty() => {
                    let i = rng.gen_range(0..live.len());
                    let pid = live.swap_remove(i);
                    pool.free(pid);
                    model.drop_page(pid);
                    shadow.remove(&pid);
                }
                11 => pool.flush(),
                12 => {
                    pool.clear();
                    model.resident.clear();
                }
                _ => {}
            }
            assert_eq!(
                pool.stats().reads,
                model.reads,
                "case {case}: pool and model disagree on miss count"
            );
            assert_eq!(
                pool.allocated_pages() as usize,
                live.len(),
                "case {case}: allocated-page count drifted"
            );
        }

        // Every live page must still hold its last written value, even the
        // ones that were evicted or cleared along the way.
        for &pid in &live {
            let expect = shadow[&pid];
            pool.with_page(pid, |d| assert_eq!(d[3], expect, "final check {pid:?}"));
        }
    }
}
