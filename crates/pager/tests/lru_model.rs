//! Model-based property tests for the buffer pool: contents must always
//! match a plain `Vec<Vec<u8>>` model regardless of the operation mix, and
//! the read counter must match a reference LRU simulation.

use lsdb_pager::{MemPool, PageId};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum Op {
    Allocate,
    Write(usize, u8),
    Read(usize),
    Free(usize),
    Flush,
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Allocate),
        4 => (0usize..40, any::<u8>()).prop_map(|(i, v)| Op::Write(i, v)),
        4 => (0usize..40).prop_map(Op::Read),
        1 => (0usize..40).prop_map(Op::Free),
        1 => Just(Op::Flush),
        1 => Just(Op::Clear),
    ]
}

/// Reference LRU cache of page ids with the same counting rules.
struct LruModel {
    capacity: usize,
    resident: VecDeque<u32>, // most-recent at back
    reads: u64,
}

impl LruModel {
    fn touch(&mut self, pid: u32, counts_read_if_absent: bool) {
        if let Some(pos) = self.resident.iter().position(|&p| p == pid) {
            self.resident.remove(pos);
        } else {
            if counts_read_if_absent {
                self.reads += 1;
            }
            if self.resident.len() == self.capacity {
                self.resident.pop_front();
            }
        }
        self.resident.push_back(pid);
    }

    fn drop_page(&mut self, pid: u32) {
        if let Some(pos) = self.resident.iter().position(|&p| p == pid) {
            self.resident.remove(pos);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pool_matches_model(capacity in 1usize..6, ops in prop::collection::vec(op_strategy(), 1..120)) {
        let page_size = 64;
        let mut pool = MemPool::in_memory(page_size, capacity);
        let mut model: Vec<Option<Vec<u8>>> = Vec::new(); // None = freed
        let mut lru = LruModel { capacity, resident: VecDeque::new(), reads: 0 };
        let live = |model: &Vec<Option<Vec<u8>>>| -> Vec<usize> {
            model.iter().enumerate().filter(|(_, p)| p.is_some()).map(|(i, _)| i).collect()
        };
        for op in ops {
            match op {
                Op::Allocate => {
                    let pid = pool.allocate();
                    // Reused pages keep their index; fresh pages append.
                    if pid.index() == model.len() {
                        model.push(Some(vec![0u8; page_size]));
                    } else {
                        assert!(model[pid.index()].is_none(), "allocator reused a live page");
                        model[pid.index()] = Some(vec![0u8; page_size]);
                    }
                    lru.touch(pid.0, false); // fresh pages cost no read
                }
                Op::Write(i, v) => {
                    let ids = live(&model);
                    if ids.is_empty() { continue; }
                    let id = ids[i % ids.len()];
                    pool.with_page_mut(PageId(id as u32), |buf| {
                        buf[id % page_size] = v;
                    });
                    model[id].as_mut().unwrap()[id % page_size] = v;
                    lru.touch(id as u32, true);
                }
                Op::Read(i) => {
                    let ids = live(&model);
                    if ids.is_empty() { continue; }
                    let id = ids[i % ids.len()];
                    let got = pool.with_page(PageId(id as u32), |buf| buf.to_vec());
                    prop_assert_eq!(&got, model[id].as_ref().unwrap(), "page {} contents", id);
                    lru.touch(id as u32, true);
                }
                Op::Free(i) => {
                    let ids = live(&model);
                    if ids.is_empty() { continue; }
                    let id = ids[i % ids.len()];
                    pool.free(PageId(id as u32));
                    model[id] = None;
                    lru.drop_page(id as u32);
                }
                Op::Flush => pool.flush(),
                Op::Clear => {
                    pool.clear();
                    lru.resident.clear();
                }
            }
        }
        // Reads must match the reference LRU exactly.
        prop_assert_eq!(pool.stats().reads, lru.reads, "LRU read counting diverged");
        // Every live page's contents survive a final cold read.
        pool.clear();
        for id in live(&model) {
            let got = pool.with_page(PageId(id as u32), |buf| buf.to_vec());
            prop_assert_eq!(&got, model[id].as_ref().unwrap(), "page {} after clear", id);
        }
        // Footprint equals live + freed-but-unreused pages.
        prop_assert!(pool.allocated_pages() as usize <= model.len());
    }
}
