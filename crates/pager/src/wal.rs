//! Redo-only write-ahead log: the record codec and the append-only log
//! devices it is written to.
//!
//! The log is a flat byte stream of self-delimiting records:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [lsn: u64 LE] [kind: u8] [payload...]
//! ```
//!
//! `len` counts the bytes after the `crc` field (`8 + 1 + payload`), and
//! `crc` is a CRC-32 over exactly those bytes, so a record torn at any
//! byte — a short header, a short body, or flipped bits — is detected
//! rather than misparsed. LSNs are assigned by the writer in strictly
//! increasing order starting at 1; a decoded record whose LSN is not the
//! expected next one also marks the tail as torn (it is a leftover from a
//! previous log generation, not a continuation of this one).
//!
//! Two record kinds exist ([`WalRecord`]): full page images (redo-only —
//! there is no undo, recovery replays images forward) and a commit marker
//! carrying the store's logical page count. Everything between two commit
//! markers is one atomic batch: recovery applies a batch only when its
//! commit marker survives, which is what makes a group commit (many page
//! images + one marker + one [`LogDevice::sync`]) atomic under any crash.
//!
//! The [`LogDevice`] trait abstracts the byte sink the same way
//! [`crate::Storage`] abstracts the page store: [`MemLog`] is the
//! deterministic in-memory device (shared-buffer clones let crash tests
//! photograph the log mid-flight), [`FileLog`] is the real thing.

use crate::PageId;
use std::io;
use std::sync::{Arc, Mutex};

/// Log sequence number: the 1-based position of a record in the WAL's
/// total order. `Lsn(0)` means "nothing logged yet".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The LSN before any record: a freshly created (or freshly
    /// checkpointed) log reports this until something is appended.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN in sequence.
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Hand-rolled:
/// the repository is dependency-free by design and the WAL only needs a
/// checksum strong enough to detect torn writes, not an adversary.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, the checksum inside every WAL record header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Bytes before the CRC-covered region: the `len` and `crc` fields.
pub const RECORD_PREFIX: usize = 8;
/// CRC-covered bytes before the payload: the `lsn` and `kind` fields.
pub const RECORD_HEADER: usize = 9;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// Upper bound on a record's `len` field accepted by the decoder. Real
/// records are one page plus a few bytes; anything larger is garbage from
/// a torn header and must not trigger a giant allocation.
pub const MAX_RECORD_LEN: u32 = (1 << 26) + RECORD_HEADER as u32;

/// One decoded WAL record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// Redo image: on replay, `data` becomes the full contents of `pid`.
    PageImage { pid: PageId, data: Box<[u8]> },
    /// Batch commit marker. Every page image since the previous marker is
    /// atomically visible once this record is durable; `num_pages` is the
    /// store's logical page count as of this batch.
    Commit { num_pages: u32 },
}

/// Append `record` under `lsn` to `out` in wire format.
pub fn encode_record(lsn: Lsn, record: &WalRecord, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; RECORD_PREFIX]); // len + crc, patched below
    out.extend_from_slice(&lsn.0.to_le_bytes());
    match record {
        WalRecord::PageImage { pid, data } => {
            out.push(KIND_PAGE_IMAGE);
            out.extend_from_slice(&pid.0.to_le_bytes());
            out.extend_from_slice(data);
        }
        WalRecord::Commit { num_pages } => {
            out.push(KIND_COMMIT);
            out.extend_from_slice(&num_pages.to_le_bytes());
        }
    }
    let len = (out.len() - start - RECORD_PREFIX) as u32;
    let crc = crc32(&out[start + RECORD_PREFIX..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Decoding hit a torn record: the buffer ends inside a record, or the
/// record is corrupt (bad length, CRC mismatch, unknown kind,
/// out-of-sequence LSN). Everything before it is intact. A *clean* end
/// (the buffer stops exactly at a record boundary) is `Ok(None)` instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Torn;

/// Decode the record starting at `buf[at..]`, expecting `expect_lsn`.
///
/// Returns `Ok(Some((record, next_at)))` for an intact record,
/// `Ok(None)` when `at` is exactly the end of the buffer (clean tail),
/// and `Err(Torn)` for anything else. A short or corrupt
/// record never panics and never over-reads.
pub fn decode_record(
    buf: &[u8],
    at: usize,
    expect_lsn: Lsn,
) -> Result<Option<(WalRecord, usize)>, Torn> {
    if at == buf.len() {
        return Ok(None);
    }
    let rest = &buf[at..];
    if rest.len() < RECORD_PREFIX + RECORD_HEADER {
        return Err(Torn);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if len < RECORD_HEADER as u32 || len > MAX_RECORD_LEN {
        return Err(Torn);
    }
    let total = RECORD_PREFIX + len as usize;
    if rest.len() < total {
        return Err(Torn);
    }
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let body = &rest[RECORD_PREFIX..total];
    if crc32(body) != crc {
        return Err(Torn);
    }
    let lsn = Lsn(u64::from_le_bytes(body[0..8].try_into().unwrap()));
    if lsn != expect_lsn {
        return Err(Torn);
    }
    let payload = &body[RECORD_HEADER..];
    let record = match body[8] {
        KIND_PAGE_IMAGE => {
            if payload.len() < 4 {
                return Err(Torn);
            }
            WalRecord::PageImage {
                pid: PageId(u32::from_le_bytes(payload[0..4].try_into().unwrap())),
                data: payload[4..].to_vec().into_boxed_slice(),
            }
        }
        KIND_COMMIT => {
            if payload.len() != 4 {
                return Err(Torn);
            }
            WalRecord::Commit {
                num_pages: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
            }
        }
        _ => return Err(Torn),
    };
    Ok(Some((record, at + total)))
}

/// An append-only byte log: the durable sink the WAL writes to.
///
/// Like [`crate::Storage`], implementations never interpret the bytes —
/// framing and checksums belong to the record codec. `truncate` exists
/// for two callers only: recovery (discarding a torn tail) and the
/// checkpointer (emptying a log whose effects are now in the base store).
pub trait LogDevice: Send {
    /// Total bytes in the log.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read exactly `buf.len()` bytes starting at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Append `bytes` at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Force appended bytes to stable storage (the group-commit fsync).
    fn sync(&mut self) -> io::Result<()>;

    /// Discard everything after byte `len`.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

impl<L: LogDevice + ?Sized> LogDevice for Box<L> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_at(offset, buf)
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        (**self).append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        (**self).truncate(len)
    }
}

/// In-memory log device over a shared buffer.
///
/// Clones share the same bytes, so a crash-recovery test can keep one
/// handle while a [`crate::DurableStorage`] owns another, photograph the
/// log at any moment with [`MemLog::bytes`], and reopen arbitrary
/// prefixes of it — simulating a kill at every write boundary without a
/// filesystem.
#[derive(Clone, Default)]
pub struct MemLog {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemLog {
    pub fn new() -> MemLog {
        MemLog::default()
    }

    /// A log pre-loaded with `bytes` (e.g. a prefix photographed from
    /// another log — a simulated torn crash).
    pub fn from_bytes(bytes: Vec<u8>) -> MemLog {
        MemLog {
            bytes: Arc::new(Mutex::new(bytes)),
        }
    }

    /// Snapshot of the current log contents.
    pub fn bytes(&self) -> Vec<u8> {
        self.bytes.lock().unwrap().clone()
    }
}

impl LogDevice for MemLog {
    fn len(&self) -> u64 {
        self.bytes.lock().unwrap().len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let bytes = self.bytes.lock().unwrap();
        let start = offset as usize;
        let end = start + buf.len();
        if end > bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("log read past end: {end} of {}", bytes.len()),
            ));
        }
        buf.copy_from_slice(&bytes[start..end]);
        Ok(())
    }

    fn append(&mut self, b: &[u8]) -> io::Result<()> {
        self.bytes.lock().unwrap().extend_from_slice(b);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut bytes = self.bytes.lock().unwrap();
        if (len as usize) < bytes.len() {
            bytes.truncate(len as usize);
        }
        Ok(())
    }
}

/// File-backed log device using positioned I/O, `sync_data` for the
/// group-commit fsync, and `set_len` for truncation.
#[derive(Debug)]
pub struct FileLog {
    file: std::fs::File,
    len: u64,
}

impl FileLog {
    /// Create (truncating) a log file at `path`.
    pub fn create(path: &std::path::Path) -> io::Result<FileLog> {
        let file = std::fs::File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileLog { file, len: 0 })
    }

    /// Open an existing log file (creating an empty one if absent — a
    /// store that crashed before its first commit has a base but no log).
    pub fn open(path: &std::path::Path) -> io::Result<FileLog> {
        let file = std::fs::File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileLog { file, len })
    }
}

impl LogDevice for FileLog {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(bytes, self.len)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if len < self.len {
            self.file.set_len(len)?;
            self.len = len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        let mut buf = Vec::new();
        let img = WalRecord::PageImage {
            pid: PageId(7),
            data: vec![0xAB; 64].into_boxed_slice(),
        };
        let commit = WalRecord::Commit { num_pages: 9 };
        encode_record(Lsn(1), &img, &mut buf);
        encode_record(Lsn(2), &commit, &mut buf);

        let (r1, at) = decode_record(&buf, 0, Lsn(1)).unwrap().unwrap();
        assert_eq!(r1, img);
        let (r2, at) = decode_record(&buf, at, Lsn(2)).unwrap().unwrap();
        assert_eq!(r2, commit);
        assert_eq!(decode_record(&buf, at, Lsn(3)), Ok(None), "clean tail");
    }

    #[test]
    fn every_proper_prefix_is_torn_never_panics() {
        let mut buf = Vec::new();
        encode_record(
            Lsn(1),
            &WalRecord::PageImage {
                pid: PageId(0),
                data: vec![5; 32].into_boxed_slice(),
            },
            &mut buf,
        );
        for cut in 1..buf.len() {
            assert_eq!(
                decode_record(&buf[..cut], 0, Lsn(1)),
                Err(Torn),
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn corrupt_bytes_are_torn() {
        let mut buf = Vec::new();
        encode_record(Lsn(1), &WalRecord::Commit { num_pages: 3 }, &mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            // Flipping any single bit must never yield the original record.
            if let Ok(Some((r, _))) = decode_record(&bad, 0, Lsn(1)) {
                assert_ne!(r, WalRecord::Commit { num_pages: 3 }, "byte {i}");
            }
        }
    }

    #[test]
    fn wrong_lsn_is_torn() {
        let mut buf = Vec::new();
        encode_record(Lsn(5), &WalRecord::Commit { num_pages: 1 }, &mut buf);
        assert_eq!(decode_record(&buf, 0, Lsn(1)), Err(Torn));
        assert!(decode_record(&buf, 0, Lsn(5)).unwrap().is_some());
    }

    #[test]
    fn absurd_length_field_is_torn_without_allocating() {
        let mut buf = vec![0u8; 32];
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_record(&buf, 0, Lsn(1)), Err(Torn));
    }

    #[test]
    fn mem_log_clones_share_bytes() {
        let mut log = MemLog::new();
        let handle = log.clone();
        log.append(b"hello").unwrap();
        assert_eq!(handle.bytes(), b"hello");
        assert_eq!(handle.len(), 5);
        log.truncate(2).unwrap();
        assert_eq!(handle.bytes(), b"he");
        let mut buf = [0u8; 2];
        handle.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"he");
        assert!(handle.read_at(1, &mut [0u8; 2]).is_err());
    }

    #[test]
    fn file_log_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("lsdb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(b"abcdef").unwrap();
            log.sync().unwrap();
            log.truncate(4).unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.len(), 4);
            let mut buf = [0u8; 4];
            log.read_at(0, &mut buf).unwrap();
            assert_eq!(&buf, b"abcd");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
