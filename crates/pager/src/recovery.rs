//! WAL scan and torn-tail analysis: turning whatever bytes survived a
//! crash into the exact set of committed batches to replay.
//!
//! Recovery is a single forward pass ([`scan`]) over the log device:
//! decode records in LSN order, buffer page images, and promote the
//! buffered images to the *committed* set each time a commit marker is
//! reached. The pass ends at the first byte that does not decode as the
//! expected next record — a torn write, bit rot, or a leftover from an
//! earlier log generation all look the same and are all handled the same
//! way: everything before the last intact commit marker is state,
//! everything after it is discarded. Because the writer syncs the log
//! *before* acknowledging a commit, the discarded suffix can only contain
//! unacknowledged work — recovery is prefix-consistent by construction.
//!
//! Replay is idempotent (full page images, applied in order), so crashing
//! *during* recovery or mid-checkpoint and recovering again converges to
//! the same state.

use crate::wal::{decode_record, LogDevice, Lsn, Torn, WalRecord};
use crate::PageId;
use std::collections::HashMap;
use std::io;

/// How the scanned log ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogTail {
    /// The log ends exactly at the last commit marker: nothing lost.
    Clean,
    /// The log ends with intact records that were never committed (the
    /// writer died between appending images and the commit marker).
    /// Those records are discarded.
    Uncommitted,
    /// The log ends mid-record (torn write) or with corrupt bytes. The
    /// broken suffix — and any intact-but-uncommitted records before it —
    /// is discarded.
    Torn,
}

/// The result of scanning a WAL: everything `DurableStorage::open` needs
/// to reconstruct the committed state and position the writer.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Final committed image of every page the log touches (later images
    /// of a page overwrite earlier ones — replay collapsed into a map).
    pub pages: HashMap<PageId, Box<[u8]>>,
    /// Logical page count from the last commit marker, if any batch
    /// committed.
    pub num_pages: Option<u32>,
    /// Byte length of the valid committed prefix; the writer truncates
    /// the device to this length before appending new records.
    pub valid_len: u64,
    /// LSN of the last committed record (the commit marker itself);
    /// [`Lsn::ZERO`] when nothing committed. New records continue from
    /// `last_lsn.next()`.
    pub last_lsn: Lsn,
    /// How the log ended (diagnostic — recovery succeeds regardless).
    pub tail: LogTail,
    /// Committed batches replayed.
    pub batches: u64,
    /// Committed page images replayed (before collapsing).
    pub images: u64,
    /// Bytes discarded after the committed prefix.
    pub discarded: u64,
}

/// A human-readable summary of a recovery, reported by
/// `DurableStorage::open` so callers (CLI, tests) can log what happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryReport {
    /// Committed batches replayed from the log.
    pub batches: u64,
    /// Committed page images replayed.
    pub images: u64,
    /// Distinct pages whose committed image came from the log rather
    /// than the base store.
    pub pages_recovered: u64,
    /// Bytes of torn or uncommitted log suffix discarded.
    pub discarded: u64,
    /// How the log ended.
    pub tail: LogTail,
}

/// Scan `log`, replaying committed batches and locating the torn tail.
///
/// `page_size` bounds the plausible size of a page-image record: an
/// intact-looking record carrying a differently-sized image belongs to
/// some other store and marks the tail torn.
pub fn scan(log: &impl LogDevice, page_size: usize) -> io::Result<ScanOutcome> {
    let len = log.len();
    let mut buf = vec![0u8; len as usize];
    log.read_at(0, &mut buf)?;

    let mut out = ScanOutcome {
        pages: HashMap::new(),
        num_pages: None,
        valid_len: 0,
        last_lsn: Lsn::ZERO,
        tail: LogTail::Clean,
        batches: 0,
        images: 0,
        discarded: 0,
    };
    // Images since the last commit marker: promoted on commit, dropped on
    // a torn or truncated tail.
    let mut staged: Vec<(PageId, Box<[u8]>)> = Vec::new();
    let mut at = 0usize;
    let mut lsn = Lsn::ZERO;
    loop {
        match decode_record(&buf, at, lsn.next()) {
            Ok(Some((record, next_at))) => {
                lsn = lsn.next();
                match record {
                    WalRecord::PageImage { pid, data } => {
                        if data.len() != page_size {
                            out.tail = LogTail::Torn;
                            break;
                        }
                        staged.push((pid, data));
                    }
                    WalRecord::Commit { num_pages } => {
                        out.images += staged.len() as u64;
                        for (pid, data) in staged.drain(..) {
                            out.pages.insert(pid, data);
                        }
                        out.num_pages = Some(num_pages);
                        out.batches += 1;
                        out.valid_len = next_at as u64;
                        out.last_lsn = lsn;
                    }
                }
                at = next_at;
            }
            Ok(None) => {
                if !staged.is_empty() {
                    out.tail = LogTail::Uncommitted;
                }
                break;
            }
            Err(Torn) => {
                out.tail = LogTail::Torn;
                break;
            }
        }
    }
    out.discarded = len - out.valid_len;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, MemLog};

    fn page(b: u8, size: usize) -> Box<[u8]> {
        vec![b; size].into_boxed_slice()
    }

    fn log_with(records: &[WalRecord]) -> MemLog {
        let mut bytes = Vec::new();
        for (i, r) in records.iter().enumerate() {
            encode_record(Lsn(i as u64 + 1), r, &mut bytes);
        }
        MemLog::from_bytes(bytes)
    }

    #[test]
    fn empty_log_scans_clean() {
        let out = scan(&MemLog::new(), 64).unwrap();
        assert_eq!(out.tail, LogTail::Clean);
        assert_eq!(out.batches, 0);
        assert_eq!(out.valid_len, 0);
        assert_eq!(out.last_lsn, Lsn::ZERO);
        assert!(out.pages.is_empty());
    }

    #[test]
    fn committed_batches_replay_latest_image_wins() {
        let log = log_with(&[
            WalRecord::PageImage {
                pid: PageId(0),
                data: page(1, 64),
            },
            WalRecord::Commit { num_pages: 1 },
            WalRecord::PageImage {
                pid: PageId(0),
                data: page(2, 64),
            },
            WalRecord::PageImage {
                pid: PageId(3),
                data: page(9, 64),
            },
            WalRecord::Commit { num_pages: 4 },
        ]);
        let out = scan(&log, 64).unwrap();
        assert_eq!(out.tail, LogTail::Clean);
        assert_eq!(out.batches, 2);
        assert_eq!(out.images, 3);
        assert_eq!(out.num_pages, Some(4));
        assert_eq!(out.last_lsn, Lsn(5));
        assert_eq!(out.valid_len, log.len());
        assert_eq!(out.pages[&PageId(0)], page(2, 64));
        assert_eq!(out.pages[&PageId(3)], page(9, 64));
    }

    #[test]
    fn uncommitted_suffix_is_discarded() {
        let log = log_with(&[
            WalRecord::PageImage {
                pid: PageId(0),
                data: page(1, 64),
            },
            WalRecord::Commit { num_pages: 1 },
            WalRecord::PageImage {
                pid: PageId(0),
                data: page(7, 64),
            },
            // no commit marker
        ]);
        let out = scan(&log, 64).unwrap();
        assert_eq!(out.tail, LogTail::Uncommitted);
        assert_eq!(out.batches, 1);
        assert_eq!(
            out.pages[&PageId(0)],
            page(1, 64),
            "uncommitted image dropped"
        );
        assert!(out.discarded > 0);
        assert!(out.valid_len < log.len());
    }

    #[test]
    fn every_byte_prefix_recovers_a_committed_prefix() {
        // The exhaustive torn-crash property at the scan level: cutting
        // the log at ANY byte yields exactly the batches whose commit
        // marker survived, never an error, never a partial batch.
        let records = [
            WalRecord::PageImage {
                pid: PageId(0),
                data: page(1, 32),
            },
            WalRecord::Commit { num_pages: 1 },
            WalRecord::PageImage {
                pid: PageId(1),
                data: page(2, 32),
            },
            WalRecord::PageImage {
                pid: PageId(0),
                data: page(3, 32),
            },
            WalRecord::Commit { num_pages: 2 },
        ];
        let full = log_with(&records).bytes();
        // Byte offsets of the two commit markers' record ends.
        let mut boundaries = Vec::new();
        let mut probe = 0usize;
        let mut lsn = Lsn::ZERO;
        while let Ok(Some((r, next))) = decode_record(&full, probe, lsn.next()) {
            lsn = lsn.next();
            if matches!(r, WalRecord::Commit { .. }) {
                boundaries.push(next);
            }
            probe = next;
        }
        assert_eq!(boundaries.len(), 2);

        for cut in 0..=full.len() {
            let out = scan(&MemLog::from_bytes(full[..cut].to_vec()), 32).unwrap();
            let expect_batches = boundaries.iter().filter(|&&b| b <= cut).count() as u64;
            assert_eq!(out.batches, expect_batches, "cut at {cut}");
            match expect_batches {
                0 => assert!(out.pages.is_empty(), "cut at {cut}"),
                1 => {
                    assert_eq!(out.pages.len(), 1, "cut at {cut}");
                    assert_eq!(out.pages[&PageId(0)], page(1, 32), "cut at {cut}");
                }
                _ => {
                    assert_eq!(out.pages[&PageId(0)], page(3, 32), "cut at {cut}");
                    assert_eq!(out.pages[&PageId(1)], page(2, 32), "cut at {cut}");
                }
            }
            assert!(out.valid_len as usize <= cut);
        }
    }

    #[test]
    fn wrong_page_size_marks_torn() {
        let log = log_with(&[
            WalRecord::PageImage {
                pid: PageId(0),
                data: page(1, 128), // store uses 64-byte pages
            },
            WalRecord::Commit { num_pages: 1 },
        ]);
        let out = scan(&log, 64).unwrap();
        assert_eq!(out.tail, LogTail::Torn);
        assert_eq!(out.batches, 0);
    }
}
