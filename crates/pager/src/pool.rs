use crate::{MemStorage, PageId, Storage};
use std::collections::HashMap;

/// Disk-transfer counters maintained by a [`BufferPool`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages fetched from storage because they were not pool-resident.
    pub reads: u64,
    /// Dirty pages written back to storage (on eviction or flush).
    pub writes: u64,
}

impl DiskStats {
    /// Total potential disk transfers, the quantity the paper tabulates.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Sub for DiskStats {
    type Output = DiskStats;
    fn sub(self, rhs: DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
        }
    }
}

struct Frame {
    pid: Option<PageId>,
    dirty: bool,
    last_used: u64,
    data: Box<[u8]>,
}

/// A fixed-capacity buffer pool with least-recently-used replacement.
///
/// The capacity is deliberately tiny (the paper uses 16 frames), so LRU
/// victim selection is a linear scan — simpler and faster than an intrusive
/// list at this scale.
pub struct BufferPool<S: Storage> {
    storage: S,
    frames: Vec<Frame>,
    resident: HashMap<PageId, usize>,
    free_pages: Vec<PageId>,
    tick: u64,
    stats: DiskStats,
}

/// The default in-memory pool used by experiments.
pub type MemPool = BufferPool<MemStorage>;

impl MemPool {
    /// Convenience constructor for an in-memory pool.
    pub fn in_memory(page_size: usize, capacity: usize) -> MemPool {
        BufferPool::new(MemStorage::new(page_size), capacity)
    }
}

impl<S: Storage> BufferPool<S> {
    pub fn new(storage: S, capacity: usize) -> Self {
        assert!(capacity >= 1, "pool needs at least one frame");
        let page_size = storage.page_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                pid: None,
                dirty: false,
                last_used: 0,
                data: vec![0u8; page_size].into_boxed_slice(),
            })
            .collect();
        BufferPool {
            storage,
            frames,
            resident: HashMap::new(),
            free_pages: Vec::new(),
            tick: 0,
            stats: DiskStats::default(),
        }
    }

    pub fn page_size(&self) -> usize {
        self.storage.page_size()
    }

    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Pages currently allocated (grown minus freed). Multiplied by the
    /// page size this is the structure's storage footprint.
    pub fn allocated_pages(&self) -> u32 {
        self.storage.num_pages() - self.free_pages.len() as u32
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.allocated_pages() as u64 * self.page_size() as u64
    }

    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Allocate a page (reusing freed pages first). The fresh page is
    /// zeroed, resident, and dirty; no read is charged because its contents
    /// need not come from disk.
    pub fn allocate(&mut self) -> PageId {
        let pid = match self.free_pages.pop() {
            Some(pid) => pid,
            None => self.storage.grow(),
        };
        let frame = self.victim_frame();
        self.install(frame, pid, true);
        self.frames[frame].data.fill(0);
        pid
    }

    /// Release a page. It is dropped from the pool without write-back and
    /// becomes available for reuse by [`BufferPool::allocate`].
    pub fn free(&mut self, pid: PageId) {
        if let Some(frame) = self.resident.remove(&pid) {
            self.frames[frame].pid = None;
            self.frames[frame].dirty = false;
        }
        debug_assert!(!self.free_pages.contains(&pid), "double free of {pid:?}");
        self.free_pages.push(pid);
    }

    /// Run `f` over the page contents (read-only).
    pub fn with_page<T>(&mut self, pid: PageId, f: impl FnOnce(&[u8]) -> T) -> T {
        let frame = self.fetch(pid);
        f(&self.frames[frame].data)
    }

    /// Run `f` over the page contents mutably; the page is marked dirty.
    pub fn with_page_mut<T>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8]) -> T) -> T {
        let frame = self.fetch(pid);
        self.frames[frame].dirty = true;
        f(&mut self.frames[frame].data)
    }

    /// Copy two pages into closures simultaneously (used by node splits
    /// that stream entries from an old node into a new one).
    pub fn with_two_pages_mut<T>(
        &mut self,
        a: PageId,
        b: PageId,
        f: impl FnOnce(&mut [u8], &mut [u8]) -> T,
    ) -> T {
        assert_ne!(a, b);
        let fa = self.fetch(a);
        // Pin `a` by bumping its tick before fetching `b`, so `b`'s fetch
        // cannot evict it (there are always >= 2 frames in practice; a
        // 1-frame pool cannot support two simultaneous pages).
        assert!(self.frames.len() >= 2, "two-page access needs >= 2 frames");
        self.touch(fa);
        let fb = self.fetch(b);
        assert_ne!(fa, fb);
        self.frames[fa].dirty = true;
        self.frames[fb].dirty = true;
        debug_assert_eq!(self.frames[fa].pid, Some(a), "frame A was evicted");
        let (la, lb) = if fa < fb {
            let (left, right) = self.frames.split_at_mut(fb);
            (&mut left[fa], &mut right[0])
        } else {
            let (left, right) = self.frames.split_at_mut(fa);
            (&mut right[0], &mut left[fb])
        };
        f(&mut la.data, &mut lb.data)
    }

    /// Write all dirty resident pages back to storage.
    pub fn flush(&mut self) {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                if let Some(pid) = self.frames[i].pid {
                    self.storage.write_page(pid, &self.frames[i].data);
                    self.frames[i].dirty = false;
                    self.stats.writes += 1;
                }
            }
        }
    }

    /// Drop every resident page (flushing dirty ones), emptying the pool.
    /// Useful to measure cold-cache query costs.
    pub fn clear(&mut self) {
        self.flush();
        for f in &mut self.frames {
            f.pid = None;
        }
        self.resident.clear();
    }

    /// Consume the pool, flushing, and return the underlying storage.
    pub fn into_storage(mut self) -> S {
        self.flush();
        self.storage
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        self.frames[frame].last_used = self.tick;
    }

    fn fetch(&mut self, pid: PageId) -> usize {
        if let Some(&frame) = self.resident.get(&pid) {
            self.touch(frame);
            return frame;
        }
        let frame = self.victim_frame();
        self.install(frame, pid, false);
        self.stats.reads += 1;
        self.storage.read_page(pid, &mut self.frames[frame].data);
        frame
    }

    /// Choose a frame to (re)use: an empty one if available, else the LRU
    /// victim (written back if dirty).
    fn victim_frame(&mut self) -> usize {
        if let Some(i) = self.frames.iter().position(|f| f.pid.is_none()) {
            return i;
        }
        let victim = self
            .frames
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .expect("capacity >= 1");
        if self.frames[victim].dirty {
            let pid = self.frames[victim].pid.expect("occupied frame");
            self.storage.write_page(pid, &self.frames[victim].data);
            self.stats.writes += 1;
        }
        if let Some(pid) = self.frames[victim].pid {
            self.resident.remove(&pid);
        }
        victim
    }

    fn install(&mut self, frame: usize, pid: PageId, dirty: bool) {
        self.frames[frame].pid = Some(pid);
        self.frames[frame].dirty = dirty;
        self.resident.insert(pid, frame);
        self.touch(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> MemPool {
        MemPool::in_memory(128, frames)
    }

    #[test]
    fn allocate_is_zeroed_and_free_of_reads() {
        let mut p = pool(4);
        let a = p.allocate();
        p.with_page(a, |d| assert!(d.iter().all(|&b| b == 0)));
        assert_eq!(p.stats().reads, 0, "fresh pages cost no read");
    }

    #[test]
    fn resident_pages_cost_nothing() {
        let mut p = pool(4);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[0] = 9);
        for _ in 0..100 {
            p.with_page(a, |d| assert_eq!(d[0], 9));
        }
        assert_eq!(p.stats(), DiskStats { reads: 0, writes: 0 });
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate(); // evicts a (LRU), which is dirty -> 1 write
        assert_eq!(p.stats().writes, 1);
        // b is resident, a is not.
        p.with_page(b, |_| {});
        assert_eq!(p.stats().reads, 0);
        p.with_page(a, |_| {}); // miss: evicts c (dirty)
        assert_eq!(p.stats().reads, 1);
        assert_eq!(p.stats().writes, 2);
        // Touch a, then load c: b must be the victim now (LRU).
        p.with_page(a, |_| {});
        p.with_page(c, |_| {});
        assert_eq!(p.stats().reads, 2);
        p.with_page(a, |_| {});
        assert_eq!(p.stats().reads, 2, "a stayed resident");
    }

    #[test]
    fn dirty_data_survives_eviction() {
        let mut p = pool(2);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[5] = 77);
        // Force a out of the pool.
        let _b = p.allocate();
        let _c = p.allocate();
        p.with_page(a, |d| assert_eq!(d[5], 77));
    }

    #[test]
    fn clean_pages_evict_without_write() {
        let mut p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        p.flush();
        let w = p.stats().writes;
        // Re-read both (residents), then fault in a third page; the victim
        // is clean, so no write.
        p.with_page(a, |_| {});
        p.with_page(b, |_| {});
        let c = p.allocate();
        let _ = c;
        assert_eq!(p.stats().writes, w, "clean eviction writes nothing");
    }

    #[test]
    fn flush_writes_each_dirty_page_once() {
        let mut p = pool(8);
        let pids: Vec<_> = (0..5).map(|_| p.allocate()).collect();
        for &pid in &pids {
            p.with_page_mut(pid, |d| d[0] = 1);
        }
        p.flush();
        assert_eq!(p.stats().writes, 5);
        p.flush();
        assert_eq!(p.stats().writes, 5, "second flush is a no-op");
    }

    #[test]
    fn free_reuses_pages_and_shrinks_footprint() {
        let mut p = pool(4);
        let a = p.allocate();
        let _b = p.allocate();
        assert_eq!(p.allocated_pages(), 2);
        p.free(a);
        assert_eq!(p.allocated_pages(), 1);
        let c = p.allocate();
        assert_eq!(c, a, "freed page is reused");
        assert_eq!(p.allocated_pages(), 2);
        assert_eq!(p.size_bytes(), 2 * 128);
    }

    #[test]
    fn freed_page_contents_are_zeroed_on_reuse() {
        let mut p = pool(4);
        let a = p.allocate();
        p.with_page_mut(a, |d| d.fill(0xAB));
        p.free(a);
        let b = p.allocate();
        assert_eq!(b, a);
        p.with_page(b, |d| assert!(d.iter().all(|&x| x == 0)));
    }

    #[test]
    fn two_pages_mut_split_borrow() {
        let mut p = pool(4);
        let a = p.allocate();
        let b = p.allocate();
        p.with_two_pages_mut(a, b, |da, db| {
            da[0] = 1;
            db[0] = 2;
        });
        p.with_page(a, |d| assert_eq!(d[0], 1));
        p.with_page(b, |d| assert_eq!(d[0], 2));
        // Also in the reverse frame order.
        p.with_two_pages_mut(b, a, |db, da| {
            assert_eq!(db[0], 2);
            assert_eq!(da[0], 1);
        });
    }

    #[test]
    fn two_pages_mut_works_when_neither_resident() {
        let mut p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        let d = p.allocate(); // a, b now evicted
        let _ = (c, d);
        p.with_two_pages_mut(a, b, |da, db| {
            da[1] = 3;
            db[1] = 4;
        });
        p.with_page(a, |x| assert_eq!(x[1], 3));
        p.with_page(b, |x| assert_eq!(x[1], 4));
    }

    #[test]
    fn clear_empties_pool_and_future_reads_miss() {
        let mut p = pool(4);
        let a = p.allocate();
        p.clear();
        p.reset_stats();
        p.with_page(a, |_| {});
        assert_eq!(p.stats().reads, 1, "cold read after clear");
    }

    #[test]
    fn stats_subtraction() {
        let a = DiskStats { reads: 10, writes: 4 };
        let b = DiskStats { reads: 3, writes: 1 };
        assert_eq!(a - b, DiskStats { reads: 7, writes: 3 });
        assert_eq!((a - b).total(), 10);
    }

    #[test]
    fn file_backed_pool_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lsdb-pool-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.bin");
        let pid;
        {
            let storage = crate::FileStorage::create(&path, 256).unwrap();
            let mut p = BufferPool::new(storage, 2);
            pid = p.allocate();
            p.with_page_mut(pid, |d| d[10] = 123);
            p.flush();
        }
        {
            let storage = crate::FileStorage::open(&path, 256).unwrap();
            let mut p = BufferPool::new(storage, 2);
            p.with_page(pid, |d| assert_eq!(d[10], 123));
            assert_eq!(p.stats().reads, 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
