use crate::{BufferBudget, MemStorage, PageId, Storage};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Multiplicative hasher for [`PageId`] keys. Page-id maps sit on the
/// query hot path (one lookup per page touch), where SipHash's keyed
/// mixing is needless work: page ids are small dense integers chosen by
/// the pool itself, not attacker-controlled, so a single odd-constant
/// multiply plus a fold of the high bits into the low ones (the bits a
/// `HashMap` actually indexes with) is collision-free enough and an
/// order of magnitude cheaper.
#[derive(Default)]
pub struct PageIdHasher(u64);

impl Hasher for PageIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by PageId, which hashes as one u32).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, n: u32) {
        let mut x = self.0 ^ n as u64;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 32);
    }
}

/// Hash map from [`PageId`] keyed by [`PageIdHasher`].
type PageMap<V> = HashMap<PageId, V, BuildHasherDefault<PageIdHasher>>;

/// The infallible convenience API panics on storage I/O errors (impossible
/// for [`MemStorage`]); callers with fallible backings use the `try_*`
/// methods instead.
fn io_abort(e: io::Error) -> ! {
    panic!("lsdb-pager: storage I/O failed (use the try_* API to handle this): {e}")
}

/// Process-unique pool identities, used to invalidate a [`PoolCtx`]'s pins
/// when it is reused against a different pool.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

/// Disk-transfer counters maintained by a [`BufferPool`] (build path) or a
/// [`PoolCtx`] (query path).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages fetched from storage because they were not pool-resident.
    pub reads: u64,
    /// Dirty pages written back to storage (on eviction or flush).
    pub writes: u64,
}

impl DiskStats {
    /// Total potential disk transfers, the quantity the paper tabulates.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Sub for DiskStats {
    type Output = DiskStats;
    fn sub(self, rhs: DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
        }
    }
}

/// One pinned page copy held by a [`PoolCtx`], together with the
/// accounting needed to *replay* its charge across query boundaries.
struct Pin {
    data: Box<[u8]>,
    /// Whether the first touch of this page charged a read (the page was
    /// non-resident in the frozen pool). Replayed verbatim when a later
    /// query of the same batch re-touches the warm pin.
    charged: bool,
    /// The context epoch the pin was last touched in. A pin whose epoch is
    /// behind the context's is *warm*: its bytes are still valid (the pool
    /// is frozen on the read path) but it has not been charged to the
    /// current query yet.
    epoch: u64,
}

/// Per-query page context: the pin set and disk counters of one logical
/// query against a shared (`&self`) pool.
///
/// [`BufferPool::read_page`] pins a copy of each page a query touches, so
/// repeated accesses within the query are free and, crucially, the read
/// counter is a pure function of (query, structure, pool residency at query
/// start) — independent of how queries interleave across threads. That is
/// what makes parallel workload totals equal sequential ones exactly.
///
/// # Warm pins and query epochs
///
/// A context separates two lifetimes: the pin *bytes* (kept as long as the
/// context is used against one pool, in one read-only phase) and the pin
/// *charges* (per query). [`PoolCtx::retire_pins`] advances the context's
/// epoch and zeroes the counters without dropping the pinned copies; the
/// next query that touches a warm pin replays exactly the charge the pin
/// recorded when it was created. Because the query path never installs or
/// evicts pool pages, residency — and therefore the charge — cannot have
/// changed in between, so per-query counters are byte-identical to those
/// of a freshly reset context while the page bytes stay warm. Callers
/// that *mutate* the pool between queries must use [`PoolCtx::reset`]
/// instead.
#[derive(Default)]
pub struct PoolCtx {
    pinned: PageMap<Pin>,
    /// Retired pin buffers kept for reuse: [`PoolCtx::reset`] moves pinned
    /// copies here instead of freeing them, and the next pins pop a
    /// matching-size buffer instead of allocating. A warmed-up context
    /// therefore runs whole queries without touching the allocator.
    spare: Vec<Box<[u8]>>,
    /// Identity of the pool the pins were taken against. Page ids are only
    /// unique within one pool, so a context that wanders to a different
    /// pool drops its pins instead of serving the old pool's bytes.
    owner: Option<u64>,
    /// The pool's [`BufferPool::version`] when the pins were taken. A
    /// build-path mutation bumps the pool version, so a context whose
    /// version is stale drops its pins on the next pin: its copies (and
    /// recorded charges) describe a pool state that no longer exists.
    /// During a read-only phase the version never moves and this check
    /// costs one integer compare.
    owner_version: u64,
    /// Current query epoch; pins carry the epoch they were last charged
    /// in. Advanced by [`PoolCtx::retire_pins`].
    epoch: u64,
    /// Potential disk accesses charged to this context: one read per
    /// distinct non-resident page touched.
    pub stats: DiskStats,
}

impl PoolCtx {
    pub fn new() -> Self {
        PoolCtx::default()
    }

    /// Drop all pins and zero the counters, making the context ready for
    /// the next query without reallocating.
    pub fn reset(&mut self) {
        self.spare.extend(self.pinned.drain().map(|(_, p)| p.data));
        self.owner = None;
        self.stats = DiskStats::default();
    }

    /// Start a new query *without* dropping the pinned page bytes: advance
    /// the epoch and zero the counters. Warm pins from earlier queries are
    /// re-charged (identically) on their first touch in the new epoch, so
    /// counters stay byte-identical to a fresh context — valid only while
    /// the pool is in a read-only phase (see the type-level docs).
    ///
    /// Pins *not* touched by the query that just finished are recycled
    /// into the spare list (second chance): over a long batch the pin set
    /// stays bounded by a two-query working set instead of accumulating
    /// every page the batch ever touched. Counters are unaffected either
    /// way — re-reading a dropped pin charges exactly what its replay
    /// would have (residency is frozen on the read path), which is the
    /// same argument that makes the replay itself valid.
    pub fn retire_pins(&mut self) {
        let epoch = self.epoch;
        let spare = &mut self.spare;
        self.pinned.retain(|_, p| {
            p.epoch == epoch || {
                spare.push(std::mem::take(&mut p.data));
                false
            }
        });
        self.epoch += 1;
        self.stats = DiskStats::default();
    }

    /// The current query epoch (compared by caches layered on top of the
    /// context, e.g. the segment mini-cache in `lsdb-core`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Distinct pages touched by the *current query* (pins charged in the
    /// current epoch). Warm pins retired by [`PoolCtx::retire_pins`] are
    /// excluded until re-touched.
    pub fn pages_touched(&self) -> usize {
        self.pinned
            .values()
            .filter(|p| p.epoch == self.epoch)
            .count()
    }
}

/// Pop a reusable buffer of exactly `page_size` bytes from a context's
/// spare list, discarding any stale ones retired against a pool with a
/// different page size.
fn take_spare(spare: &mut Vec<Box<[u8]>>, page_size: usize) -> Option<Box<[u8]>> {
    while let Some(data) = spare.pop() {
        if data.len() == page_size {
            return Some(data);
        }
    }
    None
}

/// Observability counters for one pool's caching behavior (satellite of
/// the buffer-budget work: `STATS` reports these per map). Monotonic,
/// relaxed atomics; orthogonal to the paper's [`DiskStats`], which stay
/// byte-reproducible — these are allowed to depend on timing (budget
/// shedding, interleaving).
#[derive(Default, Debug)]
pub(crate) struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn evict(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// A snapshot of one pool's (or one map's summed) cache accounting.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Pages logically resident (tracked by the shards' resident maps —
    /// the set the paper counters' charge decision consults).
    pub resident_pages: u64,
    /// Pages physically resident (frame bytes actually held — the
    /// quantity the [`BufferBudget`] meters). `<= resident_pages` never
    /// holds in general (empty frames may keep their buffers), but under
    /// budget pressure this drops while `resident_pages` stays put.
    pub cached_pages: u64,
    /// Total frames across the pool's shards.
    pub capacity_pages: u64,
    /// Page requests served from pool memory.
    pub hits: u64,
    /// Page requests that had to go to storage.
    pub misses: u64,
    /// Pages that lost their frame: build-path LRU repurposes plus
    /// budget-driven sheds.
    pub evictions: u64,
}

impl CacheStats {
    /// Element-wise accumulation (summing a map's pools, or all maps).
    pub fn add(&mut self, o: CacheStats) {
        self.resident_pages += o.resident_pages;
        self.cached_pages += o.cached_pages;
        self.capacity_pages += o.capacity_pages;
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
    }
}

struct Frame {
    pid: Option<PageId>,
    dirty: bool,
    last_used: u64,
    /// The page bytes, or `None` when the frame has been physically shed
    /// by the budget enforcer. Invariant: `data.is_none()` implies
    /// `!dirty` (shed writes dirty bytes back first).
    data: Option<Box<[u8]>>,
}

impl Frame {
    fn bytes(&self) -> &[u8] {
        self.data.as_deref().expect("frame bytes are shed")
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        self.data.as_deref_mut().expect("frame bytes are shed")
    }
}

/// One lock stripe of the pool: its own frames, resident map, LRU clock,
/// and build-path disk counters. Pages map to shards by `pid % shards`.
struct Shard {
    frames: Vec<Frame>,
    resident: PageMap<usize>,
    tick: u64,
    stats: DiskStats,
    page_size: usize,
    /// The byte budget this shard's frame buffers are charged against
    /// (shared across pools; swapped by [`BufferPool::attach_budget`]).
    budget: Arc<BufferBudget>,
    /// The owning pool's cache counters (shared by all its shards).
    cache: Arc<CacheCounters>,
}

impl Shard {
    fn new(
        capacity: usize,
        page_size: usize,
        budget: Arc<BufferBudget>,
        cache: Arc<CacheCounters>,
    ) -> Self {
        Shard {
            // Frame buffers are materialized lazily (and charged to the
            // budget) on first use, so an idle pool costs nothing.
            frames: (0..capacity)
                .map(|_| Frame {
                    pid: None,
                    dirty: false,
                    last_used: 0,
                    data: None,
                })
                .collect(),
            resident: PageMap::default(),
            tick: 0,
            stats: DiskStats::default(),
            page_size,
            budget,
            cache,
        }
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        self.frames[frame].last_used = self.tick;
    }

    /// Materialize the frame's byte buffer (charging the budget) if it
    /// was never allocated or was shed; returns whether it had to be.
    fn ensure_bytes(&mut self, frame: usize) -> bool {
        if self.frames[frame].data.is_none() {
            self.budget.charge(self.page_size as u64);
            self.frames[frame].data = Some(vec![0u8; self.page_size].into_boxed_slice());
            true
        } else {
            false
        }
    }

    /// Choose a frame to (re)use: an empty one if available, else the LRU
    /// victim (written back if dirty).
    fn victim_frame<S: Storage>(&mut self, storage: &S) -> io::Result<usize> {
        if let Some(i) = self.frames.iter().position(|f| f.pid.is_none()) {
            return Ok(i);
        }
        let victim = self
            .frames
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .expect("shard capacity >= 1");
        if self.frames[victim].dirty {
            let pid = self.frames[victim].pid.expect("occupied frame");
            storage.write_page(pid, self.frames[victim].bytes())?;
            self.stats.writes += 1;
        }
        if let Some(pid) = self.frames[victim].pid {
            self.resident.remove(&pid);
            self.cache.evict();
        }
        Ok(victim)
    }

    fn install(&mut self, frame: usize, pid: PageId, dirty: bool) {
        self.frames[frame].pid = Some(pid);
        self.frames[frame].dirty = dirty;
        self.resident.insert(pid, frame);
        self.touch(frame);
    }

    /// Bring `pid` into this shard (LRU-charging a read on a miss) and
    /// return its frame index.
    fn fetch<S: Storage>(&mut self, storage: &S, pid: PageId) -> io::Result<usize> {
        if let Some(&frame) = self.resident.get(&pid) {
            self.touch(frame);
            if self.ensure_bytes(frame) {
                // Logically resident but physically shed by the budget:
                // the bytes come back from storage (shed wrote them out).
                storage.read_page(pid, self.frames[frame].bytes_mut())?;
                self.stats.reads += 1;
                self.cache.miss();
            } else {
                self.cache.hit();
            }
            return Ok(frame);
        }
        let frame = self.victim_frame(storage)?;
        self.install(frame, pid, false);
        self.stats.reads += 1;
        self.cache.miss();
        self.ensure_bytes(frame);
        storage.read_page(pid, self.frames[frame].bytes_mut())?;
        Ok(frame)
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        let held = self.frames.iter().filter(|f| f.data.is_some()).count();
        self.budget.release(held as u64 * self.page_size as u64);
    }
}

/// A fixed-capacity buffer pool with least-recently-used replacement,
/// lock-striped into shards so concurrent readers touch disjoint locks.
///
/// Two access paths coexist:
///
/// * the **build path** (`&mut self`: [`BufferPool::allocate`],
///   [`BufferPool::with_page`], [`BufferPool::with_page_mut`], ...) mutates
///   frames through `get_mut` — no lock traffic — and charges misses to the
///   pool's internal [`DiskStats`], preserving the paper's LRU-sensitive
///   build measurements (Table 1, Figure 6);
/// * the **query path** ([`BufferPool::read_page`], `&self`) serves
///   resident pages under a shard read-lock and non-resident pages straight
///   from storage, charging all accounting to the caller's [`PoolCtx`]. It
///   never installs pages or advances the LRU clock, so the resident set is
///   frozen during a read-only query phase — which is exactly why per-query
///   counters are reproducible under any thread interleaving.
///
/// Within each shard, LRU victim selection is a linear scan — the paper's
/// pools are tiny (16 frames), so this beats an intrusive list.
pub struct BufferPool<S: Storage> {
    storage: S,
    shards: Vec<RwLock<Shard>>,
    free_pages: Vec<PageId>,
    /// Process-unique identity, checked against [`PoolCtx::owner`].
    id: u64,
    /// Mutation version: bumped by every build-path operation that can
    /// change page contents or residency (`allocate`, `free`, the
    /// `with_page*` family, `clear`). The query path compares it against
    /// [`PoolCtx::owner_version`] so warm pins taken before a mutation
    /// are dropped instead of served stale — what makes interleaved
    /// write/read phases safe without a "caller must reset()" contract.
    version: u64,
    /// The byte budget this pool's frames count against. Every pool
    /// starts on its own unlimited budget (standalone behavior exactly
    /// as before); a multi-map host re-attaches all pools to one shared
    /// budget via [`BufferPool::attach_budget`].
    budget: Arc<BufferBudget>,
    /// Cache observability counters (shared with the shards).
    cache: Arc<CacheCounters>,
}

/// The default in-memory pool used by experiments.
pub type MemPool = BufferPool<MemStorage>;

/// Default number of lock stripes for pools large enough to split.
pub const DEFAULT_SHARDS: usize = 4;

impl MemPool {
    /// Convenience constructor for an in-memory pool.
    pub fn in_memory(page_size: usize, capacity: usize) -> MemPool {
        BufferPool::new(MemStorage::new(page_size), capacity)
    }
}

impl<S: Storage> BufferPool<S> {
    /// A pool with the default shard count: up to [`DEFAULT_SHARDS`]
    /// stripes, but never fewer than two frames per shard (node splits pin
    /// two pages of one shard at once).
    pub fn new(storage: S, capacity: usize) -> Self {
        let shards = DEFAULT_SHARDS.min(capacity / 2).max(1);
        Self::with_shards(storage, capacity, shards)
    }

    /// A pool with an explicit shard count. `capacity` frames are spread
    /// as evenly as possible across `shards` lock stripes; page `p` lives
    /// in stripe `p % shards`.
    pub fn with_shards(storage: S, capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "pool needs at least one frame");
        assert!(
            (1..=capacity).contains(&shards),
            "shard count {shards} out of range 1..={capacity}"
        );
        let page_size = storage.page_size();
        let budget = BufferBudget::unlimited();
        let cache = Arc::new(CacheCounters::default());
        let shards = (0..shards)
            .map(|i| {
                let cap = capacity / shards + usize::from(i < capacity % shards);
                RwLock::new(Shard::new(
                    cap,
                    page_size,
                    Arc::clone(&budget),
                    Arc::clone(&cache),
                ))
            })
            .collect();
        BufferPool {
            storage,
            shards,
            free_pages: Vec::new(),
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            version: 0,
            budget,
            cache,
        }
    }

    /// Re-attach this pool to a (usually shared) byte budget, moving its
    /// current physical footprint from the old budget to the new one.
    pub fn attach_budget(&mut self, budget: &Arc<BufferBudget>) {
        if Arc::ptr_eq(&self.budget, budget) {
            return;
        }
        for s in &mut self.shards {
            let shard = s.get_mut().unwrap();
            let held = shard.frames.iter().filter(|f| f.data.is_some()).count() as u64;
            let bytes = held * shard.page_size as u64;
            shard.budget.release(bytes);
            budget.charge(bytes);
            shard.budget = Arc::clone(budget);
        }
        self.budget = Arc::clone(budget);
    }

    /// The budget this pool's frames are charged against.
    pub fn budget(&self) -> &Arc<BufferBudget> {
        &self.budget
    }

    /// Snapshot of this pool's cache accounting.
    pub fn cache_stats(&self) -> CacheStats {
        let mut out = CacheStats {
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
            evictions: self.cache.evictions.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for s in &self.shards {
            let s = s.read().unwrap();
            out.capacity_pages += s.frames.len() as u64;
            out.resident_pages += s.resident.len() as u64;
            out.cached_pages += s.frames.iter().filter(|f| f.data.is_some()).count() as u64;
        }
        out
    }

    /// Budget enforcement: physically drop up to `target_bytes` of frame
    /// bytes in LRU order (coldest `last_used` first), writing dirty
    /// pages back to storage first. Returns the bytes actually freed.
    ///
    /// Only the *bytes* go; logical residency (the resident maps, LRU
    /// metadata) is untouched, so the query path's per-query paper
    /// counters are unaffected — a shed page still reads as "resident"
    /// (free) and is served by a hidden storage re-read. The write-backs
    /// are deliberately **not** counted in the pool's [`DiskStats`]
    /// (shedding is timing-dependent and must not perturb the paper's
    /// reproducible build counters); they do show in
    /// [`BufferPool::cache_stats`] as evictions.
    pub fn shed(&self, target_bytes: u64) -> io::Result<u64> {
        let page = self.page_size() as u64;
        let mut candidates: Vec<(u64, usize, usize)> = Vec::new();
        for (si, s) in self.shards.iter().enumerate() {
            let s = s.read().unwrap();
            for (fi, f) in s.frames.iter().enumerate() {
                if f.data.is_some() {
                    candidates.push((f.last_used, si, fi));
                }
            }
        }
        candidates.sort_unstable();
        let mut freed = 0u64;
        for (lu, si, fi) in candidates {
            if freed >= target_bytes {
                break;
            }
            let mut s = self.shards[si].write().unwrap();
            let f = &mut s.frames[fi];
            // Re-validate under the write lock: skip frames that moved
            // (got touched or already shed) since we scanned them.
            if f.last_used != lu || f.data.is_none() {
                continue;
            }
            if f.dirty {
                let pid = f.pid.expect("dirty frame holds a page");
                self.storage.write_page(pid, f.bytes())?;
                f.dirty = false;
            }
            f.data = None;
            s.budget.release(page);
            s.cache.evict();
            freed += page;
        }
        Ok(freed)
    }

    /// Query-path re-admission: after serving a logically-resident but
    /// physically-shed page from storage, put the bytes back into the
    /// frame if the budget has headroom. Never changes logical residency
    /// or the pool version, so paper counters cannot observe it.
    fn try_readmit(&self, pid: PageId, bytes: &[u8]) {
        let page = self.page_size() as u64;
        if !self.budget.try_admit(page) {
            return;
        }
        let mut shard = self.shards[self.shard_of(pid)].write().unwrap();
        match shard.resident.get(&pid).copied() {
            Some(frame) if shard.frames[frame].data.is_none() => {
                shard.frames[frame].data = Some(bytes.into());
            }
            _ => {
                // Raced with a build-path mutation or another re-admission;
                // hand the charge back.
                drop(shard);
                self.budget.release(page);
            }
        }
    }

    fn shard_of(&self, pid: PageId) -> usize {
        pid.0 as usize % self.shards.len()
    }

    pub fn page_size(&self) -> usize {
        self.storage.page_size()
    }

    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().frames.len())
            .sum()
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Process-unique identity of this pool. A [`PoolCtx`] (and any cache
    /// layered on top of one, such as the segment mini-cache in
    /// `lsdb-core`) uses this to detect that it has wandered to a
    /// different pool and must drop state keyed by page or record ids.
    pub fn pool_id(&self) -> u64 {
        self.id
    }

    /// Mutation version: how many build-path operations have run against
    /// this pool. A [`PoolCtx`] records the version its pins were taken
    /// at and drops them when it observes a newer one; callers layering
    /// their own caches over a pool can do the same.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The backing storage (read-only).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Exclusive access to the backing storage, for durability control
    /// (commit/checkpoint on a `DurableStorage` backing). Callers must
    /// not change page *contents* through this — the pool's frames would
    /// go stale; [`BufferPool::flush`] first if the pool may hold dirty
    /// pages the storage operation should cover.
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Flush dirty pages and force them to stable storage: the pool-level
    /// commit hook ([`BufferPool::try_flush`] + [`Storage::sync`]).
    pub fn try_sync(&mut self) -> io::Result<()> {
        self.try_flush()?;
        self.storage.sync()
    }

    /// Pages currently allocated (grown minus freed). Multiplied by the
    /// page size this is the structure's storage footprint.
    pub fn allocated_pages(&self) -> u32 {
        self.storage.num_pages() - self.free_pages.len() as u32
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.allocated_pages() as u64 * self.page_size() as u64
    }

    /// Build-path counters, summed over shards. Query-path accounting
    /// lives in each query's [`PoolCtx`], not here.
    pub fn stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for s in &self.shards {
            let s = s.read().unwrap();
            total.reads += s.stats.reads;
            total.writes += s.stats.writes;
        }
        total
    }

    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.get_mut().unwrap().stats = DiskStats::default();
        }
    }

    /// Allocate a page (reusing freed pages first). The fresh page is
    /// zeroed, resident, and dirty; no read is charged because its contents
    /// need not come from disk.
    pub fn allocate(&mut self) -> PageId {
        self.try_allocate().unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::allocate`]: growing the backing file or
    /// writing back the evicted frame can fail.
    pub fn try_allocate(&mut self) -> io::Result<PageId> {
        self.version += 1;
        let pid = match self.free_pages.pop() {
            Some(pid) => pid,
            None => self.storage.grow()?,
        };
        let idx = self.shard_of(pid);
        let storage = &self.storage;
        let shard = self.shards[idx].get_mut().unwrap();
        let frame = shard.victim_frame(storage)?;
        shard.install(frame, pid, true);
        shard.ensure_bytes(frame);
        shard.frames[frame].bytes_mut().fill(0);
        Ok(pid)
    }

    /// Release a page. It is dropped from the pool without write-back and
    /// becomes available for reuse by [`BufferPool::allocate`].
    pub fn free(&mut self, pid: PageId) {
        self.version += 1;
        let idx = self.shard_of(pid);
        let shard = self.shards[idx].get_mut().unwrap();
        if let Some(frame) = shard.resident.remove(&pid) {
            shard.frames[frame].pid = None;
            shard.frames[frame].dirty = false;
        }
        debug_assert!(!self.free_pages.contains(&pid), "double free of {pid:?}");
        self.free_pages.push(pid);
    }

    /// Run `f` over the page contents (read-only; build path — misses are
    /// charged to the pool's own counters and update LRU state).
    pub fn with_page<T>(&mut self, pid: PageId, f: impl FnOnce(&[u8]) -> T) -> T {
        self.try_with_page(pid, f).unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::with_page`]: faulting the page in from a
    /// corrupt backing file surfaces the [`io::Error`].
    pub fn try_with_page<T>(&mut self, pid: PageId, f: impl FnOnce(&[u8]) -> T) -> io::Result<T> {
        // Read-only for page *contents*, but it moves residency and the
        // LRU clock — enough to invalidate warm-pin charge replay.
        self.version += 1;
        let idx = self.shard_of(pid);
        let storage = &self.storage;
        let shard = self.shards[idx].get_mut().unwrap();
        let frame = shard.fetch(storage, pid)?;
        Ok(f(shard.frames[frame].bytes()))
    }

    /// Run `f` over the page contents mutably; the page is marked dirty.
    pub fn with_page_mut<T>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8]) -> T) -> T {
        self.try_with_page_mut(pid, f)
            .unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::with_page_mut`].
    pub fn try_with_page_mut<T>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&mut [u8]) -> T,
    ) -> io::Result<T> {
        self.version += 1;
        let idx = self.shard_of(pid);
        let storage = &self.storage;
        let shard = self.shards[idx].get_mut().unwrap();
        let frame = shard.fetch(storage, pid)?;
        shard.frames[frame].dirty = true;
        Ok(f(shard.frames[frame].bytes_mut()))
    }

    /// Mutate two pages simultaneously (used by node splits that stream
    /// entries from an old node into a new one).
    pub fn with_two_pages_mut<T>(
        &mut self,
        a: PageId,
        b: PageId,
        f: impl FnOnce(&mut [u8], &mut [u8]) -> T,
    ) -> T {
        self.try_with_two_pages_mut(a, b, f)
            .unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::with_two_pages_mut`].
    pub fn try_with_two_pages_mut<T>(
        &mut self,
        a: PageId,
        b: PageId,
        f: impl FnOnce(&mut [u8], &mut [u8]) -> T,
    ) -> io::Result<T> {
        assert_ne!(a, b);
        self.version += 1;
        let (ia, ib) = (self.shard_of(a), self.shard_of(b));
        let storage = &self.storage;
        if ia == ib {
            let shard = self.shards[ia].get_mut().unwrap();
            assert!(
                shard.frames.len() >= 2,
                "two-page access needs >= 2 frames per shard"
            );
            let fa = shard.fetch(storage, a)?;
            // Pin `a` by bumping its tick before fetching `b`, so `b`'s
            // fetch cannot evict it.
            shard.touch(fa);
            let fb = shard.fetch(storage, b)?;
            assert_ne!(fa, fb);
            shard.frames[fa].dirty = true;
            shard.frames[fb].dirty = true;
            debug_assert_eq!(shard.frames[fa].pid, Some(a), "frame A was evicted");
            let (la, lb) = if fa < fb {
                let (left, right) = shard.frames.split_at_mut(fb);
                (&mut left[fa], &mut right[0])
            } else {
                let (left, right) = shard.frames.split_at_mut(fa);
                (&mut right[0], &mut left[fb])
            };
            Ok(f(la.bytes_mut(), lb.bytes_mut()))
        } else {
            // Distinct shards: split-borrow the stripe vector.
            let (first, second) = if ia < ib {
                let (l, r) = self.shards.split_at_mut(ib);
                (&mut l[ia], &mut r[0])
            } else {
                let (l, r) = self.shards.split_at_mut(ia);
                (&mut r[0], &mut l[ib])
            };
            let (sa, sb) = (first.get_mut().unwrap(), second.get_mut().unwrap());
            let fa = sa.fetch(storage, a)?;
            let fb = sb.fetch(storage, b)?;
            sa.frames[fa].dirty = true;
            sb.frames[fb].dirty = true;
            let (fa, fb) = (&mut sa.frames[fa], &mut sb.frames[fb]);
            Ok(f(fa.bytes_mut(), fb.bytes_mut()))
        }
    }

    /// Query path: run `f` over the page contents, charging all accounting
    /// to `ctx` instead of the pool.
    ///
    /// The first touch of a page within a context pins a private copy, so
    /// later touches are free; the read counter goes up only when that
    /// first touch finds the page non-resident (a potential disk access).
    /// Shared state is only ever read — the pool's resident set, LRU clock,
    /// and counters are untouched — so any number of contexts can run
    /// concurrently over `&self`.
    pub fn read_page<T>(&self, pid: PageId, ctx: &mut PoolCtx, f: impl FnOnce(&[u8]) -> T) -> T {
        self.try_read_page(pid, ctx, f)
            .unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::read_page`]: a failed fetch from a corrupt
    /// backing file propagates instead of aborting. The read is charged to
    /// `ctx` only when the page bytes actually arrive.
    pub fn try_read_page<T>(
        &self,
        pid: PageId,
        ctx: &mut PoolCtx,
        f: impl FnOnce(&[u8]) -> T,
    ) -> io::Result<T> {
        Ok(f(self.try_read_page_pinned(pid, ctx)?))
    }

    /// Query path, zero-copy variant: pin the page in `ctx` and return a
    /// borrow of the pinned copy, with the same accounting as
    /// [`BufferPool::read_page`]. The borrow lives as long as the `ctx`
    /// borrow, so scan kernels can walk the page bytes in place without a
    /// closure (and without a per-access hash lookup when a caller keeps
    /// the slice across several decodes).
    pub fn read_page_pinned<'c>(&self, pid: PageId, ctx: &'c mut PoolCtx) -> &'c [u8] {
        self.try_read_page_pinned(pid, ctx)
            .unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::read_page_pinned`].
    pub fn try_read_page_pinned<'c>(
        &self,
        pid: PageId,
        ctx: &'c mut PoolCtx,
    ) -> io::Result<&'c [u8]> {
        if ctx.owner != Some(self.id) || ctx.owner_version != self.version {
            // The context last pinned pages of a different pool (page ids
            // are per-pool), or this pool has been mutated since the pins
            // were taken (page contents and residency may have moved).
            // Either way the pins are meaningless now; counters are kept —
            // only the pin cache is invalidated.
            ctx.spare.extend(ctx.pinned.drain().map(|(_, p)| p.data));
            ctx.owner = Some(self.id);
            ctx.owner_version = self.version;
        }
        let PoolCtx {
            pinned,
            spare,
            stats,
            epoch,
            ..
        } = ctx;
        match pinned.entry(pid) {
            Entry::Occupied(e) => {
                let pin = e.into_mut();
                if pin.epoch != *epoch {
                    // Warm pin from an earlier query of this batch: replay
                    // the identical charge (pool residency is frozen on
                    // the read path, so the original charge still holds).
                    pin.epoch = *epoch;
                    stats.reads += pin.charged as u64;
                }
                Ok(&pin.data)
            }
            Entry::Vacant(slot) => {
                // Stale contents of a recycled buffer are fine: both arms
                // below overwrite the full page before the caller sees it.
                let mut data = take_spare(spare, self.storage.page_size())
                    .unwrap_or_else(|| vec![0u8; self.storage.page_size()].into_boxed_slice());
                let mut charged = false;
                let shard = self.shards[pid.0 as usize % self.shards.len()]
                    .read()
                    .unwrap();
                let resident = shard.resident.get(&pid).copied();
                match resident {
                    Some(frame) if shard.frames[frame].data.is_some() => {
                        data.copy_from_slice(shard.frames[frame].bytes());
                        self.cache.hit();
                    }
                    _ => {
                        drop(shard);
                        // Non-resident and shed pages are never dirty
                        // (eviction and shed write back first), so storage
                        // holds current bytes.
                        self.storage.read_page(pid, &mut data)?;
                        self.cache.miss();
                        if resident.is_some() {
                            // Logically resident, physically shed by the
                            // budget: the paper charge stays free (the
                            // charge decision consults logical residency
                            // only), and the bytes may come back into the
                            // frame if the budget now has headroom.
                            self.try_readmit(pid, &data);
                        } else {
                            stats.reads += 1;
                            charged = true;
                        }
                    }
                }
                Ok(&slot
                    .insert(Pin {
                        data,
                        charged,
                        epoch: *epoch,
                    })
                    .data)
            }
        }
    }

    /// Write all dirty resident pages back to storage.
    pub fn flush(&mut self) {
        self.try_flush().unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::flush`]. Stops at the first write error;
    /// pages already written are marked clean.
    pub fn try_flush(&mut self) -> io::Result<()> {
        let storage = &self.storage;
        for s in &mut self.shards {
            let shard = s.get_mut().unwrap();
            for frame in &mut shard.frames {
                if frame.dirty {
                    if let Some(pid) = frame.pid {
                        storage.write_page(pid, frame.bytes())?;
                        frame.dirty = false;
                        shard.stats.writes += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Drop every resident page (flushing dirty ones), emptying the pool.
    /// Useful to measure cold-cache query costs.
    pub fn clear(&mut self) {
        self.try_clear().unwrap_or_else(|e| io_abort(e))
    }

    /// Fallible [`BufferPool::clear`].
    pub fn try_clear(&mut self) -> io::Result<()> {
        self.version += 1;
        self.try_flush()?;
        for s in &mut self.shards {
            let shard = s.get_mut().unwrap();
            for f in &mut shard.frames {
                f.pid = None;
            }
            shard.resident.clear();
        }
        Ok(())
    }

    /// Consume the pool, flushing, and return the underlying storage.
    pub fn into_storage(mut self) -> S {
        self.flush();
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single stripe: the whole pool is one global LRU, matching the exact
    /// eviction-order expectations below.
    fn pool1(frames: usize) -> MemPool {
        BufferPool::with_shards(MemStorage::new(128), frames, 1)
    }

    #[test]
    fn allocate_is_zeroed_and_free_of_reads() {
        let mut p = pool1(4);
        let a = p.allocate();
        p.with_page(a, |d| assert!(d.iter().all(|&b| b == 0)));
        assert_eq!(p.stats().reads, 0, "fresh pages cost no read");
    }

    #[test]
    fn resident_pages_cost_nothing() {
        let mut p = MemPool::in_memory(128, 8);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[0] = 9);
        for _ in 0..100 {
            p.with_page(a, |d| assert_eq!(d[0], 9));
        }
        assert_eq!(
            p.stats(),
            DiskStats {
                reads: 0,
                writes: 0
            }
        );
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate(); // evicts a (LRU), which is dirty -> 1 write
        assert_eq!(p.stats().writes, 1);
        // b is resident, a is not.
        p.with_page(b, |_| {});
        assert_eq!(p.stats().reads, 0);
        p.with_page(a, |_| {}); // miss: evicts c (dirty)
        assert_eq!(p.stats().reads, 1);
        assert_eq!(p.stats().writes, 2);
        // Touch a, then load c: b must be the victim now (LRU).
        p.with_page(a, |_| {});
        p.with_page(c, |_| {});
        assert_eq!(p.stats().reads, 2);
        p.with_page(a, |_| {});
        assert_eq!(p.stats().reads, 2, "a stayed resident");
    }

    #[test]
    fn dirty_data_survives_eviction() {
        let mut p = pool1(2);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[5] = 77);
        // Force a out of the pool.
        let _b = p.allocate();
        let _c = p.allocate();
        p.with_page(a, |d| assert_eq!(d[5], 77));
    }

    #[test]
    fn clean_pages_evict_without_write() {
        let mut p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        p.flush();
        let w = p.stats().writes;
        // Re-read both (residents), then fault in a third page; the victim
        // is clean, so no write.
        p.with_page(a, |_| {});
        p.with_page(b, |_| {});
        let c = p.allocate();
        let _ = c;
        assert_eq!(p.stats().writes, w, "clean eviction writes nothing");
    }

    #[test]
    fn flush_writes_each_dirty_page_once() {
        let mut p = MemPool::in_memory(128, 8);
        let pids: Vec<_> = (0..5).map(|_| p.allocate()).collect();
        for &pid in &pids {
            p.with_page_mut(pid, |d| d[0] = 1);
        }
        p.flush();
        assert_eq!(p.stats().writes, 5);
        p.flush();
        assert_eq!(p.stats().writes, 5, "second flush is a no-op");
    }

    #[test]
    fn free_reuses_pages_and_shrinks_footprint() {
        let mut p = pool1(4);
        let a = p.allocate();
        let _b = p.allocate();
        assert_eq!(p.allocated_pages(), 2);
        p.free(a);
        assert_eq!(p.allocated_pages(), 1);
        let c = p.allocate();
        assert_eq!(c, a, "freed page is reused");
        assert_eq!(p.allocated_pages(), 2);
        assert_eq!(p.size_bytes(), 2 * 128);
    }

    #[test]
    fn freed_page_contents_are_zeroed_on_reuse() {
        let mut p = pool1(4);
        let a = p.allocate();
        p.with_page_mut(a, |d| d.fill(0xAB));
        p.free(a);
        let b = p.allocate();
        assert_eq!(b, a);
        p.with_page(b, |d| assert!(d.iter().all(|&x| x == 0)));
    }

    #[test]
    fn two_pages_mut_split_borrow() {
        // Default sharding: pages 0 and 1 land in different stripes,
        // pages 0 and 2 in the same one — exercise both paths.
        let mut p = MemPool::in_memory(128, 4);
        assert_eq!(p.shard_count(), 2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        p.with_two_pages_mut(a, b, |da, db| {
            da[0] = 1;
            db[0] = 2;
        });
        p.with_two_pages_mut(a, c, |da, dc| {
            assert_eq!(da[0], 1);
            dc[0] = 3;
        });
        p.with_page(a, |d| assert_eq!(d[0], 1));
        p.with_page(b, |d| assert_eq!(d[0], 2));
        p.with_page(c, |d| assert_eq!(d[0], 3));
        // Also in the reverse order.
        p.with_two_pages_mut(b, a, |db, da| {
            assert_eq!(db[0], 2);
            assert_eq!(da[0], 1);
        });
    }

    #[test]
    fn two_pages_mut_works_when_neither_resident() {
        let mut p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        let d = p.allocate(); // a, b now evicted
        let _ = (c, d);
        p.with_two_pages_mut(a, b, |da, db| {
            da[1] = 3;
            db[1] = 4;
        });
        p.with_page(a, |x| assert_eq!(x[1], 3));
        p.with_page(b, |x| assert_eq!(x[1], 4));
    }

    #[test]
    fn clear_empties_pool_and_future_reads_miss() {
        let mut p = pool1(4);
        let a = p.allocate();
        p.clear();
        p.reset_stats();
        p.with_page(a, |_| {});
        assert_eq!(p.stats().reads, 1, "cold read after clear");
    }

    #[test]
    fn stats_subtraction() {
        let a = DiskStats {
            reads: 10,
            writes: 4,
        };
        let b = DiskStats {
            reads: 3,
            writes: 1,
        };
        assert_eq!(
            a - b,
            DiskStats {
                reads: 7,
                writes: 3
            }
        );
        assert_eq!((a - b).total(), 10);
    }

    #[test]
    fn sharding_distributes_frames_and_pages() {
        let p = BufferPool::with_shards(MemStorage::new(128), 10, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.capacity(), 10, "remainder frames are not lost");
    }

    #[test]
    fn ctx_charges_once_per_distinct_page() {
        let mut p = MemPool::in_memory(128, 4);
        let a = p.allocate();
        let b = p.allocate();
        p.with_page_mut(a, |d| d[0] = 1);
        p.with_page_mut(b, |d| d[0] = 2);
        p.clear(); // both now non-resident
        let mut ctx = PoolCtx::new();
        for _ in 0..10 {
            p.read_page(a, &mut ctx, |d| assert_eq!(d[0], 1));
            p.read_page(b, &mut ctx, |d| assert_eq!(d[0], 2));
        }
        assert_eq!(ctx.stats.reads, 2, "one charge per distinct page");
        assert_eq!(ctx.pages_touched(), 2);
        ctx.reset();
        assert_eq!(ctx.pages_touched(), 0);
        p.read_page(a, &mut ctx, |_| {});
        assert_eq!(ctx.stats.reads, 1, "fresh context recharges");
    }

    #[test]
    fn ctx_reads_resident_pages_for_free_and_sees_dirty_data() {
        let mut p = MemPool::in_memory(128, 4);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[0] = 42); // dirty, resident, NOT flushed
        let mut ctx = PoolCtx::new();
        p.read_page(a, &mut ctx, |d| assert_eq!(d[0], 42, "sees dirty frame"));
        assert_eq!(ctx.stats.reads, 0, "resident pages are free");
        assert_eq!(ctx.pages_touched(), 1);
    }

    #[test]
    fn read_path_leaves_pool_state_alone() {
        let mut p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate(); // a evicted
        p.flush();
        p.reset_stats();
        let mut ctx = PoolCtx::new();
        p.read_page(a, &mut ctx, |_| {});
        assert_eq!(ctx.stats.reads, 1, "a was not resident");
        assert_eq!(p.stats(), DiskStats::default(), "pool counters untouched");
        // a was NOT installed: b and c are still the residents.
        let mut ctx2 = PoolCtx::new();
        p.read_page(b, &mut ctx2, |_| {});
        p.read_page(c, &mut ctx2, |_| {});
        assert_eq!(ctx2.stats.reads, 0, "residents undisturbed by read path");
    }

    #[test]
    fn concurrent_contexts_count_deterministically() {
        let mut p = BufferPool::with_shards(MemStorage::new(128), 8, 4);
        let pids: Vec<_> = (0..16).map(|_| p.allocate()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.with_page_mut(pid, |d| d[0] = i as u8);
        }
        p.flush();
        let p = &p;
        let pids = &pids;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut ctx = PoolCtx::new();
                        for (i, &pid) in pids.iter().enumerate() {
                            p.read_page(pid, &mut ctx, |d| assert_eq!(d[0], i as u8));
                        }
                        ctx.stats.reads
                    })
                })
                .collect();
            for h in handles {
                let reads = h.join().unwrap();
                // 8 of the 16 pages are resident (each stripe holds its 2
                // most recent), 8 are not; every thread sees the same count.
                assert_eq!(reads, 8);
            }
        });
    }

    #[test]
    fn pinned_borrow_matches_closure_reads_and_charges_identically() {
        let mut p = MemPool::in_memory(128, 4);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[0] = 7);
        p.clear();
        let mut ctx = PoolCtx::new();
        let buf = p.read_page_pinned(a, &mut ctx);
        assert_eq!(buf[0], 7);
        assert_eq!(ctx.stats.reads, 1, "cold page charges one read");
        let buf = p.read_page_pinned(a, &mut ctx);
        assert_eq!(buf[0], 7);
        assert_eq!(ctx.stats.reads, 1, "pinned page is free to re-borrow");
        assert_eq!(ctx.pages_touched(), 1);
        // The closure API and the borrow API share one pin set.
        p.read_page(a, &mut ctx, |d| assert_eq!(d[0], 7));
        assert_eq!(ctx.stats.reads, 1);
    }

    #[test]
    fn retired_pins_recharge_identically_without_refetching() {
        // One resident page (free) and one cold page (charged): after
        // retire_pins(), the next query must report the same counters a
        // fresh context would, while the page bytes stay warm.
        let mut p = pool1(2);
        let hot = p.allocate();
        let cold = p.allocate();
        p.with_page_mut(hot, |d| d[0] = 1);
        p.with_page_mut(cold, |d| d[0] = 2);
        p.flush();
        // Evict `cold` (LRU) by touching `hot` then faulting a third page.
        p.with_page(hot, |_| {});
        let third = p.allocate();
        let _ = third;
        p.with_page(hot, |_| {});
        p.reset_stats();

        let mut ctx = PoolCtx::new();
        let mut fresh = PoolCtx::new();
        for round in 0..4 {
            ctx.retire_pins();
            fresh.reset();
            p.read_page(hot, &mut ctx, |d| assert_eq!(d[0], 1));
            p.read_page(cold, &mut ctx, |d| assert_eq!(d[0], 2));
            p.read_page(hot, &mut fresh, |d| assert_eq!(d[0], 1));
            p.read_page(cold, &mut fresh, |d| assert_eq!(d[0], 2));
            assert_eq!(ctx.stats, fresh.stats, "round {round}");
            assert_eq!(ctx.pages_touched(), 2, "round {round}");
        }
        assert_eq!(p.stats(), DiskStats::default(), "pool state untouched");
    }

    #[test]
    fn retire_pins_counts_only_current_epoch_touches() {
        let mut p = MemPool::in_memory(128, 4);
        let a = p.allocate();
        let b = p.allocate();
        p.clear();
        let mut ctx = PoolCtx::new();
        p.read_page(a, &mut ctx, |_| {});
        p.read_page(b, &mut ctx, |_| {});
        assert_eq!(ctx.pages_touched(), 2);
        let e0 = ctx.epoch();
        ctx.retire_pins();
        assert_eq!(ctx.epoch(), e0 + 1);
        assert_eq!(ctx.stats, DiskStats::default());
        assert_eq!(ctx.pages_touched(), 0, "warm pins are not current");
        p.read_page(a, &mut ctx, |_| {});
        assert_eq!(ctx.pages_touched(), 1, "re-touched pin is current again");
        assert_eq!(ctx.stats.reads, 1, "cold charge replayed");
        p.read_page(a, &mut ctx, |_| {});
        assert_eq!(ctx.stats.reads, 1, "second touch in the epoch is free");
        ctx.reset();
        assert_eq!(ctx.pages_touched(), 0);
        p.read_page(a, &mut ctx, |_| {});
        assert_eq!(ctx.stats.reads, 1, "reset still recharges from cold");
    }

    #[test]
    fn a_wandering_ctx_never_serves_another_pools_bytes() {
        // Same page id, two pools, different contents: a context reused
        // across pools must re-pin, not serve the first pool's copy.
        let mut a = MemPool::in_memory(64, 4);
        let mut b = MemPool::in_memory(64, 4);
        let pa = a.allocate();
        let pb = b.allocate();
        assert_eq!(pa, pb, "both pools hand out the same first page id");
        a.with_page_mut(pa, |d| d[0] = 0xAA);
        b.with_page_mut(pb, |d| d[0] = 0xBB);
        let mut ctx = PoolCtx::new();
        assert_eq!(a.read_page(pa, &mut ctx, |d| d[0]), 0xAA);
        assert_eq!(b.read_page(pb, &mut ctx, |d| d[0]), 0xBB);
        assert_eq!(a.read_page(pa, &mut ctx, |d| d[0]), 0xAA);
    }

    #[test]
    fn mutation_bumps_version_and_invalidates_stale_pins() {
        let mut p = MemPool::in_memory(128, 4);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[0] = 1);
        let v = p.version();

        let mut ctx = PoolCtx::new();
        p.read_page(a, &mut ctx, |d| assert_eq!(d[0], 1));
        assert_eq!(p.version(), v, "query path never bumps the version");

        // Mutate the page: the context's pinned copy is now stale.
        p.with_page_mut(a, |d| d[0] = 2);
        assert!(p.version() > v);
        p.read_page(a, &mut ctx, |d| {
            assert_eq!(d[0], 2, "stale pin dropped, fresh bytes served")
        });
    }

    #[test]
    fn stale_warm_pins_recharge_like_a_fresh_context() {
        // After a mutation, a warm context's counters must match a fresh
        // context's exactly — the charge-replay contract, now enforced by
        // the version check instead of a caller-side reset() rule.
        let mut p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate(); // a evicted
        p.flush();
        let mut warm = PoolCtx::new();
        p.read_page(a, &mut warm, |_| {});
        p.read_page(b, &mut warm, |_| {});
        assert_eq!(warm.stats.reads, 1, "a cold, b resident");

        // Build-path read of `a` changes residency (evicts b).
        p.with_page(a, |_| {});
        warm.retire_pins();
        let mut fresh = PoolCtx::new();
        for pid in [a, b, c] {
            p.read_page(pid, &mut warm, |_| {});
            p.read_page(pid, &mut fresh, |_| {});
        }
        assert_eq!(warm.stats, fresh.stats, "stale charges not replayed");
        assert_eq!(warm.stats.reads, 1, "b now cold, a and c resident");
    }

    #[test]
    fn version_survives_read_only_batches() {
        let mut p = MemPool::in_memory(128, 4);
        let a = p.allocate();
        p.flush();
        let v = p.version();
        let mut ctx = PoolCtx::new();
        for _ in 0..5 {
            p.read_page(a, &mut ctx, |_| {});
            ctx.retire_pins();
        }
        assert_eq!(p.version(), v);
    }

    #[test]
    fn pool_sync_flushes_then_syncs_storage() {
        let mut p = MemPool::in_memory(128, 4);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[0] = 9);
        p.try_sync().unwrap();
        let mut buf = vec![0u8; 128];
        p.storage().read_page(a, &mut buf).unwrap();
        assert_eq!(buf[0], 9, "dirty page reached storage");
    }

    #[test]
    fn budget_accounts_physical_bytes_across_pools() {
        let budget = BufferBudget::new(1 << 20);
        let mut a = MemPool::in_memory(128, 4);
        let mut b = MemPool::in_memory(128, 4);
        a.attach_budget(&budget);
        b.attach_budget(&budget);
        assert_eq!(budget.used(), 0, "lazy frames cost nothing");
        let _ = a.allocate();
        let _ = a.allocate();
        let _ = b.allocate();
        assert_eq!(budget.used(), 3 * 128);
        drop(a);
        assert_eq!(budget.used(), 128, "dropping a pool releases its bytes");
        drop(b);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn attach_budget_moves_existing_footprint() {
        let mut p = MemPool::in_memory(128, 4);
        let _ = p.allocate();
        let _ = p.allocate();
        assert_eq!(p.budget().used(), 2 * 128, "charged to the default budget");
        let shared = BufferBudget::new(4096);
        p.attach_budget(&shared);
        assert_eq!(shared.used(), 2 * 128, "footprint moved over");
        assert!(Arc::ptr_eq(p.budget(), &shared));
    }

    #[test]
    fn shed_drops_coldest_bytes_and_reads_survive() {
        let mut p = pool1(4);
        let pids: Vec<_> = (0..4).map(|_| p.allocate()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.with_page_mut(pid, |d| d[0] = i as u8 + 1);
        }
        // Touch pages 2 and 3 so 0 and 1 are the cold ones. All four are
        // dirty — shed must write them back before dropping the bytes.
        p.with_page(pids[2], |_| {});
        p.with_page(pids[3], |_| {});
        let freed = p.shed(2 * 128).unwrap();
        assert_eq!(freed, 2 * 128);
        let cs = p.cache_stats();
        assert_eq!(cs.resident_pages, 4, "logical residency untouched");
        assert_eq!(cs.cached_pages, 2, "two frames physically shed");
        // Every page still reads back correctly (shed ones via storage).
        for (i, &pid) in pids.iter().enumerate() {
            let mut ctx = PoolCtx::new();
            p.read_page(pid, &mut ctx, |d| assert_eq!(d[0], i as u8 + 1));
        }
    }

    #[test]
    fn shed_pages_stay_free_for_paper_counters() {
        // The core byte-identity property: a query's DiskStats must not
        // change whether or not the budget shed pages under it.
        let mut p = pool1(4);
        let pids: Vec<_> = (0..6).map(|_| p.allocate()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.with_page_mut(pid, |d| d[0] = 10 + i as u8);
        }
        p.flush();
        // Residency now: pids[2..6] resident, pids[0..2] evicted.
        let baseline = {
            let mut ctx = PoolCtx::new();
            for &pid in &pids {
                p.read_page(pid, &mut ctx, |_| {});
            }
            ctx.stats
        };
        assert_eq!(baseline.reads, 2, "two logically non-resident pages");
        // Shed everything physically; logical residency is frozen.
        let freed = p.shed(u64::MAX).unwrap();
        assert_eq!(freed, 4 * 128);
        let mut ctx = PoolCtx::new();
        for (i, &pid) in pids.iter().enumerate() {
            p.read_page(pid, &mut ctx, |d| assert_eq!(d[0], 10 + i as u8));
        }
        assert_eq!(ctx.stats, baseline, "shedding is invisible to counters");
    }

    #[test]
    fn shed_pages_readmit_under_headroom_but_not_over_budget() {
        let mut p = pool1(2);
        let a = p.allocate();
        p.with_page_mut(a, |d| d[0] = 5);
        p.flush();
        // Tight budget: exactly one page fits; the pool currently holds 2
        // frames' bytes? (only one allocated page => one materialized).
        let budget = BufferBudget::new(128);
        p.attach_budget(&budget);
        assert_eq!(budget.used(), 128);
        p.shed(u64::MAX).unwrap();
        assert_eq!(budget.used(), 0);
        // Read the shed page: logically free, served from storage, and
        // re-admitted because the budget has headroom again.
        let mut ctx = PoolCtx::new();
        p.read_page(a, &mut ctx, |d| assert_eq!(d[0], 5));
        assert_eq!(ctx.stats.reads, 0, "resident page stays free");
        assert_eq!(budget.used(), 128, "bytes re-admitted");
        assert_eq!(budget.admissions(), 1);
        assert_eq!(p.cache_stats().cached_pages, 1);
        // Second read is a pool hit again (ctx re-pins nothing; use fresh).
        let hits = p.cache_stats().hits;
        let mut ctx2 = PoolCtx::new();
        p.read_page(a, &mut ctx2, |d| assert_eq!(d[0], 5));
        assert_eq!(p.cache_stats().hits, hits + 1);

        // Now starve the budget: shed, fill it from elsewhere, and the
        // re-read must be denied re-admission yet still serve the bytes.
        p.shed(u64::MAX).unwrap();
        budget.charge(128);
        let mut ctx3 = PoolCtx::new();
        p.read_page(a, &mut ctx3, |d| assert_eq!(d[0], 5));
        assert_eq!(ctx3.stats.reads, 0, "still logically resident");
        assert_eq!(budget.denials(), 1);
        assert_eq!(p.cache_stats().cached_pages, 0, "not re-admitted");
    }

    #[test]
    fn cache_stats_track_hits_misses_and_evictions() {
        let mut p = pool1(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate(); // evicts a
        let cs = p.cache_stats();
        assert_eq!(cs.evictions, 1);
        assert_eq!(cs.capacity_pages, 2);
        p.with_page(b, |_| {}); // hit
        p.with_page(a, |_| {}); // miss (evicts c: 2nd eviction)
        let cs = p.cache_stats();
        assert_eq!(cs.hits, 1);
        assert_eq!(cs.misses, 1);
        assert_eq!(cs.evictions, 2);
        let mut agg = CacheStats::default();
        agg.add(cs);
        agg.add(cs);
        assert_eq!(agg.hits, 2);
        let _ = c;
    }

    #[test]
    fn file_backed_pool_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lsdb-pool-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.bin");
        let pid;
        {
            let storage = crate::FileStorage::create(&path, 256).unwrap();
            let mut p = BufferPool::new(storage, 2);
            pid = p.allocate();
            p.with_page_mut(pid, |d| d[10] = 123);
            p.flush();
        }
        {
            let storage = crate::FileStorage::open(&path, 256).unwrap();
            let mut p = BufferPool::new(storage, 2);
            p.with_page(pid, |d| assert_eq!(d[10], 123));
            assert_eq!(p.stats().reads, 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
