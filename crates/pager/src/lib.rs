//! Simulated-disk paged storage with an LRU buffer pool.
//!
//! The paper's central measurement is the number of *potential disk
//! accesses*: "operations that are expected to cause reading a page of data
//! that is not currently resident in main memory". Every index in this
//! repository therefore stores its nodes in fixed-size pages behind a
//! [`BufferPool`] with a least-recently-used replacement policy (the paper
//! uses 16 pages of 1 KB each), and the pool counts
//!
//! * a **read** whenever a page is fetched and is not resident, and
//! * a **write** whenever a dirty page is evicted or flushed.
//!
//! The backing "disk" is abstracted by the [`Storage`] trait with an
//! in-memory implementation ([`MemStorage`], used by tests and benchmarks —
//! deterministic and fast) and a real file-backed implementation
//! ([`FileStorage`]) proving the layout is genuinely persistable.
//!
//! The pool is lock-striped into shards (see [`BufferPool`]) and exposes a
//! shared (`&self`) query path, [`BufferPool::read_page`], whose accounting
//! lives in a per-query [`PoolCtx`] — the substrate of the concurrent query
//! engine in the index crates.

//!
//! Durability lives one layer up: [`wal`] defines the redo-only log record
//! codec and the append-only [`wal::LogDevice`] sinks, [`recovery`] scans a
//! (possibly torn) log back into committed state, and [`DurableStorage`]
//! composes them over any [`Storage`] to provide atomic group commit,
//! checkpointing, and crash recovery. [`fault`] holds the fault-injection
//! wrappers the crash tests kill stores with.

mod budget;
mod durable;
pub mod fault;
mod pool;
pub mod recovery;
mod storage;
pub mod wal;

pub use budget::BufferBudget;
pub use durable::DurableStorage;
pub use pool::{BufferPool, CacheStats, DiskStats, MemPool, PoolCtx, DEFAULT_SHARDS};
pub use recovery::{LogTail, RecoveryReport};
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{FileLog, LogDevice, Lsn, MemLog};

/// Page size used throughout the paper's main experiments.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Buffer pool capacity (in pages) used throughout the paper's main
/// experiments.
pub const DEFAULT_POOL_PAGES: usize = 16;

/// Identifier of a page within one storage instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u32);

impl PageId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
