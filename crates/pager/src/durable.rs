//! [`DurableStorage`]: a redo-only WAL layered over any [`Storage`],
//! turning plain page writes into atomic, crash-recoverable batches.
//!
//! # Write path (no-steal, redo-only)
//!
//! Writes never touch the base store directly. A page travels through
//! three tiers:
//!
//! 1. **pending** — written since the last commit; volatile, lost on a
//!    crash (correct: it was never acknowledged);
//! 2. **overlay** — committed to the log ([`DurableStorage::commit`]
//!    appends one page image per pending page plus a commit marker, then
//!    syncs the log device: group commit, one fsync per batch);
//! 3. **base** — the underlying store, updated only by
//!    [`DurableStorage::checkpoint`], which writes the overlay down,
//!    fsyncs the base ([`Storage::sync`]), and truncates the log.
//!
//! Reads resolve pending → overlay → base, so the storage always serves
//! its own latest write; durability is what the tiers stage.
//!
//! # Crash safety
//!
//! The log is synced *before* a commit returns, and the base is synced
//! *before* the log is truncated. Whatever prefix of log bytes survives
//! a crash, [`DurableStorage::open`] recovers exactly the batches whose
//! commit marker is intact (see [`crate::recovery`]) — a prefix of the
//! acknowledged commits, never a partial batch. A crash mid-checkpoint
//! is safe because every page the checkpoint writes to the base is still
//! in the log; replaying it over the half-written base is idempotent.
//!
//! If appending or syncing the log *fails* (as opposed to the process
//! dying), the commit is rolled back by truncating the device to its
//! pre-append length; when even that fails the storage poisons itself
//! and refuses further commits — the log tail is in an unknown state and
//! only a reopen (which re-scans) can re-establish what is durable.

use crate::recovery::{self, RecoveryReport};
use crate::wal::{encode_record, LogDevice, Lsn, WalRecord};
use crate::{PageId, Storage};
use std::collections::HashMap;
use std::io;
use std::sync::Mutex;

struct Inner<L: LogDevice> {
    log: L,
    /// Pages written since the last commit (volatile tier).
    pending: HashMap<PageId, Box<[u8]>>,
    /// Pages committed to the log but not yet checkpointed into the base.
    overlay: HashMap<PageId, Box<[u8]>>,
    /// Logical page count (grows immediately; the base catches up at
    /// checkpoint).
    num_pages: u32,
    /// Logical page count as of the last commit marker.
    committed_pages: u32,
    /// LSN of the last committed record in the current log generation.
    last_lsn: Lsn,
    /// Set when the log device failed in a way that left its tail
    /// unknown; every later commit is refused.
    poisoned: bool,
}

/// A [`Storage`] that write-ahead-logs every page it is handed. See the
/// module docs for the commit/checkpoint protocol.
///
/// [`Storage::sync`] on this type performs a [`DurableStorage::commit`]:
/// a caller that only knows the `Storage` trait (e.g. a generic flush
/// path) still gets group-commit durability from the hook.
pub struct DurableStorage<S: Storage, L: LogDevice> {
    base: S,
    inner: Mutex<Inner<L>>,
}

impl<S: Storage, L: LogDevice> DurableStorage<S, L> {
    /// Open a store, recovering whatever the log proves was committed.
    ///
    /// Scans `log`, reconstructs the committed overlay, truncates the
    /// torn or uncommitted tail, and positions the writer after the last
    /// intact commit marker. Works identically for a fresh store (empty
    /// base, empty log), a cleanly closed one, and one killed mid-write.
    pub fn open(base: S, mut log: L) -> io::Result<(Self, RecoveryReport)> {
        let page_size = base.page_size();
        let outcome = recovery::scan(&log, page_size)?;
        log.truncate(outcome.valid_len)?;
        let num_pages = outcome.num_pages.unwrap_or(0).max(base.num_pages());
        let mut pages_recovered = 0u64;
        let mut overlay = HashMap::new();
        for (pid, data) in outcome.pages {
            if pid.0 < num_pages {
                overlay.insert(pid, data);
                pages_recovered += 1;
            }
        }
        let report = RecoveryReport {
            batches: outcome.batches,
            images: outcome.images,
            pages_recovered,
            discarded: outcome.discarded,
            tail: outcome.tail,
        };
        Ok((
            DurableStorage {
                base,
                inner: Mutex::new(Inner {
                    log,
                    pending: HashMap::new(),
                    overlay,
                    num_pages,
                    committed_pages: num_pages,
                    last_lsn: outcome.last_lsn,
                    poisoned: false,
                }),
            },
            report,
        ))
    }

    /// Make every write since the last commit durable: append one page
    /// image per dirty page plus a commit marker to the log, fsync it
    /// once (group commit), and promote the pages to the overlay tier.
    ///
    /// Returns the LSN of the commit marker (of the previous one when
    /// there was nothing to commit). LSNs restart at 1 after a
    /// checkpoint truncates the log.
    pub fn commit(&self) -> io::Result<Lsn> {
        let inner = &mut *self.inner.lock().unwrap();
        if inner.poisoned {
            return Err(io::Error::other(
                "durable storage poisoned by an earlier log failure; reopen to recover",
            ));
        }
        if inner.pending.is_empty() && inner.num_pages == inner.committed_pages {
            return Ok(inner.last_lsn);
        }
        // Deterministic image order (sorted by page id): the log bytes are
        // a pure function of the committed state, which the crash tests
        // lean on when they compare log generations.
        let mut pids: Vec<PageId> = inner.pending.keys().copied().collect();
        pids.sort_unstable();
        let mut batch = Vec::new();
        let mut lsn = inner.last_lsn;
        for &pid in &pids {
            lsn = lsn.next();
            encode_record(
                lsn,
                &WalRecord::PageImage {
                    pid,
                    // Encoding borrows the image; the map keeps ownership
                    // until the batch is durable.
                    data: inner.pending[&pid].clone(),
                },
                &mut batch,
            );
        }
        lsn = lsn.next();
        encode_record(
            lsn,
            &WalRecord::Commit {
                num_pages: inner.num_pages,
            },
            &mut batch,
        );
        let rollback_to = inner.log.len();
        let result = inner.log.append(&batch).and_then(|()| inner.log.sync());
        if let Err(e) = result {
            if inner.log.truncate(rollback_to).is_err() {
                inner.poisoned = true;
            }
            return Err(e);
        }
        for pid in pids {
            let data = inner.pending.remove(&pid).expect("staged page");
            inner.overlay.insert(pid, data);
        }
        inner.committed_pages = inner.num_pages;
        inner.last_lsn = lsn;
        Ok(lsn)
    }

    /// Commit, then fold the overlay into the base store and truncate the
    /// log: the store becomes self-contained and the log restarts empty
    /// (and LSNs restart at 1).
    ///
    /// Returns the LSN the checkpoint covered (the last commit marker of
    /// the truncated log generation). Safe against a crash at any point:
    /// until the log truncation the full overlay is still replayable, and
    /// replaying images over half-checkpointed base pages is idempotent.
    pub fn checkpoint(&mut self) -> io::Result<Lsn> {
        let covered = self.commit()?;
        let inner = self.inner.get_mut().unwrap();
        while self.base.num_pages() < inner.num_pages {
            self.base.grow()?;
        }
        let mut pids: Vec<PageId> = inner.overlay.keys().copied().collect();
        pids.sort_unstable();
        for &pid in &pids {
            self.base.write_page(pid, &inner.overlay[&pid])?;
        }
        self.base.sync()?;
        inner.log.truncate(0)?;
        inner.log.sync()?;
        inner.overlay.clear();
        inner.last_lsn = Lsn::ZERO;
        Ok(covered)
    }

    /// LSN of the last committed record in the current log generation.
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().unwrap().last_lsn
    }

    /// Pages dirtied since the last commit (the volatile tier).
    pub fn pending_pages(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Pages committed to the log but not yet checkpointed.
    pub fn overlay_pages(&self) -> usize {
        self.inner.lock().unwrap().overlay.len()
    }

    /// Bytes currently in the log device.
    pub fn log_len(&self) -> u64 {
        self.inner.lock().unwrap().log.len()
    }

    /// The base store (reads only — writing around the WAL would corrupt
    /// the tiers).
    pub fn base(&self) -> &S {
        &self.base
    }

    /// Tear down into the base store, discarding uncommitted pending
    /// writes (callers wanting them must [`DurableStorage::checkpoint`]
    /// first).
    pub fn into_base(self) -> S {
        self.base
    }
}

impl<S: Storage, L: LogDevice> Storage for DurableStorage<S, L> {
    fn page_size(&self) -> usize {
        self.base.page_size()
    }

    fn num_pages(&self) -> u32 {
        self.inner.lock().unwrap().num_pages
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        let inner = self.inner.lock().unwrap();
        if pid.0 >= inner.num_pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "read past end of storage: page {} of {}",
                    pid.0, inner.num_pages
                ),
            ));
        }
        if let Some(data) = inner.pending.get(&pid).or_else(|| inner.overlay.get(&pid)) {
            buf.copy_from_slice(data);
            return Ok(());
        }
        if pid.0 < self.base.num_pages() {
            self.base.read_page(pid, buf)
        } else {
            // Grown but never written: fresh pages read as zeroes, same
            // as every other Storage.
            buf.fill(0);
            Ok(())
        }
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if pid.0 >= inner.num_pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "write past end of storage: page {} of {}",
                    pid.0, inner.num_pages
                ),
            ));
        }
        match inner.pending.get_mut(&pid) {
            Some(slot) => slot.copy_from_slice(buf),
            None => {
                inner.pending.insert(pid, buf.to_vec().into_boxed_slice());
            }
        }
        Ok(())
    }

    fn grow(&mut self) -> io::Result<PageId> {
        let inner = self.inner.get_mut().unwrap();
        let pid = PageId(inner.num_pages);
        inner.num_pages += 1;
        Ok(pid)
    }

    fn sync(&self) -> io::Result<()> {
        self.commit().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::LogTail;
    use crate::wal::MemLog;
    use crate::MemStorage;

    const PS: usize = 64;

    fn fresh() -> (DurableStorage<MemStorage, MemLog>, MemLog) {
        let log = MemLog::new();
        let handle = log.clone();
        let (store, report) = DurableStorage::open(MemStorage::new(PS), log).unwrap();
        assert_eq!(report.batches, 0);
        (store, handle)
    }

    /// Reopen a store from a photographed log prefix over a fresh base.
    fn reopen(bytes: Vec<u8>) -> (DurableStorage<MemStorage, MemLog>, RecoveryReport) {
        DurableStorage::open(MemStorage::new(PS), MemLog::from_bytes(bytes)).unwrap()
    }

    fn read(s: &impl Storage, pid: u32) -> Vec<u8> {
        let mut buf = vec![0u8; PS];
        s.read_page(PageId(pid), &mut buf).unwrap();
        buf
    }

    #[test]
    fn reads_see_own_writes_through_all_tiers() {
        let (mut store, _) = fresh();
        let p0 = store.grow().unwrap();
        store.write_page(p0, &[1u8; PS]).unwrap();
        assert_eq!(read(&store, 0), vec![1u8; PS], "pending tier");
        store.commit().unwrap();
        assert_eq!(read(&store, 0), vec![1u8; PS], "overlay tier");
        store.checkpoint().unwrap();
        assert_eq!(read(&store, 0), vec![1u8; PS], "base tier");
        assert_eq!(store.overlay_pages(), 0);
        assert_eq!(store.log_len(), 0, "checkpoint truncates the log");
        assert_eq!(read(store.base(), 0), vec![1u8; PS]);
    }

    #[test]
    fn uncommitted_writes_do_not_survive_reopen() {
        let (mut store, log) = fresh();
        let p0 = store.grow().unwrap();
        store.write_page(p0, &[1u8; PS]).unwrap();
        store.commit().unwrap();
        store.write_page(p0, &[2u8; PS]).unwrap(); // never committed
        let (recovered, report) = reopen(log.bytes());
        assert_eq!(report.batches, 1);
        assert_eq!(read(&recovered, 0), vec![1u8; PS]);
    }

    #[test]
    fn commit_is_idempotent_when_clean() {
        let (mut store, log) = fresh();
        let p0 = store.grow().unwrap();
        store.write_page(p0, &[3u8; PS]).unwrap();
        let lsn = store.commit().unwrap();
        let len = log.len();
        assert_eq!(store.commit().unwrap(), lsn, "nothing new to commit");
        assert_eq!(log.len(), len, "no bytes appended");
    }

    #[test]
    fn sync_hook_commits() {
        let (mut store, _) = fresh();
        let p0 = store.grow().unwrap();
        store.write_page(p0, &[4u8; PS]).unwrap();
        assert_eq!(store.pending_pages(), 1);
        store.sync().unwrap();
        assert_eq!(store.pending_pages(), 0);
        assert_eq!(store.overlay_pages(), 1);
    }

    #[test]
    fn grow_is_logical_until_checkpoint() {
        let (mut store, _) = fresh();
        store.grow().unwrap();
        store.grow().unwrap();
        assert_eq!(store.num_pages(), 2);
        assert_eq!(store.base().num_pages(), 0);
        assert_eq!(read(&store, 1), vec![0u8; PS], "fresh pages are zeroed");
        store.commit().unwrap();
        store.checkpoint().unwrap();
        assert_eq!(store.base().num_pages(), 2);
    }

    #[test]
    fn grown_page_count_survives_reopen_without_images() {
        let (mut store, log) = fresh();
        store.grow().unwrap();
        store.grow().unwrap();
        store.commit().unwrap();
        let (recovered, _) = reopen(log.bytes());
        assert_eq!(recovered.num_pages(), 2);
        assert_eq!(read(&recovered, 1), vec![0u8; PS]);
    }

    #[test]
    fn torn_log_at_every_byte_recovers_a_committed_prefix() {
        // Three committed batches over two pages; cut the log at every
        // byte and check the recovered page state equals the state as of
        // the last surviving commit marker — the tentpole property.
        let (mut store, log) = fresh();
        let p0 = store.grow().unwrap();
        let p1 = store.grow().unwrap();
        store.write_page(p0, &[1u8; PS]).unwrap();
        store.commit().unwrap();
        let after1 = log.len();
        store.write_page(p1, &[2u8; PS]).unwrap();
        store.commit().unwrap();
        let after2 = log.len();
        store.write_page(p0, &[3u8; PS]).unwrap();
        store.write_page(p1, &[4u8; PS]).unwrap();
        store.commit().unwrap();
        let full = log.bytes();

        for cut in 0..=full.len() {
            let (recovered, report) = reopen(full[..cut].to_vec());
            let cut = cut as u64;
            let (e0, e1, pages) = if cut >= full.len() as u64 {
                (3u8, 4u8, 2)
            } else if cut >= after2 {
                (1, 2, 2)
            } else if cut >= after1 {
                (1, 0, 2)
            } else {
                (0, 0, 0)
            };
            assert_eq!(recovered.num_pages(), pages, "cut at {cut}");
            if pages == 2 {
                assert_eq!(read(&recovered, 0), vec![e0; PS], "cut at {cut}");
                assert_eq!(read(&recovered, 1), vec![e1; PS], "cut at {cut}");
            }
            if cut != 0 && cut != after1 && cut != after2 && cut != full.len() as u64 {
                assert_ne!(report.tail, LogTail::Clean, "cut at {cut} must look torn");
                assert!(report.discarded > 0, "cut at {cut}");
            }
        }
    }

    #[test]
    fn crash_mid_checkpoint_replays_over_half_written_base() {
        // Simulate the worst checkpoint crash: some overlay pages made it
        // into the base, the log was NOT yet truncated. Recovery over
        // that base must converge to the committed state.
        let (mut store, log) = fresh();
        let p0 = store.grow().unwrap();
        let p1 = store.grow().unwrap();
        store.write_page(p0, &[7u8; PS]).unwrap();
        store.write_page(p1, &[8u8; PS]).unwrap();
        store.commit().unwrap();

        // Hand-build the half-checkpointed base: p0 written, p1 not.
        let mut base = MemStorage::new(PS);
        base.grow().unwrap();
        base.grow().unwrap();
        base.write_page(p0, &[7u8; PS]).unwrap();

        let (recovered, _) = DurableStorage::open(base, MemLog::from_bytes(log.bytes())).unwrap();
        assert_eq!(read(&recovered, 0), vec![7u8; PS]);
        assert_eq!(read(&recovered, 1), vec![8u8; PS]);
    }

    #[test]
    fn lsns_are_monotonic_within_a_generation_and_restart_after_checkpoint() {
        let (mut store, _) = fresh();
        let p0 = store.grow().unwrap();
        store.write_page(p0, &[1u8; PS]).unwrap();
        let a = store.commit().unwrap();
        store.write_page(p0, &[2u8; PS]).unwrap();
        let b = store.commit().unwrap();
        assert!(b > a);
        store.checkpoint().unwrap();
        assert_eq!(store.last_lsn(), Lsn::ZERO);
        store.write_page(p0, &[3u8; PS]).unwrap();
        let c = store.commit().unwrap();
        assert_eq!(c, Lsn(2), "one image + one commit marker");
    }

    #[test]
    fn out_of_range_pages_error() {
        let (store, _) = fresh();
        let mut buf = vec![0u8; PS];
        assert!(store.read_page(PageId(0), &mut buf).is_err());
        assert!(store.write_page(PageId(0), &buf).is_err());
    }

    #[test]
    fn reopen_after_clean_checkpoint_uses_base_only() {
        let dir = std::env::temp_dir().join(format!("lsdb-durable-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("store.pages");
        let log_path = dir.join("store.wal");
        {
            let base = crate::FileStorage::create(&base_path, PS).unwrap();
            let log = crate::wal::FileLog::create(&log_path).unwrap();
            let (mut store, _) = DurableStorage::open(base, log).unwrap();
            let p0 = store.grow().unwrap();
            store.write_page(p0, &[9u8; PS]).unwrap();
            store.checkpoint().unwrap();
        }
        {
            let base = crate::FileStorage::open(&base_path, PS).unwrap();
            let log = crate::wal::FileLog::open(&log_path).unwrap();
            let (store, report) = DurableStorage::open(base, log).unwrap();
            assert_eq!(report.batches, 0, "log was truncated at checkpoint");
            assert_eq!(report.tail, LogTail::Clean);
            assert_eq!(read(&store, 0), vec![9u8; PS]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
