use crate::PageId;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::RwLock;

/// A page-granular disk. Implementations never cache: every read/write is a
/// (simulated) disk transfer. Caching and access counting live in the
/// [`crate::BufferPool`].
///
/// Reads and writes take `&self` so a pool shared between query threads can
/// reach storage without serializing on one big lock; implementations use
/// interior mutability ([`MemStorage`]) or positioned I/O ([`FileStorage`]).
/// Only [`Storage::grow`] is exclusive — new pages are minted by the
/// allocator, which already holds `&mut` access. The `Sync` bound is what
/// lets `&BufferPool` cross threads.
///
/// All transfers are fallible: a corrupt or truncated store file surfaces
/// as an [`io::Error`] that the pool propagates to its caller (via the
/// `try_*` API) instead of aborting the process.
pub trait Storage: Sync {
    /// Fixed page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages ever allocated.
    fn num_pages(&self) -> u32;

    /// Read page `pid` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()>;

    /// Write `buf` to page `pid`.
    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()>;

    /// Extend the disk by one zeroed page, returning its id.
    fn grow(&mut self) -> io::Result<PageId>;

    /// Force previously written pages to stable storage. A plain
    /// [`Storage::write_page`] only hands bytes to the OS cache; durability
    /// layers (commit, checkpoint) must call `sync` before declaring data
    /// safe. The default is a no-op, correct for backings with no volatile
    /// cache ([`MemStorage`]); [`FileStorage`] issues a real fsync.
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

fn out_of_range(op: &str, pid: PageId, num_pages: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{op} past end of storage: page {} of {num_pages}", pid.0),
    )
}

/// An in-memory "disk": a vector of pages. Deterministic and allocation-
/// cheap; the default backing for experiments. Its transfers never fail
/// (beyond out-of-range page ids).
pub struct MemStorage {
    page_size: usize,
    pages: RwLock<Vec<Box<[u8]>>>,
}

impl MemStorage {
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to hold a node header");
        MemStorage {
            page_size,
            pages: RwLock::new(Vec::new()),
        }
    }
}

impl Storage for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.pages.read().unwrap().len() as u32
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        let pages = self.pages.read().unwrap();
        let page = pages
            .get(pid.index())
            .ok_or_else(|| out_of_range("read", pid, pages.len() as u32))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        let mut pages = self.pages.write().unwrap();
        let n = pages.len() as u32;
        let page = pages
            .get_mut(pid.index())
            .ok_or_else(|| out_of_range("write", pid, n))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn grow(&mut self) -> io::Result<PageId> {
        let pages = self.pages.get_mut().unwrap();
        let pid = PageId(pages.len() as u32);
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(pid)
    }
}

/// A file-backed disk. Page `i` lives at byte offset `i * page_size`.
/// Reads and writes use positioned I/O (`pread`/`pwrite`), so concurrent
/// readers never fight over a shared file cursor.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    page_size: usize,
    num_pages: u32,
}

impl FileStorage {
    /// Create (truncating) a storage file at `path`.
    pub fn create(path: &Path, page_size: usize) -> io::Result<Self> {
        assert!(page_size >= 64);
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage {
            file,
            page_size,
            num_pages: 0,
        })
    }

    /// Open an existing storage file. A file whose length is not a whole
    /// number of pages is truncated or corrupt and reports
    /// [`io::ErrorKind::InvalidData`] rather than opening a store that
    /// would fail later.
    pub fn open(path: &Path, page_size: usize) -> io::Result<Self> {
        let file = File::options().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store file {} is truncated or corrupt: length {len} is not a \
                     multiple of the page size {page_size}",
                    path.display()
                ),
            ));
        }
        Ok(FileStorage {
            file,
            page_size,
            num_pages: (len / page_size as u64) as u32,
        })
    }

    fn offset(&self, pid: PageId) -> u64 {
        pid.0 as u64 * self.page_size as u64
    }
}

impl Storage for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        if pid.0 >= self.num_pages {
            return Err(out_of_range("read", pid, self.num_pages));
        }
        self.file.read_exact_at(buf, self.offset(pid))
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        if pid.0 >= self.num_pages {
            return Err(out_of_range("write", pid, self.num_pages));
        }
        self.file.write_all_at(buf, self.offset(pid))
    }

    fn grow(&mut self) -> io::Result<PageId> {
        let pid = PageId(self.num_pages);
        self.file
            .set_len((self.num_pages as u64 + 1) * self.page_size as u64)?;
        self.num_pages += 1;
        Ok(pid)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// Boxed storages forward every operation, so pools and durability layers
/// can be built over `Box<dyn Storage + Send>` when the backing is chosen
/// at runtime (memory for experiments, a file for a served store).
impl<S: Storage + ?Sized> Storage for Box<S> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }

    fn num_pages(&self) -> u32 {
        (**self).num_pages()
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_page(pid, buf)
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        (**self).write_page(pid, buf)
    }

    fn grow(&mut self) -> io::Result<PageId> {
        (**self).grow()
    }

    fn sync(&self) -> io::Result<()> {
        (**self).sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_roundtrip() {
        let mut s = MemStorage::new(128);
        let p0 = s.grow().unwrap();
        let p1 = s.grow().unwrap();
        assert_eq!(s.num_pages(), 2);
        let mut buf = vec![7u8; 128];
        s.write_page(p1, &buf).unwrap();
        buf.fill(0);
        s.read_page(p1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        s.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "fresh pages are zeroed");
    }

    #[test]
    fn mem_storage_shared_reads() {
        let mut s = MemStorage::new(128);
        let p0 = s.grow().unwrap();
        s.write_page(p0, &[9u8; 128]).unwrap();
        let s = &s;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut buf = vec![0u8; 128];
                    s.read_page(p0, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == 9));
                });
            }
        });
    }

    #[test]
    fn mem_storage_out_of_range_is_an_error() {
        let s = MemStorage::new(128);
        let mut buf = vec![0u8; 128];
        let e = s.read_page(PageId(0), &mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn file_storage_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let mut s = FileStorage::create(&path, 256).unwrap();
            let p0 = s.grow().unwrap();
            let _p1 = s.grow().unwrap();
            s.write_page(p0, &vec![42u8; 256]).unwrap();
        }
        {
            let s = FileStorage::open(&path, 256).unwrap();
            assert_eq!(s.num_pages(), 2);
            let mut buf = vec![0u8; 256];
            s.read_page(PageId(0), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 42));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_storage_read_past_end_is_an_error() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        let s = FileStorage::create(&path, 256).unwrap();
        let mut buf = vec![0u8; 256];
        let e = s.read_page(PageId(0), &mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_store_file_reports_invalid_data() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let mut s = FileStorage::create(&path, 256).unwrap();
            let p = s.grow().unwrap();
            s.write_page(p, &[1u8; 256]).unwrap();
        }
        // Chop the file mid-page: open() must refuse with a usable error.
        let f = File::options().write(true).open(&path).unwrap();
        f.set_len(100).unwrap();
        drop(f);
        let e = FileStorage::open(&path, 256).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("not a multiple"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
