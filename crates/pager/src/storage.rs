use crate::PageId;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::RwLock;

/// A page-granular disk. Implementations never cache: every read/write is a
/// (simulated) disk transfer. Caching and access counting live in the
/// [`crate::BufferPool`].
///
/// Reads and writes take `&self` so a pool shared between query threads can
/// reach storage without serializing on one big lock; implementations use
/// interior mutability ([`MemStorage`]) or positioned I/O ([`FileStorage`]).
/// Only [`Storage::grow`] is exclusive — new pages are minted by the
/// allocator, which already holds `&mut` access. The `Sync` bound is what
/// lets `&BufferPool` cross threads.
///
/// All transfers are fallible: a corrupt or truncated store file surfaces
/// as an [`io::Error`] that the pool propagates to its caller (via the
/// `try_*` API) instead of aborting the process.
pub trait Storage: Sync {
    /// Fixed page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages ever allocated.
    fn num_pages(&self) -> u32;

    /// Read page `pid` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()>;

    /// Write `buf` to page `pid`.
    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()>;

    /// Extend the disk by one zeroed page, returning its id.
    fn grow(&mut self) -> io::Result<PageId>;

    /// Force previously written pages to stable storage. A plain
    /// [`Storage::write_page`] only hands bytes to the OS cache; durability
    /// layers (commit, checkpoint) must call `sync` before declaring data
    /// safe. The default is a no-op, correct for backings with no volatile
    /// cache ([`MemStorage`]); [`FileStorage`] issues a real fsync.
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

fn out_of_range(op: &str, pid: PageId, num_pages: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{op} past end of storage: page {} of {num_pages}", pid.0),
    )
}

/// An in-memory "disk": a vector of pages. Deterministic and allocation-
/// cheap; the default backing for experiments. Its transfers never fail
/// (beyond out-of-range page ids).
pub struct MemStorage {
    page_size: usize,
    pages: RwLock<Vec<Box<[u8]>>>,
}

impl MemStorage {
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to hold a node header");
        MemStorage {
            page_size,
            pages: RwLock::new(Vec::new()),
        }
    }
}

impl Storage for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.pages.read().unwrap().len() as u32
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        let pages = self.pages.read().unwrap();
        let page = pages
            .get(pid.index())
            .ok_or_else(|| out_of_range("read", pid, pages.len() as u32))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        let mut pages = self.pages.write().unwrap();
        let n = pages.len() as u32;
        let page = pages
            .get_mut(pid.index())
            .ok_or_else(|| out_of_range("write", pid, n))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn grow(&mut self) -> io::Result<PageId> {
        let pages = self.pages.get_mut().unwrap();
        let pid = PageId(pages.len() as u32);
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(pid)
    }
}

/// Magic leading the superblock of every [`FileStorage`] file.
pub const STORE_MAGIC: &[u8; 8] = b"LSDBPAGE";

/// On-disk format version stamped into (and required from) the
/// superblock. Bumped to 2 together with the structure-of-arrays node
/// page layout: pages written by an older build are laid out differently
/// byte-for-byte, so opening them with current code would silently decode
/// garbage — version negotiation turns that into a structured error at
/// open time.
pub const STORE_VERSION: u16 = 2;

/// A file-backed disk. The first page of the file is a reserved
/// superblock — magic, format version, page size — and data page `i`
/// lives at byte offset `(i + 1) * page_size`. Reads and writes use
/// positioned I/O (`pread`/`pwrite`), so concurrent readers never fight
/// over a shared file cursor.
///
/// [`FileStorage::open`] refuses files it cannot faithfully interpret
/// with [`io::ErrorKind::InvalidData`]: missing or foreign magic
/// (including pre-superblock v1 stores, which began directly with page
/// data), an unknown format version, or a page size differing from the
/// one the store was created with.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    page_size: usize,
    num_pages: u32,
}

/// Bytes of the superblock that carry data; the rest of page 0 is zero.
const SUPERBLOCK_LEN: usize = 16;

fn superblock(page_size: usize) -> [u8; SUPERBLOCK_LEN] {
    let mut sb = [0u8; SUPERBLOCK_LEN];
    sb[..8].copy_from_slice(STORE_MAGIC);
    sb[8..10].copy_from_slice(&STORE_VERSION.to_le_bytes());
    sb[12..16].copy_from_slice(&(page_size as u32).to_le_bytes());
    sb
}

impl FileStorage {
    /// Create (truncating) a storage file at `path`, writing a fresh
    /// superblock.
    pub fn create(path: &Path, page_size: usize) -> io::Result<Self> {
        assert!(page_size >= 64);
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut page0 = vec![0u8; page_size];
        page0[..SUPERBLOCK_LEN].copy_from_slice(&superblock(page_size));
        file.write_all_at(&page0, 0)?;
        Ok(FileStorage {
            file,
            page_size,
            num_pages: 0,
        })
    }

    /// Open an existing storage file, validating its superblock. A file
    /// that is truncated mid-page, lacks the magic (v1 stores predate the
    /// superblock entirely), carries an unknown format version, or was
    /// created with a different page size reports
    /// [`io::ErrorKind::InvalidData`] rather than opening a store that
    /// would decode garbage later.
    pub fn open(path: &Path, page_size: usize) -> io::Result<Self> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let file = File::options().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(invalid(format!(
                "store file {} is truncated or corrupt: length {len} is not a \
                 multiple of the page size {page_size}",
                path.display()
            )));
        }
        if len < page_size as u64 {
            return Err(invalid(format!(
                "store file {} has no superblock (empty file)",
                path.display()
            )));
        }
        let mut sb = [0u8; SUPERBLOCK_LEN];
        file.read_exact_at(&mut sb, 0)?;
        if &sb[..8] != STORE_MAGIC {
            return Err(invalid(format!(
                "store file {} has no {:?} superblock: either not a page store \
                 or a pre-superblock format-v1 store, which this version does \
                 not read (v1 pages use the retired interleaved node layout)",
                path.display(),
                String::from_utf8_lossy(STORE_MAGIC),
            )));
        }
        let version = u16::from_le_bytes([sb[8], sb[9]]);
        if version != STORE_VERSION {
            return Err(invalid(format!(
                "store file {} has page-format version {version}, but this \
                 build reads only version {STORE_VERSION}",
                path.display()
            )));
        }
        let stored_ps = u32::from_le_bytes([sb[12], sb[13], sb[14], sb[15]]) as usize;
        if stored_ps != page_size {
            return Err(invalid(format!(
                "store file {} was created with page size {stored_ps}, \
                 opened with {page_size}",
                path.display()
            )));
        }
        Ok(FileStorage {
            file,
            page_size,
            num_pages: (len / page_size as u64 - 1) as u32,
        })
    }

    fn offset(&self, pid: PageId) -> u64 {
        // Data pages start one page in, past the superblock.
        (pid.0 as u64 + 1) * self.page_size as u64
    }
}

impl Storage for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        if pid.0 >= self.num_pages {
            return Err(out_of_range("read", pid, self.num_pages));
        }
        self.file.read_exact_at(buf, self.offset(pid))
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        if pid.0 >= self.num_pages {
            return Err(out_of_range("write", pid, self.num_pages));
        }
        self.file.write_all_at(buf, self.offset(pid))
    }

    fn grow(&mut self) -> io::Result<PageId> {
        let pid = PageId(self.num_pages);
        self.file
            .set_len((self.num_pages as u64 + 2) * self.page_size as u64)?;
        self.num_pages += 1;
        Ok(pid)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// Boxed storages forward every operation, so pools and durability layers
/// can be built over `Box<dyn Storage + Send>` when the backing is chosen
/// at runtime (memory for experiments, a file for a served store).
impl<S: Storage + ?Sized> Storage for Box<S> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }

    fn num_pages(&self) -> u32 {
        (**self).num_pages()
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_page(pid, buf)
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        (**self).write_page(pid, buf)
    }

    fn grow(&mut self) -> io::Result<PageId> {
        (**self).grow()
    }

    fn sync(&self) -> io::Result<()> {
        (**self).sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_roundtrip() {
        let mut s = MemStorage::new(128);
        let p0 = s.grow().unwrap();
        let p1 = s.grow().unwrap();
        assert_eq!(s.num_pages(), 2);
        let mut buf = vec![7u8; 128];
        s.write_page(p1, &buf).unwrap();
        buf.fill(0);
        s.read_page(p1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        s.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "fresh pages are zeroed");
    }

    #[test]
    fn mem_storage_shared_reads() {
        let mut s = MemStorage::new(128);
        let p0 = s.grow().unwrap();
        s.write_page(p0, &[9u8; 128]).unwrap();
        let s = &s;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut buf = vec![0u8; 128];
                    s.read_page(p0, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == 9));
                });
            }
        });
    }

    #[test]
    fn mem_storage_out_of_range_is_an_error() {
        let s = MemStorage::new(128);
        let mut buf = vec![0u8; 128];
        let e = s.read_page(PageId(0), &mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn file_storage_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let mut s = FileStorage::create(&path, 256).unwrap();
            let p0 = s.grow().unwrap();
            let _p1 = s.grow().unwrap();
            s.write_page(p0, &vec![42u8; 256]).unwrap();
        }
        {
            let s = FileStorage::open(&path, 256).unwrap();
            assert_eq!(s.num_pages(), 2);
            let mut buf = vec![0u8; 256];
            s.read_page(PageId(0), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 42));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_storage_read_past_end_is_an_error() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        let s = FileStorage::create(&path, 256).unwrap();
        let mut buf = vec![0u8; 256];
        let e = s.read_page(PageId(0), &mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_store_file_reports_invalid_data() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let mut s = FileStorage::create(&path, 256).unwrap();
            let p = s.grow().unwrap();
            s.write_page(p, &[1u8; 256]).unwrap();
        }
        // Chop the file mid-page: open() must refuse with a usable error.
        let f = File::options().write(true).open(&path).unwrap();
        f.set_len(100).unwrap();
        drop(f);
        let e = FileStorage::open(&path, 256).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("not a multiple"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_headerless_store_is_rejected_with_structured_error() {
        // A format-v1 store had no superblock: page 0 was data. Opening
        // one with v2 code must fail cleanly at open, not decode garbage.
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        std::fs::write(&path, vec![0u8; 512]).unwrap(); // two v1 "pages"
        let e = FileStorage::open(&path, 256).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("superblock"), "{e}");
        assert!(e.to_string().contains("v1"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_format_version_is_rejected() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let mut s = FileStorage::create(&path, 256).unwrap();
            s.grow().unwrap();
        }
        // Stamp a future version into the superblock.
        let f = File::options().write(true).open(&path).unwrap();
        f.write_all_at(&99u16.to_le_bytes(), 8).unwrap();
        drop(f);
        let e = FileStorage::open(&path, 256).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("version 99"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_size_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join(format!("lsdb-pager-test6-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let mut s = FileStorage::create(&path, 256).unwrap();
            s.grow().unwrap();
            s.grow().unwrap();
            s.grow().unwrap();
        }
        // 1024 divides the 4-page file length evenly, so only the
        // superblock's recorded page size catches the mismatch.
        let e = FileStorage::open(&path, 1024).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("created with page size 256"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
