//! A process-global buffer budget shared by many [`crate::BufferPool`]s.
//!
//! One server process hosting many maps owns many pools (one index pool
//! plus one segment-table pool per map). Each pool still has its own
//! frames, shards, and LRU state, but the *bytes* those frames hold are
//! accounted against one shared [`BufferBudget`]: the build path charges
//! unconditionally (a build must be able to proceed, so the budget can be
//! transiently overcommitted), an external enforcer brings the total back
//! under the line by physically shedding frame bytes from cold pools
//! ([`crate::BufferPool::shed`]), and the query path re-admits shed pages
//! only when the budget has headroom ([`BufferBudget::try_admit`]).
//!
//! Crucially the budget governs *physical* residency only — whether a
//! frame currently holds its page bytes. *Logical* residency (the
//! per-shard resident map and LRU metadata) is untouched by shedding, and
//! logical residency is the only thing the query path's charge decision
//! consults. Per-query paper counters are therefore byte-identical
//! whether or not the budget ever sheds a page, under any eviction
//! pattern — the property the cross-map isolation suite pins down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared byte-budget accountant. Cheap to clone via [`Arc`]; every
/// counter is a relaxed atomic (the budget bounds memory, it does not
/// order memory).
#[derive(Debug)]
pub struct BufferBudget {
    /// Bytes the attached pools may hold in total. `u64::MAX` means
    /// unlimited (the default every pool starts with).
    total: AtomicU64,
    /// Bytes currently held in pool frames across all attached pools.
    used: AtomicU64,
    /// Read-path re-admissions granted ([`BufferBudget::try_admit`]).
    admissions: AtomicU64,
    /// Read-path re-admissions denied for lack of headroom.
    denials: AtomicU64,
}

impl BufferBudget {
    /// A budget of `total_bytes` shared by every pool it is attached to.
    pub fn new(total_bytes: u64) -> Arc<BufferBudget> {
        Arc::new(BufferBudget {
            total: AtomicU64::new(total_bytes),
            used: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
            denials: AtomicU64::new(0),
        })
    }

    /// An unlimited budget: charges always fit, nothing is ever denied.
    pub fn unlimited() -> Arc<BufferBudget> {
        BufferBudget::new(u64::MAX)
    }

    /// The byte limit (`u64::MAX` = unlimited).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    pub fn is_unlimited(&self) -> bool {
        self.total() == u64::MAX
    }

    /// Bytes currently held by attached pools.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// How far the pools currently overshoot the budget (0 when under).
    /// The enforcement loop sheds at least this many bytes.
    pub fn over_budget(&self) -> u64 {
        self.used().saturating_sub(self.total())
    }

    pub fn admissions(&self) -> u64 {
        self.admissions.load(Ordering::Relaxed)
    }

    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Unconditionally account `bytes` as held. Build paths use this:
    /// a build must be able to materialize the frames it mutates, so the
    /// budget may transiently overcommit; enforcement sheds later.
    ///
    /// Public so other residency-shaped consumers (the server's reply
    /// cache charges its entry bytes here, next to page residency) can
    /// share the same process-wide line.
    pub fn charge(&self, bytes: u64) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Return `bytes` to the budget (frame bytes dropped, pool dropped,
    /// or a cached reply evicted).
    pub fn release(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "budget release of bytes never charged");
    }

    /// Admission control for the read path: charge `bytes` only if they
    /// fit under the limit right now. Returns whether they were charged.
    pub fn try_admit(&self, bytes: u64) -> bool {
        let total = self.total();
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used + bytes > total {
                self.denials.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.used.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admissions.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => used = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_and_overshoot() {
        let b = BufferBudget::new(1000);
        assert_eq!(b.over_budget(), 0);
        b.charge(600);
        b.charge(600);
        assert_eq!(b.used(), 1200);
        assert_eq!(b.over_budget(), 200);
        b.release(600);
        assert_eq!(b.over_budget(), 0);
    }

    #[test]
    fn try_admit_respects_the_line() {
        let b = BufferBudget::new(100);
        assert!(b.try_admit(60));
        assert!(!b.try_admit(60), "would overshoot");
        assert!(b.try_admit(40), "exact fit admitted");
        assert_eq!(b.used(), 100);
        assert_eq!(b.admissions(), 2);
        assert_eq!(b.denials(), 1);
    }

    #[test]
    fn unlimited_never_denies() {
        let b = BufferBudget::unlimited();
        assert!(b.is_unlimited());
        b.charge(u64::MAX / 4);
        assert!(b.try_admit(1 << 40));
        assert_eq!(b.denials(), 0);
        assert_eq!(b.over_budget(), 0);
    }

    #[test]
    fn concurrent_admissions_never_overshoot() {
        let b = BufferBudget::new(64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..1000 {
                        if b.try_admit(1) {
                            assert!(b.used() <= 64);
                            b.release(1);
                        }
                    }
                });
            }
        });
        assert_eq!(b.used(), 0);
    }
}
