//! Fault injection for crash-recovery tests: wrappers that make a
//! [`Storage`] or a [`LogDevice`] die on schedule.
//!
//! Not gated behind `#[cfg(test)]` on purpose — downstream crates
//! (lsdb-core, lsdb-bench) drive their crash-recovery property tests
//! through these wrappers, killing a store after N operations and then
//! reopening whatever bytes made it out. A fired fault leaves the
//! wrapper **dead**: every later mutating operation fails too, exactly
//! like a process that lost its disk, so a buggy caller cannot quietly
//! keep writing past its own crash.

use crate::wal::LogDevice;
use crate::{PageId, Storage};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn crashed(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// How an injected storage fault manifests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultMode {
    /// The operation fails outright; no bytes reach the inner device.
    Fail,
    /// A torn write: only the first `n` bytes of the page (or log append)
    /// reach the inner device before the failure.
    Short(usize),
}

/// A [`Storage`] that injects a fault on the Nth page write.
///
/// Reads pass through even after death (a recovery test inspects the
/// surviving bytes through the same handle); writes, grows, and syncs
/// fail once the fault has fired.
pub struct FaultyStorage<S: Storage> {
    inner: S,
    /// Writes remaining before the fault fires.
    budget: AtomicU64,
    mode: FaultMode,
    dead: AtomicBool,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wrap `inner`; the `budget`-th call to `write_page` (0-based:
    /// `budget` writes succeed first) fires a fault of `mode`.
    pub fn new(inner: S, budget: u64, mode: FaultMode) -> Self {
        FaultyStorage {
            inner,
            budget: AtomicU64::new(budget),
            mode,
            dead: AtomicBool::new(false),
        }
    }

    /// Whether the fault has fired.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Unwrap (to inspect the surviving bytes after a "crash").
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn read_page(&self, pid: PageId, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_page(pid, buf)
    }

    fn write_page(&self, pid: PageId, buf: &[u8]) -> io::Result<()> {
        if self.is_dead() {
            return Err(crashed("storage is dead"));
        }
        if self
            .budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_err()
        {
            self.dead.store(true, Ordering::SeqCst);
            if let FaultMode::Short(n) = self.mode {
                // A torn page: the prefix lands, the rest keeps whatever
                // bytes the page held before.
                let n = n.min(buf.len());
                let mut torn = vec![0u8; buf.len()];
                self.inner.read_page(pid, &mut torn)?;
                torn[..n].copy_from_slice(&buf[..n]);
                self.inner.write_page(pid, &torn)?;
            }
            return Err(crashed("page write"));
        }
        self.inner.write_page(pid, buf)
    }

    fn grow(&mut self) -> io::Result<PageId> {
        if self.is_dead() {
            return Err(crashed("storage is dead"));
        }
        self.inner.grow()
    }

    fn sync(&self) -> io::Result<()> {
        if self.is_dead() {
            return Err(crashed("storage is dead"));
        }
        self.inner.sync()
    }
}

/// A [`LogDevice`] that dies after a byte budget: the append that would
/// cross the budget lands only its allowed prefix (a torn log write) and
/// fails, as does everything after it.
pub struct FaultyLog<L: LogDevice> {
    inner: L,
    /// Bytes that may still be appended before the log tears.
    budget: u64,
    dead: bool,
}

impl<L: LogDevice> FaultyLog<L> {
    pub fn new(inner: L, budget: u64) -> Self {
        FaultyLog {
            inner,
            budget,
            dead: false,
        }
    }

    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: LogDevice> LogDevice for FaultyLog<L> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(crashed("log is dead"));
        }
        if (bytes.len() as u64) <= self.budget {
            self.budget -= bytes.len() as u64;
            return self.inner.append(bytes);
        }
        let torn = self.budget as usize;
        self.budget = 0;
        self.dead = true;
        self.inner.append(&bytes[..torn])?;
        Err(crashed("log append torn"))
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(crashed("log is dead"));
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if self.dead {
            return Err(crashed("log is dead"));
        }
        self.inner.truncate(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemLog;
    use crate::{DurableStorage, MemStorage};

    const PS: usize = 64;

    #[test]
    fn faulty_storage_fires_on_schedule() {
        let mut s = FaultyStorage::new(MemStorage::new(PS), 2, FaultMode::Fail);
        let p = s.grow().unwrap();
        s.write_page(p, &[1u8; PS]).unwrap();
        s.write_page(p, &[2u8; PS]).unwrap();
        assert!(!s.is_dead());
        assert!(s.write_page(p, &[3u8; PS]).is_err());
        assert!(s.is_dead());
        assert!(s.sync().is_err());
        let mut buf = vec![0u8; PS];
        s.read_page(p, &mut buf).unwrap();
        assert_eq!(buf, vec![2u8; PS], "reads survive for inspection");
    }

    #[test]
    fn short_write_tears_a_page() {
        let mut s = FaultyStorage::new(MemStorage::new(PS), 1, FaultMode::Short(10));
        let p = s.grow().unwrap();
        s.write_page(p, &[5u8; PS]).unwrap();
        assert!(s.write_page(p, &[6u8; PS]).is_err());
        let mut buf = vec![0u8; PS];
        s.read_page(p, &mut buf).unwrap();
        assert_eq!(&buf[..10], &[6u8; 10], "prefix landed");
        assert_eq!(&buf[10..], &vec![5u8; PS - 10][..], "tail is the old page");
    }

    #[test]
    fn torn_commit_through_faulty_log_recovers_previous_state() {
        // Let one commit through, then tear the log mid-batch on the
        // second. The failed commit must surface as an error, and a
        // reopen from the surviving bytes must serve the first commit's
        // state — the acknowledged prefix.
        let shared = MemLog::new();
        let first_commit_len;
        {
            let log = FaultyLog::new(shared.clone(), u64::MAX);
            let (mut store, _) = DurableStorage::open(MemStorage::new(PS), log).unwrap();
            let p0 = store.grow().unwrap();
            store.write_page(p0, &[1u8; PS]).unwrap();
            store.commit().unwrap();
            first_commit_len = shared.len();
        }
        for budget in 0..=60u64 {
            // Replay: first commit intact, second torn after `budget`
            // extra bytes. The inner MemLog is shared with `handle` so
            // the genuinely-torn bytes can be photographed afterwards.
            let gen2 = MemLog::from_bytes(shared.bytes());
            let handle = gen2.clone();
            let log = FaultyLog::new(gen2, budget);
            let (mut store, _) = DurableStorage::open(MemStorage::new(PS), log).unwrap();
            let p1 = store.grow().unwrap();
            store.write_page(p1, &[2u8; PS]).unwrap();
            let err = store.commit();
            // The second batch (a page image + commit marker) is larger
            // than 60 bytes, so every budget in range tears it.
            assert!(err.is_err(), "budget {budget}");

            let survivors = handle.bytes();
            assert_eq!(
                survivors.len() as u64,
                first_commit_len + budget,
                "budget {budget}: torn tail landed"
            );
            let (recovered, _) =
                DurableStorage::open(MemStorage::new(PS), MemLog::from_bytes(survivors)).unwrap();
            assert_eq!(recovered.num_pages(), 1, "budget {budget}");
            let mut buf = vec![0u8; PS];
            recovered.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf, vec![1u8; PS], "budget {budget}");
        }
    }

    #[test]
    fn checkpoint_failure_leaves_store_recoverable() {
        // The base dies mid-checkpoint; the log still holds everything,
        // so reopening over the half-written base recovers fully.
        let shared = MemLog::new();
        let base = FaultyStorage::new(MemStorage::new(PS), 1, FaultMode::Short(7));
        let (mut store, _) = DurableStorage::open(base, shared.clone()).unwrap();
        let p0 = store.grow().unwrap();
        let p1 = store.grow().unwrap();
        store.write_page(p0, &[3u8; PS]).unwrap();
        store.write_page(p1, &[4u8; PS]).unwrap();
        store.commit().unwrap();
        assert!(store.checkpoint().is_err(), "base write faults");

        // "Crash": rebuild from the surviving base bytes + the log.
        let base = store.into_base().into_inner();
        let (recovered, _) =
            DurableStorage::open(base, MemLog::from_bytes(shared.bytes())).unwrap();
        let mut buf = vec![0u8; PS];
        recovered.read_page(p0, &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; PS]);
        recovered.read_page(p1, &mut buf).unwrap();
        assert_eq!(buf, vec![4u8; PS]);
    }
}
