//! Property tests for the uniform grid: oracle equivalence over random
//! segment soups, random grid resolutions, and random delete subsets.

use lsdb_core::{brute, IndexConfig, PolygonalMap, SegId, SpatialIndex};
use lsdb_geom::{Point, Rect, Segment};
use lsdb_grid::UniformGrid;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0..16384i32, 0..16384i32).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point())
        .prop_filter("non-degenerate", |(a, b)| a != b)
        .prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_map(max: usize) -> impl Strategy<Value = PolygonalMap> {
    prop::collection::vec(arb_segment(), 1..max)
        .prop_map(|segs| PolygonalMap::new("prop", segs))
}

/// Powers of two that divide the 16384-unit world.
fn arb_g() -> impl Strategy<Value = i32> {
    prop::sample::select(vec![2i32, 4, 8, 16, 32, 64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queries_match_oracle(
        map in arb_map(80),
        g in arb_g(),
        probes in prop::collection::vec(arb_point(), 1..8),
        windows in prop::collection::vec((arb_point(), arb_point()), 1..4),
    ) {
        let cfg = IndexConfig { page_size: 256, pool_pages: 8 };
        let mut t = UniformGrid::build(&map, cfg, g);
        for &p in &probes {
            prop_assert_eq!(
                brute::sorted(t.find_incident(p)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            prop_assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for &(a, b) in &windows {
            let w = Rect::bounding(a, b);
            prop_assert_eq!(brute::sorted(t.window(w)), brute::window(&map, w));
        }
    }

    #[test]
    fn deletes_then_queries(
        map in arb_map(60),
        g in arb_g(),
        delete_mask in prop::collection::vec(any::<bool>(), 60),
    ) {
        let cfg = IndexConfig { page_size: 128, pool_pages: 8 };
        let mut t = UniformGrid::build(&map, cfg, g);
        let mut kept = Vec::new();
        for i in 0..map.len() {
            if delete_mask[i] {
                prop_assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        prop_assert_eq!(t.len(), kept.len());
        let w = Rect::new(0, 0, 16383, 16383);
        prop_assert_eq!(brute::sorted(t.window(w)), kept);
    }
}
