//! Uniform grid over line segments — the paper's §2 regular-decomposition
//! baseline ("we can either decompose the space into blocks of uniform size
//! (e.g., the uniform grid of Franklin) or adapt the decomposition to the
//! distribution of the data"). It is used by the ablation benchmarks to
//! show *why* the adaptive PMR quadtree is preferred for non-uniform road
//! data: "the uniform grid is ideal for uniformly distributed data, while
//! quadtree-based approaches are suited for arbitrarily distributed data."
//!
//! Disk layout: the world is cut into `g × g` equal cells; each cell's
//! q-edges (segment ids) live in a chain of pages `[count: u16, next: u32,
//! ids ...]`. A per-cell first/last-page directory is kept in memory (it is
//! tiny and would occupy a handful of pages on disk).
//!
//! Queries run on the shared (`&self`) read path: cell chains are walked
//! through [`lsdb_pager::BufferPool::read_page`] and all counting is
//! charged to the caller's [`QueryCtx`].

use lsdb_core::scan;
use lsdb_core::traverse::{DfsSink, NnSink, NodeAccess};
use lsdb_core::{
    traverse, IndexConfig, LocId, PolygonalMap, QueryCtx, QueryStats, SegId, SegmentTable,
    SpatialIndex,
};
use lsdb_geom::{Dist2, Point, Rect, Segment, WORLD_SIZE};
use lsdb_pager::{MemPool, PageId, PoolCtx};

const HDR: usize = 8; // count u16 at 0, next page u32 at 4 (u32::MAX = none)

/// A disk-resident uniform grid over line segments.
pub struct UniformGrid {
    pool: MemPool,
    table: SegmentTable,
    /// Cells per side.
    g: i32,
    /// First and current-tail page of each cell's chain (row-major), once
    /// the cell holds at least one id.
    chains: Vec<Option<(PageId, PageId)>>,
    ids_per_page: usize,
    len: usize,
    /// Build-path bucket computations (query-path ones go to the ctx).
    bucket_comps: u64,
}

impl UniformGrid {
    /// `g` cells per side (the world side must be divisible by `g`).
    pub fn new(table: SegmentTable, cfg: IndexConfig, g: i32) -> Self {
        assert!(g >= 1 && WORLD_SIZE % g == 0, "grid must divide the world");
        let pool = MemPool::in_memory(cfg.page_size, cfg.pool_pages);
        let ids_per_page = (cfg.page_size - HDR) / 4;
        assert!(ids_per_page >= 1);
        UniformGrid {
            pool,
            table,
            g,
            chains: vec![None; (g * g) as usize],
            ids_per_page,
            len: 0,
            bucket_comps: 0,
        }
    }

    pub fn build(map: &PolygonalMap, cfg: IndexConfig, g: i32) -> Self {
        let table = SegmentTable::from_map(map, cfg.page_size, cfg.pool_pages);
        let mut t = UniformGrid::new(table, cfg, g);
        for id in 0..map.segments.len() {
            t.insert(SegId(id as u32));
        }
        t
    }

    pub fn cells_per_side(&self) -> i32 {
        self.g
    }

    fn cell_side(&self) -> i32 {
        WORLD_SIZE / self.g
    }

    fn cell_index(&self, cx: i32, cy: i32) -> usize {
        (cy * self.g + cx) as usize
    }

    /// Closed integer rect of a cell.
    fn cell_rect(&self, cx: i32, cy: i32) -> Rect {
        let s = self.cell_side();
        Rect::new(cx * s, cy * s, cx * s + s - 1, cy * s + s - 1)
    }

    /// Cell rect extended by one unit up/right so geometry on the upper
    /// boundary also registers (same convention as the PMR blocks).
    fn cell_closed_rect(&self, cx: i32, cy: i32) -> Rect {
        let s = self.cell_side();
        Rect::new(
            cx * s,
            cy * s,
            (cx * s + s).min(WORLD_SIZE - 1),
            (cy * s + s).min(WORLD_SIZE - 1),
        )
    }

    fn cell_of_point(&self, p: Point) -> (i32, i32) {
        let s = self.cell_side();
        (
            (p.x / s).clamp(0, self.g - 1),
            (p.y / s).clamp(0, self.g - 1),
        )
    }

    /// Cells whose closed region touches the segment (build path; bucket
    /// computations go to the build counter).
    fn cells_touching(&mut self, seg: &Segment) -> Vec<(i32, i32)> {
        let b = seg.bbox();
        let s = self.cell_side();
        // The extended (closed) region of cell c covers [c*s, c*s + s], so
        // a coordinate v can touch cells (v-s)/s ..= v/s.
        let cx0 = ((b.min.x - s) / s).clamp(0, self.g - 1);
        let cx1 = (b.max.x / s).clamp(0, self.g - 1);
        let cy0 = ((b.min.y - s) / s).clamp(0, self.g - 1);
        let cy1 = (b.max.y / s).clamp(0, self.g - 1);
        let mut out = Vec::new();
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                self.bucket_comps += 1;
                if self.cell_closed_rect(cx, cy).intersects_segment(seg) {
                    out.push((cx, cy));
                }
            }
        }
        out
    }

    /// Walk a cell's page chain on the shared read path, streaming each
    /// stored id into `f` (no intermediate collection). Pages are walked
    /// in place via the pinned-borrow read and the shared id-scan kernel.
    fn for_each_cell_id(&self, cx: i32, cy: i32, index: &mut PoolCtx, f: &mut dyn FnMut(SegId)) {
        let Some((first, _)) = self.chains[self.cell_index(cx, cy)] else {
            return;
        };
        let mut page = Some(first);
        while let Some(pid) = page {
            let buf = self.pool.read_page_pinned(pid, index);
            let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
            let next = u32::from_le_bytes(buf[4..8].try_into().unwrap());
            scan::scan_ids(&buf[HDR..HDR + count * 4], |id| f(SegId(id)));
            page = (next != u32::MAX).then_some(PageId(next));
        }
    }

    /// Walk a cell's page chain on the build path (through the LRU).
    fn cell_ids(&mut self, cx: i32, cy: i32) -> Vec<SegId> {
        let mut out = Vec::new();
        let Some((first, _)) = self.chains[self.cell_index(cx, cy)] else {
            return out;
        };
        let mut page = Some(first);
        while let Some(pid) = page {
            page = self.pool.with_page(pid, |buf| {
                let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
                for i in 0..count {
                    let at = HDR + i * 4;
                    out.push(SegId(u32::from_le_bytes(
                        buf[at..at + 4].try_into().unwrap(),
                    )));
                }
                let next = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                (next != u32::MAX).then_some(PageId(next))
            });
        }
        out
    }

    fn append_to_cell(&mut self, cx: i32, cy: i32, id: SegId) {
        let idx = self.cell_index(cx, cy);
        let per = self.ids_per_page;
        match self.chains[idx] {
            None => {
                let pid = self.pool.allocate();
                self.pool.with_page_mut(pid, |buf| {
                    buf[0..2].copy_from_slice(&1u16.to_le_bytes());
                    buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
                    buf[HDR..HDR + 4].copy_from_slice(&id.0.to_le_bytes());
                });
                self.chains[idx] = Some((pid, pid));
            }
            Some((first, tail)) => {
                let appended = self.pool.with_page_mut(tail, |buf| {
                    let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
                    if count < per {
                        let at = HDR + count * 4;
                        buf[at..at + 4].copy_from_slice(&id.0.to_le_bytes());
                        buf[0..2].copy_from_slice(&((count + 1) as u16).to_le_bytes());
                        true
                    } else {
                        false
                    }
                });
                if !appended {
                    let pid = self.pool.allocate();
                    self.pool.with_page_mut(pid, |buf| {
                        buf[0..2].copy_from_slice(&1u16.to_le_bytes());
                        buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
                        buf[HDR..HDR + 4].copy_from_slice(&id.0.to_le_bytes());
                    });
                    self.pool.with_page_mut(tail, |buf| {
                        buf[4..8].copy_from_slice(&pid.0.to_le_bytes());
                    });
                    self.chains[idx] = Some((first, pid));
                }
            }
        }
    }

    /// Rewrite a cell's chain without `id`; returns whether it was present.
    fn remove_from_cell(&mut self, cx: i32, cy: i32, id: SegId) -> bool {
        let ids = self.cell_ids(cx, cy);
        if !ids.contains(&id) {
            return false;
        }
        let idx = self.cell_index(cx, cy);
        // Free the whole chain and rebuild it.
        if let Some((first, _)) = self.chains[idx] {
            let mut page = Some(first);
            while let Some(pid) = page {
                let next = self.pool.with_page(pid, |buf| {
                    let next = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                    (next != u32::MAX).then_some(PageId(next))
                });
                self.pool.free(pid);
                page = next;
            }
        }
        self.chains[idx] = None;
        for other in ids {
            if other != id {
                self.append_to_cell(cx, cy, other);
            }
        }
        true
    }
}

/// Expansion policy plugged into the shared engines. A "node" is a cell
/// coordinate; like the PMR quadtree, point queries resolve entirely in
/// the seed (the cell of `p` is arithmetic — one bucket computation, no
/// disk), while window and nearest-neighbor traversals enumerate cells and
/// charge one bucket computation per cell examined.
impl NodeAccess for UniformGrid {
    type Node = (i32, i32);

    fn table(&self) -> &SegmentTable {
        &self.table
    }

    fn seed_point(
        &self,
        p: Point,
        probe_only: bool,
        ctx: &mut QueryCtx,
        sink: &mut DfsSink<(i32, i32)>,
    ) {
        // Like the PMR quadtree, the cell containing p holds every segment
        // incident at p (grazing segments register via the closed region).
        let (cx, cy) = self.cell_of_point(p);
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        *bbox_comps += 1;
        sink.arrive(LocId(self.cell_index(cx, cy) as u64));
        if !probe_only {
            self.for_each_cell_id(cx, cy, index, &mut |id| sink.entry(id));
        }
    }

    fn expand_point(
        &self,
        _node: (i32, i32),
        _p: Point,
        _probe_only: bool,
        _ctx: &mut QueryCtx,
        _sink: &mut DfsSink<(i32, i32)>,
    ) {
        unreachable!("grid point queries resolve in the seed — no nodes are emitted");
    }

    fn seed_window(&self, w: Rect, _ctx: &mut QueryCtx, sink: &mut DfsSink<(i32, i32)>) {
        let s = self.cell_side();
        let cx0 = (w.min.x / s).clamp(0, self.g - 1);
        let cx1 = (w.max.x / s).clamp(0, self.g - 1);
        let cy0 = (w.min.y / s).clamp(0, self.g - 1);
        let cy1 = (w.max.y / s).clamp(0, self.g - 1);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                sink.node((cx, cy));
            }
        }
    }

    fn expand_window(
        &self,
        (cx, cy): (i32, i32),
        w: Rect,
        ctx: &mut QueryCtx,
        sink: &mut DfsSink<(i32, i32)>,
    ) {
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        // Charged before the overlap test: examining the cell is the
        // bucket computation, whether or not the window overlaps it.
        *bbox_comps += 1;
        if !w.intersects(&self.cell_rect(cx, cy)) {
            return;
        }
        self.for_each_cell_id(cx, cy, index, &mut |id| sink.entry(id));
    }

    fn seed_nearest(&self, p: Point, _ctx: &mut QueryCtx, sink: &mut NnSink<(i32, i32)>) {
        // Every cell enters the queue with its closed-region distance as
        // the lower bound; cells are only *opened* (chain walked, bucket
        // computation charged) when they pop before the k-th result, so
        // the scan stays local without the legacy ring bookkeeping.
        for cy in 0..self.g {
            for cx in 0..self.g {
                let d = Dist2::from_int(self.cell_closed_rect(cx, cy).dist2_point(p));
                sink.node((cx, cy), d);
            }
        }
    }

    fn expand_nearest(
        &self,
        (cx, cy): (i32, i32),
        p: Point,
        ctx: &mut QueryCtx,
        sink: &mut NnSink<(i32, i32)>,
    ) {
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        *bbox_comps += 1;
        // A segment is stored in every cell whose closed region it
        // touches — in particular the cell containing its nearest point to
        // p — so the cell distance is an admissible candidate bound.
        let d = Dist2::from_int(self.cell_closed_rect(cx, cy).dist2_point(p));
        self.for_each_cell_id(cx, cy, index, &mut |id| sink.candidate(id, d));
    }
}

impl SpatialIndex for UniformGrid {
    fn name(&self) -> &'static str {
        "uniform grid"
    }

    fn seg_table(&self) -> &SegmentTable {
        &self.table
    }

    fn seg_table_mut(&mut self) -> &mut SegmentTable {
        &mut self.table
    }

    fn insert(&mut self, id: SegId) {
        let seg = self.table.fetch(id);
        for (cx, cy) in self.cells_touching(&seg) {
            self.append_to_cell(cx, cy, id);
        }
        self.len += 1;
    }

    fn remove(&mut self, id: SegId) -> bool {
        let seg = self.table.fetch(id);
        let mut removed = false;
        for (cx, cy) in self.cells_touching(&seg) {
            removed |= self.remove_from_cell(cx, cy, id);
        }
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn len(&self) -> usize {
        self.len
    }

    fn find_incident(&self, p: Point, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::find_incident(self, p, ctx)
    }

    fn find_incident_visit(&self, p: Point, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::incident_visit(self, p, ctx, f);
    }

    fn probe_point(&self, p: Point, ctx: &mut QueryCtx) -> LocId {
        traverse::probe_point(self, p, ctx)
    }

    fn nearest(&self, p: Point, ctx: &mut QueryCtx) -> Option<SegId> {
        if self.len == 0 {
            return None;
        }
        traverse::best_first_nearest(self, p, ctx)
    }

    fn nearest_k(&self, p: Point, k: usize, ctx: &mut QueryCtx) -> Vec<SegId> {
        if self.len == 0 {
            return Vec::new();
        }
        traverse::best_first_nearest_k(self, p, k, ctx)
    }

    fn window(&self, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::window(self, w, ctx)
    }

    fn window_visit(&self, w: Rect, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::window_visit(self, w, ctx, f);
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            disk: self.pool.stats(),
            seg_comps: 0,
            bbox_comps: self.bucket_comps,
            seg_disk: self.table.disk_stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pool.reset_stats();
        self.table.reset_stats();
        self.bucket_comps = 0;
    }

    fn size_bytes(&self) -> u64 {
        self.pool.size_bytes()
    }

    fn clear_cache(&mut self) {
        self.pool.clear();
    }

    fn attach_budget(&mut self, budget: &std::sync::Arc<lsdb_pager::BufferBudget>) {
        self.pool.attach_budget(budget);
        self.table.attach_budget(budget);
    }

    fn shed_cache(&self, target_bytes: u64) -> std::io::Result<u64> {
        let freed = self.pool.shed(target_bytes)?;
        Ok(freed + self.table.shed_cache(target_bytes.saturating_sub(freed))?)
    }

    fn cache_stats(&self) -> lsdb_pager::CacheStats {
        let mut s = self.pool.cache_stats();
        s.add(self.table.cache_stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::brute;

    fn cfg() -> IndexConfig {
        IndexConfig {
            page_size: 128,
            pool_pages: 8,
            ..Default::default()
        }
    }

    fn cross_map() -> PolygonalMap {
        // Segments spread over the world, including cell-boundary hugs.
        let q = WORLD_SIZE / 4;
        PolygonalMap::new(
            "cross",
            vec![
                Segment::new(Point::new(10, 10), Point::new(q + 10, q + 10)),
                Segment::new(Point::new(q, q), Point::new(3 * q, q)),
                Segment::new(Point::new(3 * q, q), Point::new(3 * q, 3 * q)),
                Segment::new(Point::new(0, 2 * q), Point::new(WORLD_SIZE - 1, 2 * q)),
                Segment::new(Point::new(2 * q, 0), Point::new(2 * q, WORLD_SIZE - 1)),
                Segment::new(
                    Point::new(5, WORLD_SIZE - 5),
                    Point::new(500, WORLD_SIZE - 500),
                ),
            ],
        )
    }

    #[test]
    fn build_and_counts() {
        let map = cross_map();
        let t = UniformGrid::build(&map, cfg(), 8);
        assert_eq!(t.len(), map.len());
        assert!(t.size_bytes() > 0);
    }

    #[test]
    fn incident_matches_brute_force() {
        let map = cross_map();
        let t = UniformGrid::build(&map, cfg(), 8);
        let mut ctx = QueryCtx::new();
        let q = WORLD_SIZE / 4;
        for p in [
            Point::new(10, 10),
            Point::new(q, q),
            Point::new(3 * q, q),
            Point::new(2 * q, 0),
            Point::new(123, 456),
        ] {
            assert_eq!(
                brute::sorted(t.find_incident(p, &mut ctx)),
                brute::incident(&map, p),
                "at {p:?}"
            );
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let map = cross_map();
        for g in [4, 16, 64] {
            let t = UniformGrid::build(&map, cfg(), g);
            let mut ctx = QueryCtx::new();
            for x in (0..WORLD_SIZE).step_by(1711) {
                for y in (0..WORLD_SIZE).step_by(2049) {
                    let p = Point::new(x, y);
                    let got = t.nearest(p, &mut ctx).expect("non-empty");
                    let want = brute::nearest(&map, p).unwrap();
                    assert_eq!(
                        map.segments[got.index()].dist2_point(p),
                        want.1,
                        "g={g} at {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_matches_brute_force() {
        let map = cross_map();
        let t = UniformGrid::build(&map, cfg(), 16);
        let mut ctx = QueryCtx::new();
        let q = WORLD_SIZE / 4;
        for w in [
            Rect::new(0, 0, WORLD_SIZE - 1, WORLD_SIZE - 1),
            Rect::new(q - 5, q - 5, q + 5, q + 5),
            Rect::new(0, 2 * q, 10, 2 * q),
            Rect::new(900, 900, 1000, 1000),
        ] {
            assert_eq!(
                brute::sorted(t.window(w, &mut ctx)),
                brute::window(&map, w),
                "{w:?}"
            );
            // The streaming variant visits exactly the same set.
            let mut visited = Vec::new();
            t.window_visit(w, &mut ctx, &mut |id| visited.push(id));
            assert_eq!(brute::sorted(visited), brute::window(&map, w));
        }
    }

    #[test]
    fn probe_point_is_stable_and_cheap() {
        let map = cross_map();
        let t = UniformGrid::build(&map, cfg(), 8);
        let mut ctx = QueryCtx::new();
        let p = Point::new(123, 456);
        let a = t.probe_point(p, &mut ctx);
        let b = t.probe_point(p, &mut ctx);
        assert_eq!(a, b, "same point, same cell");
        assert_ne!(a, LocId::NONE);
        assert_eq!(ctx.seg_comps, 0, "probe fetches no segment records");
        assert_eq!(ctx.bbox_comps, 2);
        // A point in a different cell maps to a different bucket.
        let far = t.probe_point(Point::new(WORLD_SIZE - 10, WORLD_SIZE - 10), &mut ctx);
        assert_ne!(a, far);
    }

    #[test]
    fn remove_works() {
        let map = cross_map();
        let mut t = UniformGrid::build(&map, cfg(), 8);
        assert!(t.remove(SegId(3)));
        assert!(!t.remove(SegId(3)));
        assert_eq!(t.len(), map.len() - 1);
        let mut ctx = QueryCtx::new();
        let w = Rect::new(0, 0, WORLD_SIZE - 1, WORLD_SIZE - 1);
        let got = brute::sorted(t.window(w, &mut ctx));
        let want: Vec<SegId> = brute::window(&map, w)
            .into_iter()
            .filter(|id| id.0 != 3)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn long_segment_spans_many_cells_pages_chain() {
        // One segment crossing the full world with a tiny page size forces
        // multi-page chains and many cells.
        let map = PolygonalMap::new(
            "long",
            (0..60)
                .map(|i| {
                    Segment::new(
                        Point::new(0, i * 7 + 1),
                        Point::new(WORLD_SIZE - 1, i * 7 + 1),
                    )
                })
                .collect(),
        );
        let t = UniformGrid::build(&map, cfg(), 4);
        let mut ctx = QueryCtx::new();
        let w = Rect::new(100, 0, 110, 430);
        assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
    }

    #[test]
    #[should_panic(expected = "grid must divide the world")]
    fn invalid_grid_dimension_panics() {
        let table = lsdb_core::SegmentTable::new(128, 4);
        let _ = UniformGrid::new(table, cfg(), 3);
    }

    #[test]
    fn empty_grid_queries() {
        let map = PolygonalMap::new("empty", vec![]);
        let t = UniformGrid::build(&map, cfg(), 8);
        let mut ctx = QueryCtx::new();
        assert_eq!(t.nearest(Point::new(5, 5), &mut ctx), None);
        assert!(t.find_incident(Point::new(5, 5), &mut ctx).is_empty());
        assert!(t.window(Rect::new(0, 0, 10, 10), &mut ctx).is_empty());
    }

    #[test]
    fn parallel_queries_share_the_grid() {
        let map = cross_map();
        let t = UniformGrid::build(&map, cfg(), 16);
        let t = &t;
        let map = &map;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut ctx = QueryCtx::new();
                        let w = Rect::new(0, 0, WORLD_SIZE / 2, WORLD_SIZE / 2);
                        let got = brute::sorted(t.window(w, &mut ctx));
                        assert_eq!(got, brute::window(map, w));
                        ctx.stats()
                    })
                })
                .collect();
            let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for s in &stats {
                assert_eq!(*s, stats[0], "identical queries charge identical counters");
            }
        });
    }
}
