//! Property-style tests for the PMR quadtree: Z-order partition
//! invariants, q-edge completeness, oracle equivalence, and delete/merge
//! round-trips, across random segment soups and random thresholds. Cases
//! are drawn from fixed-seed [`lsdb_rng::StdRng`] streams.

use lsdb_core::{brute, IndexConfig, PolygonalMap, QueryCtx, SegId, SpatialIndex};
use lsdb_geom::morton::Block;
use lsdb_geom::{Point, Rect, Segment};
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use lsdb_rng::StdRng;

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0..16384i32), rng.gen_range(0..16384i32))
}

fn rand_segment(rng: &mut StdRng) -> Segment {
    loop {
        let a = rand_point(rng);
        let b = rand_point(rng);
        if a != b {
            return Segment::new(a, b);
        }
    }
}

fn rand_map(rng: &mut StdRng, max: usize) -> PolygonalMap {
    let n = rng.gen_range(1..max);
    PolygonalMap::new("prop", (0..n).map(|_| rand_segment(rng)).collect())
}

fn cfg(threshold: usize) -> PmrConfig {
    PmrConfig {
        threshold,
        max_depth: 10,
        index: IndexConfig {
            page_size: 256,
            pool_pages: 8,
            ..Default::default()
        },
    }
}

#[test]
fn queries_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0x9314_0001);
    for _ in 0..32 {
        let map = rand_map(&mut rng, 100);
        let threshold = rng.gen_range(1usize..8);
        let mut t = PmrQuadtree::build(&map, cfg(threshold));
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        for _ in 0..rng.gen_range(1..10) {
            let p = rand_point(&mut rng);
            assert_eq!(
                brute::sorted(t.find_incident(p, &mut ctx)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p, &mut ctx).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for _ in 0..rng.gen_range(1..5) {
            let w = Rect::bounding(rand_point(&mut rng), rand_point(&mut rng));
            assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
        }
    }
}

#[test]
fn incident_at_real_endpoints() {
    // Endpoint queries at every actual vertex — the exact use case of
    // paper queries 1 and 2.
    let mut rng = StdRng::seed_from_u64(0x9314_0002);
    for _ in 0..32 {
        let map = rand_map(&mut rng, 80);
        let t = PmrQuadtree::build(&map, cfg(4));
        let mut ctx = QueryCtx::new();
        for s in map.segments.iter().take(25) {
            for p in [s.a, s.b] {
                assert_eq!(
                    brute::sorted(t.find_incident(p, &mut ctx)),
                    brute::incident(&map, p)
                );
            }
        }
    }
}

#[test]
fn delete_all_merges_to_root() {
    let mut rng = StdRng::seed_from_u64(0x9314_0003);
    for _ in 0..32 {
        let map = rand_map(&mut rng, 70);
        let threshold = rng.gen_range(1usize..6);
        let mut t = PmrQuadtree::build(&map, cfg(threshold));
        for i in 0..map.len() {
            assert!(t.remove(SegId(i as u32)));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.leaf_blocks(), vec![Block::ROOT]);
        t.check_invariants();
    }
}

#[test]
fn partial_delete_keeps_invariants() {
    let mut rng = StdRng::seed_from_u64(0x9314_0004);
    for _ in 0..32 {
        let map = rand_map(&mut rng, 90);
        let mut t = PmrQuadtree::build(&map, cfg(3));
        let mut kept = Vec::new();
        for i in 0..map.len() {
            if rng.gen_range(0u32..2) == 0 {
                assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        assert_eq!(t.check_invariants(), kept);
        let mut ctx = QueryCtx::new();
        let w = Rect::new(0, 0, 16383, 16383);
        assert_eq!(brute::sorted(t.window(w, &mut ctx)), kept);
    }
}

#[test]
fn two_stage_generator_points_hit_leaf_blocks() {
    // The leaf-block list feeds the paper's 2-stage point generator;
    // its blocks must tile the world, so every generated point lies in
    // exactly one block.
    let mut rng = StdRng::seed_from_u64(0x9314_0005);
    for _ in 0..32 {
        let map = rand_map(&mut rng, 60);
        let mut t = PmrQuadtree::build(&map, cfg(2));
        let blocks: Vec<Rect> = t.leaf_blocks().iter().map(|b| b.rect()).collect();
        let mut gen = lsdb_core::pointgen::TwoStageGen::new(blocks.clone(), 5);
        for _ in 0..50 {
            let p = gen.next_point();
            let containing = blocks.iter().filter(|b| b.contains_point(p)).count();
            assert_eq!(containing, 1);
        }
    }
}
