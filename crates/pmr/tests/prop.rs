//! Property tests for the PMR quadtree: Z-order partition invariants,
//! q-edge completeness, oracle equivalence, and delete/merge round-trips,
//! across random segment soups and random thresholds.

use lsdb_core::{brute, IndexConfig, PolygonalMap, SegId, SpatialIndex};
use lsdb_geom::morton::Block;
use lsdb_geom::{Point, Rect, Segment};
use lsdb_pmr::{PmrConfig, PmrQuadtree};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0..16384i32, 0..16384i32).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point())
        .prop_filter("non-degenerate", |(a, b)| a != b)
        .prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_map(max: usize) -> impl Strategy<Value = PolygonalMap> {
    prop::collection::vec(arb_segment(), 1..max)
        .prop_map(|segs| PolygonalMap::new("prop", segs))
}

fn cfg(threshold: usize) -> PmrConfig {
    PmrConfig {
        threshold,
        max_depth: 10,
        index: IndexConfig { page_size: 256, pool_pages: 8 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queries_match_oracle(
        map in arb_map(100),
        threshold in 1usize..8,
        probes in prop::collection::vec(arb_point(), 1..10),
        windows in prop::collection::vec((arb_point(), arb_point()), 1..5),
    ) {
        let mut t = PmrQuadtree::build(&map, cfg(threshold));
        t.check_invariants();
        for &p in &probes {
            prop_assert_eq!(
                brute::sorted(t.find_incident(p)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            prop_assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for &(a, b) in &windows {
            let w = Rect::bounding(a, b);
            prop_assert_eq!(brute::sorted(t.window(w)), brute::window(&map, w));
        }
    }

    #[test]
    fn incident_at_real_endpoints(map in arb_map(80)) {
        // Endpoint queries at every actual vertex — the exact use case of
        // paper queries 1 and 2.
        let mut t = PmrQuadtree::build(&map, cfg(4));
        for s in map.segments.iter().take(25) {
            for p in [s.a, s.b] {
                prop_assert_eq!(
                    brute::sorted(t.find_incident(p)),
                    brute::incident(&map, p)
                );
            }
        }
    }

    #[test]
    fn delete_all_merges_to_root(map in arb_map(70), threshold in 1usize..6) {
        let mut t = PmrQuadtree::build(&map, cfg(threshold));
        for i in 0..map.len() {
            prop_assert!(t.remove(SegId(i as u32)));
        }
        prop_assert_eq!(t.len(), 0);
        prop_assert_eq!(t.leaf_blocks(), vec![Block::ROOT]);
        t.check_invariants();
    }

    #[test]
    fn partial_delete_keeps_invariants(
        map in arb_map(90),
        delete_mask in prop::collection::vec(any::<bool>(), 90),
    ) {
        let mut t = PmrQuadtree::build(&map, cfg(3));
        let mut kept = Vec::new();
        for i in 0..map.len() {
            if delete_mask[i] {
                prop_assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        prop_assert_eq!(t.check_invariants(), kept.clone());
        let w = Rect::new(0, 0, 16383, 16383);
        prop_assert_eq!(brute::sorted(t.window(w)), kept);
    }

    #[test]
    fn two_stage_generator_points_hit_leaf_blocks(map in arb_map(60)) {
        // The leaf-block list feeds the paper's 2-stage point generator;
        // its blocks must tile the world, so every generated point lies in
        // exactly one block.
        let mut t = PmrQuadtree::build(&map, cfg(2));
        let blocks: Vec<Rect> = t.leaf_blocks().iter().map(|b| b.rect()).collect();
        let mut gen = lsdb_core::pointgen::TwoStageGen::new(blocks.clone(), 5);
        for _ in 0..50 {
            let p = gen.next_point();
            let containing = blocks.iter().filter(|b| b.contains_point(p)).count();
            prop_assert_eq!(containing, 1);
        }
    }
}
