//! The PMR quadtree, implemented as a linear quadtree over a disk B-tree —
//! the paper's third structure, hosted in its experiments by the QUILT GIS.
//!
//! Following §3-§4 of the paper:
//!
//! * The quadtree is **edge-based** with a probabilistic splitting rule: a
//!   line segment is inserted into every block it intersects; if an
//!   insertion pushes a block's occupancy past the *splitting threshold*
//!   (default 4 — "it is rare for more than 4 roads to intersect"), the
//!   block is split **once, and only once**, into four equal blocks.
//! * The decomposition is bounded by a maximum depth of 14 (a 16K × 16K
//!   world).
//! * Only leaf blocks are stored. Each q-edge is an 8-byte 2-tuple
//!   *(locational code, segment id)*: the code is the bit-interleaved
//!   (Morton) address of the block plus its depth, and the id points into
//!   the disk-resident segment table. Tuples live in a B-tree sorted by
//!   code, so one bucket's q-edges are physically contiguous — "the line
//!   segments associated with a particular PMR quadtree node should be
//!   stored on the same page".
//! * Deletion removes the segment from every block it occupies and merges
//!   a block with its brothers when their combined occupancy falls below
//!   the threshold, reapplying the merge recursively.
//!
//! **Deviation (documented in DESIGN.md):** a pure (L, O) B-tree cannot
//! represent an *empty* leaf block, making the shape of the decomposition
//! ambiguous after splits with empty children. We keep one sentinel tuple
//! (`segment id = u32::MAX`) per empty leaf so the B-tree is an exact
//! encoding of the decomposition; the overhead is a few hundred tuples per
//! 50k-segment county.

use lsdb_btree::{BTree, MemBTree};
use lsdb_core::traverse::{DfsSink, NnSink, NodeAccess};
use lsdb_core::{
    traverse, IndexConfig, LocId, PolygonalMap, PoolCtx, QueryCtx, QueryStats, SegId, SegmentTable,
    SpatialIndex,
};
use lsdb_geom::morton::Block;
use lsdb_geom::{Dist2, Point, Rect, Segment, MAX_DEPTH};
use lsdb_pager::MemPool;
use std::cmp::Reverse;
use std::collections::HashSet;
use std::ops::ControlFlow;

/// Sentinel "segment id" marking an empty leaf block.
const EMPTY: u32 = u32::MAX;

/// Configuration for a PMR quadtree.
#[derive(Clone, Copy, Debug)]
pub struct PmrConfig {
    /// Splitting threshold (the paper's experiments use 4).
    pub threshold: usize,
    /// Maximum decomposition depth (the paper uses 14).
    pub max_depth: u8,
    /// Page/pool configuration of the underlying B-tree.
    pub index: IndexConfig,
}

impl Default for PmrConfig {
    fn default() -> Self {
        PmrConfig {
            threshold: 4,
            max_depth: MAX_DEPTH,
            index: IndexConfig::default(),
        }
    }
}

/// Pack a q-edge 2-tuple into a B-tree key: Morton code (28 bits) |
/// depth (4 bits) | payload (32 bits). Sorting by this key is sorting by
/// locational code, then by segment id within a block.
fn key(block: Block, payload: u32) -> u64 {
    ((block.code() as u64) << 36) | ((block.depth as u64) << 32) | payload as u64
}

fn block_of_key(k: u64) -> Block {
    Block::from_code((k >> 36) as u32, ((k >> 32) & 0xF) as u8)
}

fn payload_of_key(k: u64) -> u32 {
    k as u32
}

/// A disk-resident PMR quadtree over line segments.
pub struct PmrQuadtree {
    btree: MemBTree,
    table: SegmentTable,
    threshold: usize,
    max_depth: u8,
    len: usize,
    bucket_comps: u64,
}

impl PmrQuadtree {
    pub fn new(table: SegmentTable, cfg: PmrConfig) -> Self {
        assert!(cfg.threshold >= 1);
        assert!(cfg.max_depth <= MAX_DEPTH);
        let mut btree = BTree::new(MemPool::in_memory(
            cfg.index.page_size,
            cfg.index.pool_pages,
        ));
        btree.insert(key(Block::ROOT, EMPTY));
        PmrQuadtree {
            btree,
            table,
            threshold: cfg.threshold,
            max_depth: cfg.max_depth,
            len: 0,
            bucket_comps: 0,
        }
    }

    /// Build over a whole map by inserting its segments in order.
    pub fn build(map: &PolygonalMap, cfg: PmrConfig) -> Self {
        let table = SegmentTable::from_map(map, cfg.index.page_size, cfg.index.pool_pages);
        let mut t = PmrQuadtree::new(table, cfg);
        for id in 0..map.segments.len() {
            t.insert(SegId(id as u32));
        }
        t
    }

    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Height of the underlying B-tree (the paper observes 4 at county
    /// scale).
    pub fn btree_height(&self) -> u32 {
        self.btree.height()
    }

    /// All leaf blocks of the current decomposition, in Z-order. Feeds the
    /// paper's 2-stage query-point generator ("we first generated the PMR
    /// quadtree block at random using a uniform distribution based on the
    /// total number of blocks — not their size").
    pub fn leaf_blocks(&mut self) -> Vec<Block> {
        let mut blocks = Vec::new();
        let mut last: Option<Block> = None;
        let _ = self.btree.scan_range(0, u64::MAX, &mut |k| {
            let b = block_of_key(k);
            if last != Some(b) {
                blocks.push(b);
                last = Some(b);
            }
            ControlFlow::Continue(())
        });
        blocks
    }

    /// Average occupancy over non-empty leaf blocks (the paper's §7 note:
    /// "the average number of line segments in a bucket with a splitting
    /// threshold value of x is usually .5x").
    pub fn avg_bucket_occupancy(&mut self) -> f64 {
        let mut blocks = 0u64;
        let mut total = 0u64;
        let mut last: Option<Block> = None;
        let _ = self.btree.scan_range(0, u64::MAX, &mut |k| {
            if payload_of_key(k) != EMPTY {
                let b = block_of_key(k);
                if last != Some(b) {
                    blocks += 1;
                    last = Some(b);
                }
                total += 1;
            }
            ControlFlow::Continue(())
        });
        if blocks == 0 {
            0.0
        } else {
            total as f64 / blocks as f64
        }
    }

    /// Is `b` a leaf of the current decomposition? Every leaf holds at
    /// least one tuple (a sentinel when empty), so this is one B-tree
    /// probe.
    fn is_leaf(&mut self, b: Block) -> bool {
        self.btree
            .first_in_range(key(b, 0), key(b, u32::MAX))
            .is_some()
    }

    // ------------------------------------------------------------------
    // Shared-read query helpers: the same probes as the build-path ones
    // above, but over the B-tree's `&self` read path, charging disk
    // accesses to the query's context.
    // ------------------------------------------------------------------

    /// Query-path twin of [`PmrQuadtree::block_entries`], streaming: runs
    /// `f` over `b`'s segment ids (sentinel stripped) without collecting.
    /// Returns `false` iff `b` is not a leaf of the decomposition (an
    /// empty key range — every leaf holds at least one tuple).
    fn scan_block_ctx(&self, b: Block, index: &mut PoolCtx, f: &mut dyn FnMut(SegId)) -> bool {
        let mut any = false;
        let _ = self
            .btree
            .scan_range_ctx(key(b, 0), key(b, u32::MAX), index, &mut |k| {
                any = true;
                if payload_of_key(k) != EMPTY {
                    f(SegId(payload_of_key(k)));
                }
                ControlFlow::Continue(())
            });
        any
    }

    /// Query-path twin of [`PmrQuadtree::leaf_containing`].
    fn leaf_containing_ctx(&self, p: Point, index: &mut PoolCtx) -> Block {
        let probe = key(Block::containing(p, self.max_depth), u32::MAX);
        let k = self
            .btree
            .last_in_range_ctx(0, probe, index)
            .expect("decomposition covers the world");
        let b = block_of_key(k);
        debug_assert!(
            b.rect().contains_point(p),
            "predecessor block must contain p"
        );
        b
    }

    /// One-descent combined probe: `None` if `b` is not a leaf of the
    /// current decomposition, otherwise its segment ids (sentinel
    /// stripped). Every leaf holds at least one tuple, so an empty range
    /// means "internal block".
    fn block_entries(&mut self, b: Block) -> Option<Vec<SegId>> {
        let keys = self.btree.collect_range(key(b, 0), key(b, u32::MAX));
        if keys.is_empty() {
            return None;
        }
        Some(
            keys.into_iter()
                .filter(|&k| payload_of_key(k) != EMPTY)
                .map(|k| SegId(payload_of_key(k)))
                .collect(),
        )
    }

    /// Distinct segment ids stored in leaf `b` (no sentinel).
    fn block_segments(&mut self, b: Block) -> Vec<SegId> {
        self.btree
            .collect_range(key(b, 0), key(b, u32::MAX))
            .into_iter()
            .filter(|&k| payload_of_key(k) != EMPTY)
            .map(|k| SegId(payload_of_key(k)))
            .collect()
    }

    /// All leaf blocks whose (closed) region touches `seg` (with their
    /// current segment lists). Seeded from the leaf containing the
    /// segment's first endpoint so the B-tree probes stay in one key
    /// neighbourhood (segments are short relative to the map).
    fn leaves_touching_segment(&mut self, seg: &Segment) -> Vec<(Block, Vec<SegId>)> {
        let (leaf, segs, others) = self.seed_blocks(seg.a);
        let mut out = Vec::new();
        debug_assert!(
            leaf.region_touches_segment(seg),
            "seed leaf holds an endpoint"
        );
        self.bucket_comps += 1;
        out.push((leaf, segs));
        let mut stack: Vec<Block> = others;
        while let Some(b) = stack.pop() {
            if !b.region_touches_segment(seg) {
                continue;
            }
            match self.block_entries(b) {
                Some(segs) => {
                    self.bucket_comps += 1;
                    out.push((b, segs));
                }
                None => stack.extend_from_slice(&b.children()),
            }
        }
        out
    }

    /// The unique leaf block containing point `p`, located with a single
    /// predecessor search on the Morton code — the linear-quadtree trick
    /// that makes the paper's PMR point queries cost one bucket
    /// computation.
    fn leaf_containing(&mut self, p: Point) -> Block {
        let probe = key(Block::containing(p, self.max_depth), u32::MAX);
        let k = self
            .btree
            .last_in_range(0, probe)
            .expect("decomposition covers the world");
        let b = block_of_key(k);
        debug_assert!(
            b.rect().contains_point(p),
            "predecessor block must contain p"
        );
        b
    }

    /// Decompose the world around `p`: the leaf containing `p` (with its
    /// segments) plus the off-path children of its ancestors. The returned
    /// blocks partition the world, every proper ancestor of the leaf is
    /// known internal without any probe, and the one probe made lands in
    /// `p`'s key neighbourhood — this is what keeps the paper's PMR
    /// queries so disk-cheap (after Hoel & Samet [11]).
    fn seed_blocks(&mut self, p: Point) -> (Block, Vec<SegId>, Vec<Block>) {
        let leaf = self.leaf_containing(p);
        let segs = self
            .block_entries(leaf)
            .expect("leaf_containing returns a leaf");
        let mut others = Vec::new();
        let mut a = leaf;
        while let Some(parent) = a.parent() {
            for c in parent.children() {
                if c != a {
                    others.push(c);
                }
            }
            a = parent;
        }
        (leaf, segs, others)
    }

    /// Insert segment `id` into every block it touches, splitting blocks
    /// that exceed the threshold once.
    fn insert_segment(&mut self, id: SegId) {
        let seg = self.table.fetch(id);
        let blocks = self.leaves_touching_segment(&seg);
        debug_assert!(!blocks.is_empty(), "segment must land somewhere");
        for (b, existing) in blocks {
            if existing.contains(&id) {
                continue;
            }
            if existing.is_empty() {
                self.btree.remove(key(b, EMPTY));
            }
            self.btree.insert(key(b, id.0));
            let occupancy = existing.len() + 1;
            if occupancy > self.threshold && b.depth < self.max_depth {
                self.split_block(b);
            }
        }
    }

    /// Split `b` once into its four children, redistributing its q-edges.
    fn split_block(&mut self, b: Block) {
        let segs = self.block_segments(b);
        for &sid in &segs {
            self.btree.remove(key(b, sid.0));
        }
        for child in b.children() {
            let mut any = false;
            for &sid in &segs {
                let geom = self.table.fetch(sid);
                if child.region_touches_segment(&geom) {
                    self.btree.insert(key(child, sid.0));
                    any = true;
                }
            }
            if !any {
                self.btree.insert(key(child, EMPTY));
            }
        }
    }

    /// After deletions, try to merge `parent`'s four children back into
    /// it; recurse upward on success. "If the splitting threshold exceeds
    /// the occupancy of the block and its siblings, then they are merged."
    fn try_merge(&mut self, parent: Block) {
        let children = parent.children();
        let mut distinct: HashSet<SegId> = HashSet::new();
        for c in children {
            if !self.is_leaf(c) {
                return; // a grandchild decomposition blocks the merge
            }
            for sid in self.block_segments(c) {
                distinct.insert(sid);
            }
        }
        if distinct.len() >= self.threshold {
            return;
        }
        for c in children {
            for k in self.btree.collect_range(key(c, 0), key(c, u32::MAX)) {
                self.btree.remove(k);
            }
        }
        if distinct.is_empty() {
            self.btree.insert(key(parent, EMPTY));
        } else {
            for sid in distinct {
                self.btree.insert(key(parent, sid.0));
            }
        }
        if let Some(gp) = parent.parent() {
            self.try_merge(gp);
        }
    }

    /// Validate the decomposition (tests only): leaves partition the world
    /// in Z-order, sentinels mark exactly the empty leaves, every q-edge's
    /// segment touches its block, and every (segment, touching-leaf) pair
    /// is present. Returns the sorted distinct segment ids.
    pub fn check_invariants(&mut self) -> Vec<SegId> {
        let keys = self.btree.collect_range(0, u64::MAX);
        assert!(!keys.is_empty(), "even an empty tree has a root sentinel");
        // Group tuples by block, preserving Z-order.
        let mut blocks: Vec<(Block, Vec<u32>)> = Vec::new();
        for k in keys {
            let b = block_of_key(k);
            if blocks.last().map(|(lb, _)| *lb) != Some(b) {
                blocks.push((b, Vec::new()));
            }
            blocks.last_mut().unwrap().1.push(payload_of_key(k));
        }
        // Z-order partition: consecutive blocks abut exactly.
        let mut cursor: u64 = 0;
        for (b, payloads) in &blocks {
            let cells = 1u64 << (2 * (MAX_DEPTH - b.depth) as u32);
            assert_eq!(
                b.code() as u64,
                cursor,
                "gap or overlap in the Z-order decomposition at {b:?}"
            );
            cursor += cells;
            // Sentinel iff empty.
            let has_sentinel = payloads.contains(&EMPTY);
            if has_sentinel {
                assert_eq!(payloads.len(), 1, "sentinel must be alone in {b:?}");
            } else {
                assert!(!payloads.is_empty());
            }
            for &pl in payloads {
                if pl != EMPTY {
                    let seg = self.table.fetch(SegId(pl));
                    assert!(
                        b.region_touches_segment(&seg),
                        "q-edge {pl} does not touch its block {b:?}"
                    );
                }
            }
        }
        assert_eq!(
            cursor,
            1u64 << (2 * MAX_DEPTH as u32),
            "leaves must cover the world"
        );
        // Completeness: every segment is in every leaf it touches.
        let mut all: Vec<SegId> = blocks
            .iter()
            .flat_map(|(_, pls)| pls.iter().filter(|&&p| p != EMPTY).map(|&p| SegId(p)))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), self.len, "len counter diverged");
        for &id in &all {
            let seg = self.table.fetch(id);
            for (b, payloads) in &blocks {
                let touches = b.region_touches_segment(&seg);
                let stored = payloads.contains(&id.0);
                assert_eq!(
                    touches, stored,
                    "segment {id:?} vs block {b:?}: touches={touches} stored={stored}"
                );
            }
        }
        all
    }
}

/// Expansion policy plugged into the shared engines. Unlike the R-tree
/// family, a point query resolves entirely in the seed (one B-tree
/// predecessor probe finds the bucket — the quadtree's "descent" is
/// implicit in the locational code), and window/nearest traversals seed
/// with the query point's bucket plus the off-path children of its
/// ancestors, which partition the rest of the world.
impl NodeAccess for PmrQuadtree {
    type Node = Block;

    fn table(&self) -> &SegmentTable {
        &self.table
    }

    fn seed_point(
        &self,
        p: Point,
        probe_only: bool,
        ctx: &mut QueryCtx,
        sink: &mut DfsSink<Block>,
    ) {
        // The block containing p holds every segment with an endpoint at p
        // (any segment touching p touches this block's closed region) —
        // one bucket computation, one locate, one bucket scan.
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        *bbox_comps += 1;
        let b = self.leaf_containing_ctx(p, index);
        // The block's packed locational code: (Morton code, depth).
        sink.arrive(LocId(key(b, 0) >> 32));
        if !probe_only {
            self.scan_block_ctx(b, index, &mut |id| sink.entry(id));
        }
    }

    fn expand_point(
        &self,
        _node: Block,
        _p: Point,
        _probe_only: bool,
        _ctx: &mut QueryCtx,
        _sink: &mut DfsSink<Block>,
    ) {
        unreachable!("PMR point queries resolve in the seed — no nodes are emitted");
    }

    fn seed_window(&self, w: Rect, ctx: &mut QueryCtx, sink: &mut DfsSink<Block>) {
        // Seed from the window centre's bucket; only ancestor children
        // that actually overlap the window are traversed further.
        let center = Point::new(
            w.min.x + (w.max.x - w.min.x) / 2,
            w.min.y + (w.max.y - w.min.y) / 2,
        );
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        let leaf = self.leaf_containing_ctx(center, index);
        *bbox_comps += 1;
        self.scan_block_ctx(leaf, index, &mut |id| sink.entry(id));
        let mut a = leaf;
        while let Some(parent) = a.parent() {
            for c in parent.children() {
                if c != a {
                    sink.node(c);
                }
            }
            a = parent;
        }
        // The legacy traversal popped the seed list as a stack (nearest
        // ancestors last); emission order is visit order, so reverse.
        sink.reverse_nodes();
    }

    fn expand_window(&self, b: Block, w: Rect, ctx: &mut QueryCtx, sink: &mut DfsSink<Block>) {
        if !w.intersects(&b.rect()) {
            return;
        }
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        let is_leaf = self.scan_block_ctx(b, index, &mut |id| sink.entry(id));
        if is_leaf {
            *bbox_comps += 1;
        } else {
            for c in b.children() {
                sink.node(c);
            }
            // Stack pop order of the legacy loop: last child first.
            sink.reverse_nodes();
        }
    }

    fn seed_nearest(&self, p: Point, ctx: &mut QueryCtx, sink: &mut NnSink<Block>) {
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        let leaf = self.leaf_containing_ctx(p, index);
        *bbox_comps += 1;
        let leaf_dist = Dist2::from_int(leaf.dist2_point(p));
        self.scan_block_ctx(leaf, index, &mut |id| sink.candidate(id, leaf_dist));
        let mut a = leaf;
        while let Some(parent) = a.parent() {
            for c in parent.children() {
                if c != a {
                    sink.node(c, Dist2::from_int(c.dist2_point(p)));
                }
            }
            a = parent;
        }
    }

    fn expand_nearest(&self, b: Block, p: Point, ctx: &mut QueryCtx, sink: &mut NnSink<Block>) {
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        // Lower-bound candidates by the block distance; the exact distance
        // is computed (one segment comparison) when the candidate pops.
        let block_dist = Dist2::from_int(b.dist2_point(p));
        let is_leaf = self.scan_block_ctx(b, index, &mut |id| sink.candidate(id, block_dist));
        if is_leaf {
            *bbox_comps += 1;
        } else {
            for c in b.children() {
                sink.node(c, Dist2::from_int(c.dist2_point(p)));
            }
        }
    }
}

impl SpatialIndex for PmrQuadtree {
    fn name(&self) -> &'static str {
        "PMR quadtree"
    }

    fn seg_table(&self) -> &SegmentTable {
        &self.table
    }

    fn seg_table_mut(&mut self) -> &mut SegmentTable {
        &mut self.table
    }

    fn insert(&mut self, id: SegId) {
        assert_ne!(id.0, EMPTY, "segment id reserved for the empty sentinel");
        self.insert_segment(id);
        self.len += 1;
    }

    fn remove(&mut self, id: SegId) -> bool {
        let seg = self.table.fetch(id);
        let blocks = self.leaves_touching_segment(&seg);
        let mut removed = false;
        for (b, segs) in &blocks {
            if self.btree.remove(key(*b, id.0)) {
                removed = true;
                if segs.len() == 1 {
                    // `id` was the only occupant; keep the leaf encoded.
                    self.btree.insert(key(*b, EMPTY));
                }
            }
        }
        if !removed {
            return false;
        }
        self.len -= 1;
        // Attempt merges at each distinct affected parent.
        let mut parents: Vec<Block> = blocks.iter().filter_map(|(b, _)| b.parent()).collect();
        parents.sort_unstable_by_key(|p| (p.depth, p.x, p.y));
        parents.dedup();
        // Deepest first so cascading merges propagate cleanly.
        parents.sort_unstable_by_key(|p| Reverse(p.depth));
        for p in parents {
            // The block may already have been merged away by a sibling's
            // merge; `try_merge` re-checks leaf-ness itself.
            self.try_merge(p);
        }
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn find_incident(&self, p: Point, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::find_incident(self, p, ctx)
    }

    fn find_incident_visit(&self, p: Point, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::incident_visit(self, p, ctx, f);
    }

    fn probe_point(&self, p: Point, ctx: &mut QueryCtx) -> LocId {
        traverse::probe_point(self, p, ctx)
    }

    fn nearest(&self, p: Point, ctx: &mut QueryCtx) -> Option<SegId> {
        if self.len == 0 {
            return None;
        }
        traverse::best_first_nearest(self, p, ctx)
    }

    fn nearest_k(&self, p: Point, k: usize, ctx: &mut QueryCtx) -> Vec<SegId> {
        if self.len == 0 {
            return Vec::new();
        }
        traverse::best_first_nearest_k(self, p, k, ctx)
    }

    fn window(&self, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::window(self, w, ctx)
    }

    fn window_visit(&self, w: Rect, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::window_visit(self, w, ctx, f);
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            disk: self.btree.pool().stats(),
            seg_comps: 0,
            bbox_comps: self.bucket_comps,
            seg_disk: self.table.disk_stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.btree.pool_mut().reset_stats();
        self.btree.reset_stats();
        self.table.reset_stats();
        self.bucket_comps = 0;
    }

    fn size_bytes(&self) -> u64 {
        self.btree.pool().size_bytes()
    }

    fn clear_cache(&mut self) {
        self.btree.pool_mut().clear();
    }

    fn attach_budget(&mut self, budget: &std::sync::Arc<lsdb_pager::BufferBudget>) {
        self.btree.pool_mut().attach_budget(budget);
        self.table.attach_budget(budget);
    }

    fn shed_cache(&self, target_bytes: u64) -> std::io::Result<u64> {
        let freed = self.btree.pool().shed(target_bytes)?;
        Ok(freed + self.table.shed_cache(target_bytes.saturating_sub(freed))?)
    }

    fn cache_stats(&self) -> lsdb_pager::CacheStats {
        let mut s = self.btree.pool().cache_stats();
        s.add(self.table.cache_stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::brute;
    use lsdb_geom::WORLD_SIZE;

    fn cfg_test() -> PmrConfig {
        PmrConfig {
            threshold: 2,
            max_depth: 8,
            index: IndexConfig {
                page_size: 256,
                pool_pages: 8,
                ..Default::default()
            },
        }
    }

    fn grid_map(n: i32) -> PolygonalMap {
        let mut segs = Vec::new();
        let step = WORLD_SIZE / (n + 2);
        for i in 0..=n {
            for j in 0..n {
                segs.push(Segment::new(
                    Point::new(i * step, j * step),
                    Point::new(i * step, (j + 1) * step),
                ));
                segs.push(Segment::new(
                    Point::new(j * step, i * step),
                    Point::new((j + 1) * step, i * step),
                ));
            }
        }
        PolygonalMap::new("grid", segs)
    }

    #[test]
    fn key_packing_roundtrip() {
        let b = Block {
            depth: 7,
            x: 128 * 5,
            y: 128 * 9,
        };
        let k = key(b, 12345);
        assert_eq!(block_of_key(k), b);
        assert_eq!(payload_of_key(k), 12345);
        // Z-order: keys sort by (morton, depth, payload).
        let k2 = key(b, 12346);
        assert!(k2 > k);
        let sibling = Block {
            depth: 7,
            x: 128 * 6,
            y: 128 * 9,
        };
        assert!(key(sibling, 0) != k);
    }

    #[test]
    fn empty_tree_has_root_sentinel() {
        let table = SegmentTable::new(256, 4);
        let mut t = PmrQuadtree::new(table, cfg_test());
        assert_eq!(t.len(), 0);
        assert_eq!(t.leaf_blocks(), vec![Block::ROOT]);
        let mut ctx = QueryCtx::new();
        assert_eq!(t.nearest(Point::new(0, 0), &mut ctx), None);
        assert!(t.window(Rect::new(0, 0, 100, 100), &mut ctx).is_empty());
        t.check_invariants();
    }

    #[test]
    fn build_and_invariants() {
        let map = grid_map(6);
        let mut t = PmrQuadtree::build(&map, cfg_test());
        assert_eq!(t.len(), map.len());
        let segs = t.check_invariants();
        assert_eq!(segs.len(), map.len());
        assert!(t.leaf_blocks().len() > 4, "the root must have split");
    }

    #[test]
    fn split_threshold_is_respected_on_insert_path() {
        // Paper: a block is split when an insertion pushes it past the
        // threshold, but only once — so occupancy can exceed the
        // threshold, bounded by threshold + depth.
        let map = grid_map(6);
        let mut t = PmrQuadtree::build(&map, cfg_test());
        let mut counts: std::collections::HashMap<Block, usize> = Default::default();
        let _ = t.btree.scan_range(0, u64::MAX, &mut |k| {
            if payload_of_key(k) != EMPTY {
                *counts.entry(block_of_key(k)).or_default() += 1;
            }
            ControlFlow::Continue(())
        });
        for (b, c) in counts {
            assert!(
                c <= t.threshold + b.depth as usize || b.depth == t.max_depth,
                "block {b:?} occupancy {c} exceeds threshold+depth"
            );
        }
    }

    #[test]
    fn incident_matches_brute_force() {
        let map = grid_map(5);
        let t = PmrQuadtree::build(&map, cfg_test());
        let mut ctx = QueryCtx::new();
        let step = WORLD_SIZE / 7;
        for x in (0..=5 * step).step_by(step as usize) {
            for y in (0..=5 * step).step_by(step as usize) {
                let p = Point::new(x, y);
                let got = brute::sorted(t.find_incident(p, &mut ctx));
                assert_eq!(got, brute::incident(&map, p), "at {p:?}");
            }
        }
    }

    #[test]
    fn point_location_costs_one_bucket_computation() {
        let map = grid_map(5);
        let t = PmrQuadtree::build(&map, cfg_test());
        let mut ctx = QueryCtx::new();
        let _ = t.find_incident(Point::new(WORLD_SIZE / 3, WORLD_SIZE / 3), &mut ctx);
        assert_eq!(ctx.stats().bbox_comps, 1, "paper Table 2: Point1 = 1.00");
    }

    #[test]
    fn probe_point_reports_the_block_code() {
        let map = grid_map(5);
        let t = PmrQuadtree::build(&map, cfg_test());
        let mut ctx = QueryCtx::new();
        let p = Point::new(WORLD_SIZE / 3, WORLD_SIZE / 3);
        let loc = t.probe_point(p, &mut ctx);
        assert_ne!(loc, LocId::NONE);
        // Stable across repeats; a far-away point lands somewhere else.
        assert_eq!(t.probe_point(p, &mut ctx), loc);
        assert_ne!(t.probe_point(Point::new(1, 1), &mut ctx), loc);
        assert_eq!(
            ctx.stats().seg_comps,
            0,
            "a probe fetches no segment records"
        );
    }

    #[test]
    fn nearest_matches_brute_force_distance() {
        let map = grid_map(5);
        let t = PmrQuadtree::build(&map, cfg_test());
        let mut ctx = QueryCtx::new();
        for x in (0..WORLD_SIZE).step_by(1931) {
            for y in (0..WORLD_SIZE).step_by(2173) {
                let p = Point::new(x, y);
                let got = t.nearest(p, &mut ctx).expect("non-empty");
                let want = brute::nearest(&map, p).unwrap();
                assert_eq!(map.segments[got.index()].dist2_point(p), want.1, "at {p:?}");
            }
        }
    }

    #[test]
    fn window_matches_brute_force() {
        let map = grid_map(5);
        let t = PmrQuadtree::build(&map, cfg_test());
        let mut ctx = QueryCtx::new();
        let s = WORLD_SIZE / 7;
        let windows = [
            Rect::new(0, 0, WORLD_SIZE - 1, WORLD_SIZE - 1),
            Rect::new(s - 10, s - 10, 2 * s + 10, 2 * s + 10),
            Rect::new(s, s, s, s),
            Rect::new(
                WORLD_SIZE - 100,
                WORLD_SIZE - 100,
                WORLD_SIZE - 1,
                WORLD_SIZE - 1,
            ),
        ];
        for w in windows {
            let got = brute::sorted(t.window(w, &mut ctx));
            assert_eq!(got, brute::window(&map, w), "window {w:?}");
            let mut streamed = Vec::new();
            t.window_visit(w, &mut ctx, &mut |id| streamed.push(id));
            assert_eq!(brute::sorted(streamed), got);
        }
    }

    #[test]
    fn parallel_queries_share_the_quadtree() {
        let map = grid_map(5);
        let t = PmrQuadtree::build(&map, cfg_test());
        let probes: Vec<Point> = (0..32)
            .map(|i| Point::new((i * 977) % WORLD_SIZE, (i * 1409) % WORLD_SIZE))
            .collect();
        let run_one = |t: &PmrQuadtree, p: Point| {
            let mut ctx = QueryCtx::new();
            let inc = t.find_incident(p, &mut ctx);
            let near = t.nearest(p, &mut ctx);
            (inc, near, ctx.stats())
        };
        let sequential: Vec<_> = probes.iter().map(|&p| run_one(&t, p)).collect();
        let t = &t;
        let parallel: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = probes
                .chunks(8)
                .map(|chunk| {
                    scope.spawn(move || chunk.iter().map(|&p| run_one(t, p)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn remove_merges_blocks_back() {
        let map = grid_map(5);
        let mut t = PmrQuadtree::build(&map, cfg_test());
        let blocks_full = t.leaf_blocks().len();
        for i in 0..map.len() {
            assert!(t.remove(SegId(i as u32)), "remove {i}");
        }
        assert_eq!(t.len(), 0);
        assert_eq!(
            t.leaf_blocks(),
            vec![Block::ROOT],
            "all {blocks_full} blocks must merge back to the root"
        );
        t.check_invariants();
        assert!(!t.remove(SegId(0)), "double remove");
    }

    #[test]
    fn partial_removal_keeps_answers_correct() {
        let map = grid_map(5);
        let mut t = PmrQuadtree::build(&map, cfg_test());
        for i in (0..map.len()).step_by(3) {
            assert!(t.remove(SegId(i as u32)));
        }
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        let s = WORLD_SIZE / 7;
        let w = Rect::new(s / 2, s / 2, 3 * s, 3 * s);
        let got = brute::sorted(t.window(w, &mut ctx));
        let want: Vec<SegId> = brute::window(&map, w)
            .into_iter()
            .filter(|id| id.index() % 3 != 0)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn reinsert_after_remove() {
        let map = grid_map(4);
        let mut t = PmrQuadtree::build(&map, cfg_test());
        for i in 0..map.len() {
            t.remove(SegId(i as u32));
        }
        for i in 0..map.len() {
            t.insert(SegId(i as u32));
        }
        assert_eq!(t.check_invariants().len(), map.len());
    }

    #[test]
    fn higher_threshold_uses_less_space() {
        // Paper: "as the splitting threshold is increased, the storage
        // requirements of the PMR quadtree decrease".
        let map = grid_map(6);
        let small = PmrQuadtree::build(
            &map,
            PmrConfig {
                threshold: 2,
                ..cfg_test()
            },
        )
        .size_bytes();
        let large = PmrQuadtree::build(
            &map,
            PmrConfig {
                threshold: 16,
                ..cfg_test()
            },
        )
        .size_bytes();
        assert!(
            large <= small,
            "threshold 16: {large} vs threshold 2: {small}"
        );
    }

    #[test]
    fn boundary_grazing_segment_lands_in_both_blocks() {
        // A horizontal segment exactly on the SW/NW quadrant boundary is a
        // q-edge of both quadrants once the root splits.
        let half = WORLD_SIZE / 2;
        let mut segs = vec![Segment::new(Point::new(10, half), Point::new(500, half))];
        // Filler to force a root split (threshold 2).
        segs.push(Segment::new(Point::new(100, 100), Point::new(200, 100)));
        segs.push(Segment::new(Point::new(300, 100), Point::new(400, 100)));
        let map = PolygonalMap::new("graze", segs);
        let mut t = PmrQuadtree::build(&map, cfg_test());
        t.check_invariants();
        let blocks = t.leaf_blocks();
        assert!(blocks.len() >= 4);
        // The grazing segment must be found from points on both sides.
        let mut ctx = QueryCtx::new();
        let got = t.find_incident(Point::new(10, half), &mut ctx);
        assert_eq!(got, vec![SegId(0)]);
    }

    #[test]
    fn polygon_query_via_generic_traversal() {
        let map = grid_map(4);
        let t = PmrQuadtree::build(&map, cfg_test());
        let mut ctx = QueryCtx::new();
        let step = WORLD_SIZE / 6;
        let walk = lsdb_core::queries::enclosing_polygon(
            &t,
            Point::new(step + step / 2, step + step / 2),
            100,
            &mut ctx,
        )
        .expect("non-empty");
        assert!(walk.closed);
        assert_eq!(walk.len(), 4, "a city block has 4 segments");
    }

    #[test]
    fn threshold_one_still_correct() {
        let map = grid_map(3);
        let mut t = PmrQuadtree::build(
            &map,
            PmrConfig {
                threshold: 1,
                ..cfg_test()
            },
        );
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        let p = map.segments[0].a;
        assert_eq!(
            brute::sorted(t.find_incident(p, &mut ctx)),
            brute::incident(&map, p)
        );
    }

    #[test]
    fn zero_max_depth_keeps_everything_in_the_root() {
        // A decomposition that is never allowed to split degenerates to a
        // single bucket; queries stay correct, costs degrade.
        let map = grid_map(3);
        let mut t = PmrQuadtree::build(
            &map,
            PmrConfig {
                max_depth: 0,
                ..cfg_test()
            },
        );
        assert_eq!(t.leaf_blocks(), vec![Block::ROOT]);
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        let w = Rect::new(0, 0, WORLD_SIZE - 1, WORLD_SIZE - 1);
        assert_eq!(brute::sorted(t.window(w, &mut ctx)).len(), map.len());
    }

    #[test]
    fn nearest_k_is_incremental_and_deduplicated() {
        let map = grid_map(4);
        let t = PmrQuadtree::build(&map, cfg_test());
        let mut ctx = QueryCtx::new();
        let p = Point::new(WORLD_SIZE / 3, WORLD_SIZE / 3);
        let k5 = t.nearest_k(p, 5, &mut ctx);
        assert_eq!(k5.len(), 5);
        let mut sorted_ids = k5.clone();
        sorted_ids.sort_unstable();
        sorted_ids.dedup();
        assert_eq!(sorted_ids.len(), 5, "k-NN must not repeat a q-edge");
        // Prefix property: nearest_k(1) is the head of nearest_k(5) by
        // distance (ids may differ under exact ties).
        let k1 = t.nearest_k(p, 1, &mut ctx);
        let d1 = map.segments[k1[0].index()].dist2_point(p);
        let d5 = map.segments[k5[0].index()].dist2_point(p);
        assert_eq!(d1, d5);
    }

    #[test]
    fn tuple_size_matches_paper() {
        // 8-byte 2-tuples: ~120 per 1 KB page (we fit 127).
        let table = SegmentTable::new(1024, 4);
        let t = PmrQuadtree::new(table, PmrConfig::default());
        assert_eq!(t.btree.height(), 1);
        // Key is a packed u64 = 8 bytes; the leaf capacity assertion lives
        // in the btree crate.
    }
}
