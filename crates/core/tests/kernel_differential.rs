//! Differential tests for the SIMD scan kernels: every ISA arm the host
//! can run (scalar always; SSE2/AVX2 where detected) must emit identical
//! survivors, in identical storage order, with identical scan counts —
//! over randomized pages and over the adversarial shapes the vector paths
//! could plausibly get wrong:
//!
//! * ragged tails (`n % 8 != 0`, `n % 4 != 0`, and sub-block pages that
//!   never enter the vector loop at all),
//! * zero-area rectangles (degenerate on one or both axes — axis-aligned
//!   segments produce these constantly),
//! * `i32::MIN` / `i32::MAX` coordinates for the comparison predicates
//!   (closed-bound compares are exact at the extremes) and the documented
//!   `±2^30` domain edge for the distance kernel,
//! * empty nodes and full pages at the paper's 50-entry capacity.
//!
//! The scalar arm is itself differential against the naive per-entry
//! `Rect` predicates, so all three arms chain back to the geometry crate's
//! single source of truth.

use lsdb_core::rectnode::{Entry, RectNode, ENTRY, HDR};
use lsdb_core::scan::{
    scan_containing_point_with, scan_intersecting_with, scan_min_dist2_with, EntryScan, Isa,
};
use lsdb_geom::{Point, Rect};
use lsdb_rng::StdRng;

/// Every ISA the host can actually execute. Scalar is always present, so
/// the agreement checks are non-trivial even on a SSE2-only runner.
fn isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|i| i.available()).collect()
}

fn page_of(entries: &[Entry]) -> Vec<u8> {
    let mut buf = vec![0u8; HDR + entries.len().max(1) * ENTRY];
    RectNode::init(&mut buf, true);
    for &e in entries {
        RectNode::push(&mut buf, e);
    }
    buf
}

fn e(x0: i32, y0: i32, x1: i32, y1: i32, child: u32) -> Entry {
    Entry {
        rect: Rect::new(x0, y0, x1, y1),
        child,
    }
}

/// Collect (survivor, order) from the intersect kernel on one ISA.
fn run_intersect(isa: Isa, buf: &[u8], w: &Rect) -> (Vec<Entry>, usize) {
    let scan = EntryScan::of_node(buf);
    let mut got = Vec::new();
    let n = scan_intersecting_with(isa, &scan, w, |e| got.push(e));
    (got, n)
}

fn run_contain(isa: Isa, buf: &[u8], p: Point) -> (Vec<Entry>, usize) {
    let scan = EntryScan::of_node(buf);
    let mut got = Vec::new();
    let n = scan_containing_point_with(isa, &scan, p, |e| got.push(e));
    (got, n)
}

fn run_dist2(isa: Isa, buf: &[u8], p: Point) -> (Vec<(Entry, i64)>, usize) {
    let scan = EntryScan::of_node(buf);
    let mut got = Vec::new();
    let n = scan_min_dist2_with(isa, &scan, p, |e, d| got.push((e, d)));
    (got, n)
}

/// Assert all host ISAs agree with the scalar arm on all three kernels,
/// and that the scalar arm agrees with the naive geometry predicates.
fn assert_all_agree(entries: &[Entry], w: &Rect, p: Point, label: &str) {
    let buf = page_of(entries);
    let n = entries.len();

    let naive_w: Vec<Entry> = entries
        .iter()
        .copied()
        .filter(|e| w.intersects(&e.rect))
        .collect();
    let naive_p: Vec<Entry> = entries
        .iter()
        .copied()
        .filter(|e| e.rect.contains_point(p))
        .collect();
    let naive_d: Vec<(Entry, i64)> = entries
        .iter()
        .copied()
        .map(|e| (e, e.rect.dist2_point(p)))
        .collect();

    for isa in isas() {
        let (got, scanned) = run_intersect(isa, &buf, w);
        assert_eq!(scanned, n, "{label}: intersect scan count on {isa:?}");
        assert_eq!(got, naive_w, "{label}: intersect survivors on {isa:?}");

        let (got, scanned) = run_contain(isa, &buf, p);
        assert_eq!(scanned, n, "{label}: contain scan count on {isa:?}");
        assert_eq!(got, naive_p, "{label}: contain survivors on {isa:?}");

        let (got, scanned) = run_dist2(isa, &buf, p);
        assert_eq!(scanned, n, "{label}: dist2 scan count on {isa:?}");
        assert_eq!(got, naive_d, "{label}: dist2 values on {isa:?}");
    }
}

#[test]
fn randomized_pages_agree_across_isas() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    // Sizes straddle both vector widths: sub-block, exact blocks for 4 and
    // 8, every tail residue mod 8, and the paper's 50-entry full page.
    for n in [
        0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 23, 31, 32, 33, 50,
    ] {
        for round in 0..8 {
            let entries: Vec<Entry> = (0..n)
                .map(|i| {
                    let x0 = rng.gen_range(-2000..2000);
                    let y0 = rng.gen_range(-2000..2000);
                    // Degenerate on either axis with high probability.
                    let w = if rng.gen_bool(0.4) {
                        0
                    } else {
                        rng.gen_range(0..300)
                    };
                    let h = if rng.gen_bool(0.4) {
                        0
                    } else {
                        rng.gen_range(0..300)
                    };
                    Entry {
                        rect: Rect::new(x0, y0, x0 + w, y0 + h),
                        child: i as u32,
                    }
                })
                .collect();
            let w = Rect::new(
                rng.gen_range(-2000..0),
                rng.gen_range(-2000..0),
                rng.gen_range(0..2000),
                rng.gen_range(0..2000),
            );
            let p = Point::new(rng.gen_range(-2500..2500), rng.gen_range(-2500..2500));
            assert_all_agree(&entries, &w, p, &format!("n={n} round={round}"));
        }
    }
}

#[test]
fn extreme_coordinates_intersect_and_contain() {
    // Comparison predicates are exact over the whole i32 range: a page
    // mixing world-sized rects with i32::MIN/MAX corners, probed by
    // extreme windows and points. 9 entries = one full AVX2 block + tail.
    let entries = vec![
        e(i32::MIN, i32::MIN, i32::MAX, i32::MAX, 0), // everything
        e(i32::MIN, i32::MIN, i32::MIN, i32::MIN, 1), // min corner point
        e(i32::MAX, i32::MAX, i32::MAX, i32::MAX, 2), // max corner point
        e(i32::MIN, 0, i32::MAX, 0, 3),               // full-width hairline
        e(0, i32::MIN, 0, i32::MAX, 4),               // full-height hairline
        e(-5, -5, 5, 5, 5),
        e(i32::MAX - 10, i32::MIN, i32::MAX, i32::MIN + 10, 6),
        e(0, 0, 0, 0, 7),
        e(i32::MIN + 1, i32::MAX - 1, i32::MIN + 1, i32::MAX, 8),
    ];
    let windows = [
        Rect::new(i32::MIN, i32::MIN, i32::MAX, i32::MAX),
        Rect::new(i32::MIN, i32::MIN, i32::MIN, i32::MIN),
        Rect::new(i32::MAX, i32::MAX, i32::MAX, i32::MAX),
        Rect::new(-1, -1, 1, 1),
        Rect::new(i32::MAX - 5, i32::MIN, i32::MAX, i32::MIN + 5),
    ];
    let points = [
        Point::new(i32::MIN, i32::MIN),
        Point::new(i32::MAX, i32::MAX),
        Point::new(0, 0),
        Point::new(i32::MIN, i32::MAX),
    ];
    // Distance is domain-restricted (differences must fit i32), so pair
    // the extreme windows/points with an in-domain probe for dist2 by
    // checking intersect/contain only here.
    let buf = page_of(&entries);
    for w in &windows {
        let naive: Vec<Entry> = entries
            .iter()
            .copied()
            .filter(|e| w.intersects(&e.rect))
            .collect();
        for isa in isas() {
            let (got, scanned) = run_intersect(isa, &buf, w);
            assert_eq!(scanned, entries.len());
            assert_eq!(got, naive, "window {w:?} on {isa:?}");
        }
    }
    for p in points {
        let naive: Vec<Entry> = entries
            .iter()
            .copied()
            .filter(|e| e.rect.contains_point(p))
            .collect();
        for isa in isas() {
            let (got, scanned) = run_contain(isa, &buf, p);
            assert_eq!(scanned, entries.len());
            assert_eq!(got, naive, "point {p:?} on {isa:?}");
        }
    }
}

#[test]
fn dist2_agrees_at_the_domain_edge() {
    // The widest domain Rect::dist2_point documents: per-axis differences
    // fit i32. ±2^30 rect corners probed from the opposite corner give
    // differences of 2^31 - 2 — the extreme the SIMD subtract must hit
    // without wrapping.
    const M: i32 = (1 << 30) - 1;
    let entries: Vec<Entry> = vec![
        e(-M, -M, -M, -M, 0),
        e(M, M, M, M, 1),
        e(-M, -M, M, M, 2),
        e(-M, M - 1, -M + 1, M, 3),
        e(0, 0, 0, 0, 4),
        e(-3, -4, 3, 4, 5),
        e(M - 7, -M, M, -M + 7, 6),
        e(-1, -M, 1, M, 7),
        e(5, 5, 6, 6, 8), // tail entry past the 8-wide block
    ];
    let buf = page_of(&entries);
    for p in [
        Point::new(M, M),
        Point::new(-M, -M),
        Point::new(M, -M),
        Point::new(0, 0),
        Point::new(-M, M),
    ] {
        let naive: Vec<(Entry, i64)> = entries
            .iter()
            .copied()
            .map(|e| (e, e.rect.dist2_point(p)))
            .collect();
        for isa in isas() {
            let (got, scanned) = run_dist2(isa, &buf, p);
            assert_eq!(scanned, entries.len());
            assert_eq!(got, naive, "probe {p:?} on {isa:?}");
        }
    }
}

#[test]
fn empty_and_single_entry_nodes() {
    let w = Rect::new(-10, -10, 10, 10);
    let p = Point::new(0, 0);
    assert_all_agree(&[], &w, p, "empty");
    assert_all_agree(&[e(0, 0, 0, 0, 0)], &w, p, "single hit");
    assert_all_agree(&[e(100, 100, 200, 200, 0)], &w, p, "single miss");
}

#[test]
fn forced_scalar_override_is_respected_in_child_process() {
    // `LSDB_FORCE_SCALAR` is read once per process, so test it in a
    // child: re-run this test binary with the variable set and a marker
    // test filtered in.
    if std::env::var_os("LSDB_SCALAR_CHILD").is_some() {
        return; // the child runs only the marker test below
    }
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args([
            "--exact",
            "child_marker_active_isa_is_scalar",
            "--nocapture",
        ])
        .env("LSDB_FORCE_SCALAR", "1")
        .env("LSDB_SCALAR_CHILD", "1")
        .output()
        .expect("spawn child test");
    assert!(
        out.status.success(),
        "forced-scalar child failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn child_marker_active_isa_is_scalar() {
    // Meaningful only when spawned by the test above with the override
    // set; a bare run (no override) just confirms the cache works.
    let isa = lsdb_core::scan::active_isa();
    if std::env::var_os("LSDB_SCALAR_CHILD").is_some() {
        assert_eq!(isa, Isa::Scalar, "LSDB_FORCE_SCALAR=1 must pin scalar");
    }
    assert!(isa.available());
}
