use crate::rectnode::EntryOrder;
use crate::{QueryCtx, QueryStats, SegId, SegmentTable};
use lsdb_geom::{Point, Rect};

/// Page/pool configuration shared by the index and its segment table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexConfig {
    /// Page (node) size in bytes. The paper's experiments use 1 KB.
    pub page_size: usize,
    /// Buffer-pool capacity in pages. The paper uses 16.
    pub pool_pages: usize,
    /// Intra-node entry ordering applied when R-tree-family nodes are
    /// (re)written. [`EntryOrder::Storage`] — the default, and what every
    /// committed counter baseline uses — keeps the maintenance
    /// algorithms' order; [`EntryOrder::Hilbert`] sorts each written
    /// node's entries along the Hilbert curve, the SIMD-literature
    /// ordering experiment (changes traversal emit order, hence
    /// counters). Ignored by the non-rectangle structures.
    pub entry_order: EntryOrder,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            page_size: lsdb_pager::DEFAULT_PAGE_SIZE,
            pool_pages: lsdb_pager::DEFAULT_POOL_PAGES,
            entry_order: EntryOrder::Storage,
        }
    }
}

/// Identifier of the leaf page or bucket a point probe located: the page id
/// for paged trees, the Z-order block key for the PMR quadtree, the cell
/// index for grids. Opaque — only meaningful back to the index that issued
/// it — but stable: probing the same point twice yields the same id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LocId(pub u64);

impl LocId {
    /// Returned by indexes with no localizable bucket (e.g. an oracle that
    /// scans everything).
    pub const NONE: LocId = LocId(u64::MAX);
}

/// The interface shared by the R\*-tree, R+-tree, PMR quadtree (and the
/// uniform-grid baseline).
///
/// The three primitive paper queries live here:
///
/// * **Query 1** ([`SpatialIndex::find_incident`]) — all segments incident
///   at a given segment endpoint;
/// * **Query 3** ([`SpatialIndex::nearest`]) — the nearest segment to an
///   arbitrary point under the Euclidean metric;
/// * **Query 5** ([`SpatialIndex::window`]) — all segments intersecting a
///   rectangular window.
///
/// Query 2 (segments at the *other* endpoint) and query 4 (minimal
/// enclosing polygon) are structure-independent compositions of these and
/// are implemented once in [`crate::queries`].
///
/// # Shared-read queries
///
/// All queries take `&self` plus a per-query [`QueryCtx`]: the index is
/// never mutated by a read, so one index can serve many query threads at
/// once. Everything a query *counts* — disk accesses, segment comparisons,
/// bounding-box computations — is charged to its context, making batch
/// totals independent of thread interleaving. Build/maintenance operations
/// ([`SpatialIndex::insert`], [`SpatialIndex::remove`]) remain exclusive
/// (`&mut self`) and charge the pools' internal counters instead.
///
/// `Send + Sync` are supertraits so a `&dyn SpatialIndex` can be handed to
/// query worker threads directly; every disk-resident implementor is
/// already thread-safe through its sharded buffer pool.
pub trait SpatialIndex: Send + Sync {
    /// Short display name ("R*-tree", "R+-tree", "PMR quadtree", ...).
    fn name(&self) -> &'static str;

    /// The segment table this index points into.
    fn seg_table(&self) -> &SegmentTable;

    /// Exclusive access to the segment table (loading, build paths).
    fn seg_table_mut(&mut self) -> &mut SegmentTable;

    /// Insert the segment with id `id` (geometry is read from the table).
    fn insert(&mut self, id: SegId);

    /// Remove a segment; returns `false` if it was not present.
    fn remove(&mut self, id: SegId) -> bool;

    /// Number of distinct segments currently indexed.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Query 1: all segments with an endpoint exactly at `p`.
    fn find_incident(&self, p: Point, ctx: &mut QueryCtx) -> Vec<SegId>;

    /// Streaming query 1: invoke `f` once per incident segment instead of
    /// materializing a result vector. Compositions that fire many
    /// incidence queries in a row (the polygon walk of query 4) call this
    /// with a reused buffer. Structures with a native traversal override
    /// it; the default delegates to [`SpatialIndex::find_incident`].
    /// Identical result set, order and counters either way.
    fn find_incident_visit(&self, p: Point, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        for id in self.find_incident(p, ctx) {
            f(id);
        }
    }

    /// Locate the leaf (or bucket) containing `p` without fetching any
    /// segment records — the cheap "find where this endpoint lives" step
    /// the paper's query 2 performs before searching the other endpoint.
    /// Charges disk accesses and bbox/bucket computations but no segment
    /// comparisons, and returns the located leaf/bucket id. The default
    /// implementation falls back to a full point search and reports
    /// [`LocId::NONE`].
    fn probe_point(&self, p: Point, ctx: &mut QueryCtx) -> LocId {
        let _ = self.find_incident(p, ctx);
        LocId::NONE
    }

    /// Query 3: the segment at minimal Euclidean distance from `p`
    /// (`None` only when the index is empty). Ties at the minimum
    /// distance resolve deterministically to the smallest [`SegId`], so
    /// every structure returns the same segment for the same query.
    fn nearest(&self, p: Point, ctx: &mut QueryCtx) -> Option<SegId>;

    /// The `k` nearest segments to `p`, closest first (fewer if the index
    /// holds fewer than `k`). Results are deduplicated and totally
    /// ordered by `(distance², SegId)`: equidistant segments appear in
    /// ascending id order, making the ranking — including every tie —
    /// identical across structures and runs. The incremental best-first
    /// search the structures use for [`SpatialIndex::nearest`] extends to
    /// ranked retrieval at no extra cost — the point of Hoel & Samet's
    /// incremental algorithm. The default implementation is correct for
    /// any structure (it conforms to the same ordering) but not
    /// incremental.
    fn nearest_k(&self, p: Point, k: usize, ctx: &mut QueryCtx) -> Vec<SegId> {
        // Generic fallback: widen a window around p until it provably
        // contains the k nearest, then rank by exact distance.
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut radius = 64i64;
        loop {
            let w = Rect::new(
                (p.x as i64 - radius).max(i32::MIN as i64) as i32,
                (p.y as i64 - radius).max(i32::MIN as i64) as i32,
                (p.x as i64 + radius).min(i32::MAX as i64) as i32,
                (p.y as i64 + radius).min(i32::MAX as i64) as i32,
            );
            let mut hits = self.window(w, ctx);
            let enough = hits.len() >= k;
            let saturated = hits.len() >= self.len();
            if enough || saturated {
                let mut ranked: Vec<_> = hits
                    .drain(..)
                    .map(|id| (self.seg_table().get(id, ctx).dist2_point(p), id))
                    .collect();
                ranked.sort();
                ranked.truncate(k);
                // All k within the inscribed radius? Then nothing outside
                // the window can beat them.
                let r2 = lsdb_geom::Dist2::from_int(radius * radius);
                if saturated || ranked.last().is_none_or(|(d, _)| *d < r2) {
                    return ranked.into_iter().map(|(_, id)| id).collect();
                }
            }
            radius *= 2;
        }
    }

    /// Query 5: all segments intersecting the closed window `w`, without
    /// duplicates.
    fn window(&self, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId>;

    /// Streaming query 5: invoke `f` once per matching segment instead of
    /// materializing a result vector. Structures with a native traversal
    /// override this to avoid the allocation; the default delegates to
    /// [`SpatialIndex::window`]. Visit order is structure-defined but
    /// deterministic; no segment is visited twice.
    fn window_visit(&self, w: Rect, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        for id in self.window(w, ctx) {
            f(id);
        }
    }

    /// Snapshot of the build-path metric counters (the pools' internal
    /// stats). Query-path metrics live in each query's [`QueryCtx`].
    fn stats(&self) -> QueryStats;

    /// Zero the build-path counters (typically after the build phase).
    fn reset_stats(&mut self);

    /// Storage footprint of the index structure in bytes, excluding the
    /// segment table (which the paper reports separately since it is
    /// identical across structures).
    fn size_bytes(&self) -> u64;

    /// Flush dirty pages and drop all buffered ones, so subsequent queries
    /// run against a cold cache.
    fn clear_cache(&mut self);

    /// Charge all of this structure's buffer pools (index pool + segment
    /// table pool) against a shared byte budget. Structures with an index
    /// pool override this and also attach that pool; the default covers
    /// the segment table only.
    fn attach_budget(&mut self, budget: &std::sync::Arc<lsdb_pager::BufferBudget>) {
        self.seg_table_mut().attach_budget(budget);
    }

    /// Budget enforcement hook: physically shed up to `target_bytes` of
    /// cold page bytes across this structure's pools, returning the bytes
    /// freed. Logical residency — and therefore every per-query paper
    /// counter — is unaffected. Overridden to cover the index pool too.
    fn shed_cache(&self, target_bytes: u64) -> std::io::Result<u64> {
        self.seg_table().shed_cache(target_bytes)
    }

    /// Summed cache accounting across this structure's pools.
    fn cache_stats(&self) -> lsdb_pager::CacheStats {
        self.seg_table().cache_stats()
    }
}
