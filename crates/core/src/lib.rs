//! Core model of a large line-segment database.
//!
//! This crate ties the substrates together into the objects the paper
//! reasons about:
//!
//! * a [`PolygonalMap`] — the in-memory collection of line segments
//!   (vertices + edges, connected or not) that a county map is,
//! * a disk-resident [`SegmentTable`] — the paged table of segment
//!   endpoints that every index points into (the paper's *segment table*;
//!   each access is a *segment comparison* in its metrics),
//! * the [`SpatialIndex`] trait — the interface all three spatial indexes
//!   (R\*-tree, R+-tree, PMR quadtree) implement,
//! * the five paper queries: Q1/Q3/Q5 live on the trait
//!   (`find_incident`, `nearest`, `window`); Q2 and Q4 are
//!   structure-independent compositions implemented in [`queries`],
//! * the shared query engines ([`traverse`]) — depth-first and best-first
//!   traversal loops every index plugs its expansion policy into via
//!   [`traverse::NodeAccess`], so all structures run the *same* query
//!   algorithm and differ only in node decomposition,
//! * the hot-path scan kernels ([`scan`]) — zero-copy views over node
//!   pages and batched, auto-vectorizable rectangle predicates that every
//!   structure's node decoding goes through,
//! * query-workload generators ([`pointgen`]) covering the paper's
//!   1-stage (uniform) and 2-stage (block-then-uniform) random points,
//! * brute-force reference implementations ([`brute`]) used by every
//!   index's correctness tests.

pub mod batch;
pub mod brute;
mod index;
pub mod live;
mod map;
pub mod pointgen;
pub mod queries;
pub mod rectnode;
pub mod scan;
mod seg_table;
mod stats;
pub mod traverse;

pub use batch::{execute_batch, BatchAnswer, BatchItem, BatchRequest};
pub use index::{IndexConfig, LocId, SpatialIndex};
pub use live::{DurableMap, LiveIndex, MapOp};
pub use map::{PlanarityViolation, PolygonalMap};
pub use seg_table::{SegId, SegmentTable};
pub use stats::{QueryCtx, QueryStats, SharedStats};

// Re-exported so query implementations (and wire-protocol codecs) can name
// the pool-level context and counters without depending on lsdb-pager
// directly.
pub use lsdb_pager::{DiskStats, PoolCtx};

// The durable-storage surface [`DurableMap::open`] is built from: callers
// (server binaries, crash tests) assemble file- or memory-backed stores
// without a direct lsdb-pager dependency.
pub use lsdb_pager::{
    FileLog, FileStorage, LogDevice, Lsn, MemLog, MemStorage, RecoveryReport, Storage,
};
