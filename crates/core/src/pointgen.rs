//! Random query-workload generators.
//!
//! The paper evaluates the nearest-line and enclosing-polygon queries with
//! two kinds of random query points:
//!
//! * **1-stage** ([`UniformGen`]): uniform over the 16K×16K world. "The
//!   problem with such an approach is that many of the query points lie
//!   outside the boundaries of the maps of interest, or in large empty
//!   areas."
//! * **2-stage** ([`TwoStageGen`]): first pick a PMR-quadtree leaf block
//!   uniformly *by count* (not by size), then a uniform point inside it —
//!   which correlates query points with data density, because dense map
//!   regions decompose into many small blocks.
//!
//! Point queries 1 and 2 take segment *endpoints* as query points
//! ([`EndpointGen`]), and window queries take windows covering a fixed
//! fraction (0.01%) of the map area ([`WindowGen`]).

use crate::{PolygonalMap, SegId};
use lsdb_geom::{Point, Rect, WORLD_SIZE};
use lsdb_rng::StdRng;

/// 1-stage generator: uniform points over the world.
pub struct UniformGen {
    rng: StdRng,
}

impl UniformGen {
    pub fn new(seed: u64) -> Self {
        UniformGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_point(&mut self) -> Point {
        Point::new(
            self.rng.gen_range(0..WORLD_SIZE),
            self.rng.gen_range(0..WORLD_SIZE),
        )
    }
}

/// 2-stage generator: a uniformly chosen block, then a uniform point within
/// that block. Blocks are normally the PMR quadtree's leaf blocks.
pub struct TwoStageGen {
    blocks: Vec<Rect>,
    rng: StdRng,
}

impl TwoStageGen {
    /// `blocks` must be non-empty.
    pub fn new(blocks: Vec<Rect>, seed: u64) -> Self {
        assert!(!blocks.is_empty(), "two-stage generator needs blocks");
        TwoStageGen {
            blocks,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_point(&mut self) -> Point {
        let b = self.blocks[self.rng.gen_range(0..self.blocks.len())];
        Point::new(
            self.rng.gen_range(b.min.x..=b.max.x),
            self.rng.gen_range(b.min.y..=b.max.y),
        )
    }
}

/// Query-point generator for the point queries: a random endpoint of a
/// random segment (the paper's queries 1 and 2 are "given an endpoint of a
/// line segment ...").
pub struct EndpointGen<'a> {
    map: &'a PolygonalMap,
    rng: StdRng,
}

impl<'a> EndpointGen<'a> {
    pub fn new(map: &'a PolygonalMap, seed: u64) -> Self {
        assert!(!map.is_empty());
        EndpointGen {
            map,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A random (segment, endpoint) pair.
    pub fn next_endpoint(&mut self) -> (SegId, Point) {
        let i = self.rng.gen_range(0..self.map.segments.len());
        let s = &self.map.segments[i];
        let p = if self.rng.gen_bool(0.5) { s.a } else { s.b };
        (SegId(i as u32), p)
    }
}

/// Window generator: square windows whose area is a fixed fraction of the
/// world (paper: "0.01 percent of the total area ... for a 16K by 16K map,
/// this area is 160 by 160 pixels"), placed uniformly inside the world.
pub struct WindowGen {
    side: i32,
    rng: StdRng,
}

impl WindowGen {
    /// Windows covering `area_fraction` of the world area (the paper uses
    /// `0.0001`).
    pub fn new(area_fraction: f64, seed: u64) -> Self {
        assert!(area_fraction > 0.0 && area_fraction <= 1.0);
        let side = ((WORLD_SIZE as f64) * area_fraction.sqrt()).round() as i32;
        WindowGen {
            side: side.clamp(1, WORLD_SIZE),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn side(&self) -> i32 {
        self.side
    }

    pub fn next_window(&mut self) -> Rect {
        let x = self.rng.gen_range(0..=WORLD_SIZE - self.side);
        let y = self.rng.gen_range(0..=WORLD_SIZE - self.side);
        Rect::new(x, y, x + self.side - 1, y + self.side - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_geom::{world_rect, Segment};

    #[test]
    fn uniform_points_stay_in_world_and_are_deterministic() {
        let mut g1 = UniformGen::new(7);
        let mut g2 = UniformGen::new(7);
        for _ in 0..100 {
            let p = g1.next_point();
            assert!(world_rect().contains_point(p));
            assert_eq!(p, g2.next_point(), "same seed, same stream");
        }
        let mut g3 = UniformGen::new(8);
        let diverged = (0..100).any(|_| g1.next_point() != g3.next_point());
        assert!(diverged, "different seeds diverge");
    }

    #[test]
    fn two_stage_points_land_in_given_blocks() {
        let blocks = vec![Rect::new(0, 0, 9, 9), Rect::new(100, 100, 109, 109)];
        let mut g = TwoStageGen::new(blocks.clone(), 3);
        let mut hits = [0usize; 2];
        for _ in 0..500 {
            let p = g.next_point();
            let idx = blocks.iter().position(|b| b.contains_point(p));
            hits[idx.expect("point must land in a block")] += 1;
        }
        // Both blocks are chosen with equal probability by count.
        assert!(hits[0] > 150 && hits[1] > 150, "hits: {hits:?}");
    }

    #[test]
    fn endpoint_gen_returns_real_endpoints() {
        let map = PolygonalMap::new(
            "t",
            vec![
                Segment::new(Point::new(0, 0), Point::new(5, 5)),
                Segment::new(Point::new(5, 5), Point::new(9, 1)),
            ],
        );
        let mut g = EndpointGen::new(&map, 11);
        for _ in 0..50 {
            let (id, p) = g.next_endpoint();
            assert!(map.segments[id.index()].has_endpoint(p));
        }
    }

    #[test]
    fn window_size_matches_paper() {
        // 0.01% of a 16K×16K world is a ~164-pixel square (the paper
        // rounds to 160).
        let g = WindowGen::new(0.0001, 1);
        assert!((g.side() - 164).abs() <= 1, "side = {}", g.side());
        let mut g = WindowGen::new(0.0001, 1);
        for _ in 0..100 {
            let w = g.next_window();
            assert!(world_rect().contains_rect(&w));
            assert_eq!(w.width() + 1, g.side() as i64);
        }
    }

    #[test]
    fn full_area_window_is_world_sized() {
        let mut g = WindowGen::new(1.0, 1);
        let w = g.next_window();
        assert_eq!(w, world_rect());
    }
}
