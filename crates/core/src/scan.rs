//! Hot-path scan kernels: zero-copy node views and batched geometric
//! predicates over raw page bytes.
//!
//! Every query in this workspace bottoms out in the same inner loop —
//! "walk the entries of one node page, test each bounding rectangle
//! against the query region" — and the paper's wall-clock numbers are
//! dominated by it. This module centralizes that loop in three kernels
//! ([`scan_intersecting`], [`scan_containing_point`], [`scan_min_dist2`])
//! that
//!
//! * read the page bytes **in place** through an [`EntryScan`] view (no
//!   intermediate `Vec<Entry>`, no per-entry closure dispatch), and
//! * process entries in fixed-width blocks of [`LANES`] with branch-free
//!   comparisons (`&` instead of `&&`, per-lane mask arrays) so LLVM can
//!   auto-vectorize the predicate — the rect-vs-rect batching lever of
//!   SIMD-ified R-tree scanning, without any platform intrinsics.
//!
//! The kernels are *counter-transparent*: each returns the number of
//! entries scanned, which is exactly the `bbox_comps` charge the caller
//! owes (one bounding-box computation per entry examined, matching what
//! the per-entry loops charged before). Filtering moved from the shared
//! engines into these kernels emits precisely the entries the engines
//! would have kept, so `QueryStats` are byte-identical either way.
//!
//! Two byte-array micro-kernels ride along for the non-rectangle
//! structures: [`scan_ids`] (uniform-grid bucket chains: packed `u32`
//! ids) and [`scan_keys_le`] (PMR quadtree B-tree leaves: sorted `u64`
//! keys) — so no structure crate keeps a private entry-decoding loop.

use crate::rectnode::{Entry, RectNode, ENTRY, HDR};
use lsdb_geom::{Point, Rect};
use std::ops::ControlFlow;

/// Fixed batch width of the rectangle kernels. Four 20-byte entries per
/// block: wide enough for 128-bit auto-vectorization of the four i32
/// comparisons per predicate, small enough that partially-filled nodes
/// spend little time in the scalar tail.
pub const LANES: usize = 4;

const BLOCK: usize = ENTRY * LANES;

/// A zero-copy view of the entry region of one [`RectNode`] page.
///
/// Replaces `RectNode::entries(buf) -> Vec<Entry>` on the query path:
/// the view borrows the pinned page bytes and decodes on the fly, so a
/// node scan touches the allocator not at all. (`entries()` remains for
/// the build/split path, which genuinely wants an owned, reorderable
/// vector.)
#[derive(Clone, Copy)]
pub struct EntryScan<'a> {
    bytes: &'a [u8],
}

impl<'a> EntryScan<'a> {
    /// View over the occupied entries of a node page.
    pub fn of_node(buf: &'a [u8]) -> EntryScan<'a> {
        let count = RectNode::count(buf);
        EntryScan {
            bytes: &buf[HDR..HDR + count * ENTRY],
        }
    }

    /// Number of entries in view.
    pub fn len(&self) -> usize {
        self.bytes.len() / ENTRY
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Decode entries one by one, in storage order.
    pub fn iter(&self) -> impl Iterator<Item = Entry> + 'a {
        self.bytes.chunks_exact(ENTRY).map(decode)
    }
}

/// Decode one 20-byte entry: 4 × i32 LE rectangle + u32 LE child.
#[inline(always)]
fn decode(chunk: &[u8]) -> Entry {
    let c: &[u8; ENTRY] = chunk.try_into().expect("exact entry chunk");
    let rd = |o: usize| i32::from_le_bytes([c[o], c[o + 1], c[o + 2], c[o + 3]]);
    Entry {
        rect: Rect::new(rd(0), rd(4), rd(8), rd(12)),
        child: u32::from_le_bytes([c[16], c[17], c[18], c[19]]),
    }
}

#[inline(always)]
fn filler() -> Entry {
    Entry {
        rect: Rect::new(0, 0, 0, 0),
        child: 0,
    }
}

/// Emit every entry whose rectangle meets `w` (closed bounds, identical
/// to [`Rect::intersects`]). Returns the number of entries scanned — the
/// caller's `bbox_comps` charge.
pub fn scan_intersecting(scan: &EntryScan, w: &Rect, mut f: impl FnMut(Entry)) -> usize {
    let mut blocks = scan.bytes.chunks_exact(BLOCK);
    for block in blocks.by_ref() {
        let mut lane = [filler(); LANES];
        let mut keep = [false; LANES];
        for (i, chunk) in block.chunks_exact(ENTRY).enumerate() {
            let e = decode(chunk);
            // Non-short-circuiting `&`: all four comparisons evaluate
            // unconditionally, which is what lets LLVM fuse the lanes.
            keep[i] = (w.min.x <= e.rect.max.x)
                & (e.rect.min.x <= w.max.x)
                & (w.min.y <= e.rect.max.y)
                & (e.rect.min.y <= w.max.y);
            lane[i] = e;
        }
        for i in 0..LANES {
            if keep[i] {
                f(lane[i]);
            }
        }
    }
    for chunk in blocks.remainder().chunks_exact(ENTRY) {
        let e = decode(chunk);
        if w.intersects(&e.rect) {
            f(e);
        }
    }
    scan.len()
}

/// Emit every entry whose rectangle contains `p` (closed bounds,
/// identical to [`Rect::contains_point`]). Returns the number of entries
/// scanned.
pub fn scan_containing_point(scan: &EntryScan, p: Point, mut f: impl FnMut(Entry)) -> usize {
    let mut blocks = scan.bytes.chunks_exact(BLOCK);
    for block in blocks.by_ref() {
        let mut lane = [filler(); LANES];
        let mut keep = [false; LANES];
        for (i, chunk) in block.chunks_exact(ENTRY).enumerate() {
            let e = decode(chunk);
            keep[i] = (e.rect.min.x <= p.x)
                & (p.x <= e.rect.max.x)
                & (e.rect.min.y <= p.y)
                & (p.y <= e.rect.max.y);
            lane[i] = e;
        }
        for i in 0..LANES {
            if keep[i] {
                f(lane[i]);
            }
        }
    }
    for chunk in blocks.remainder().chunks_exact(ENTRY) {
        let e = decode(chunk);
        if e.rect.contains_point(p) {
            f(e);
        }
    }
    scan.len()
}

/// Emit every entry together with the exact squared distance from `p` to
/// its rectangle (identical to [`Rect::dist2_point`]; 0 inside). Returns
/// the number of entries scanned.
pub fn scan_min_dist2(scan: &EntryScan, p: Point, mut f: impl FnMut(Entry, i64)) -> usize {
    let (px, py) = (p.x as i64, p.y as i64);
    let mut blocks = scan.bytes.chunks_exact(BLOCK);
    for block in blocks.by_ref() {
        let mut lane = [filler(); LANES];
        let mut d2 = [0i64; LANES];
        for (i, chunk) in block.chunks_exact(ENTRY).enumerate() {
            let e = decode(chunk);
            // Branch-free clamp: max(min - p, 0, p - max) per axis. For a
            // valid rectangle (min <= max) at most one of the outer terms
            // is positive, so this equals the if/else chain in
            // `Rect::dist2_point` exactly.
            let dx = (e.rect.min.x as i64 - px)
                .max(0)
                .max(px - e.rect.max.x as i64);
            let dy = (e.rect.min.y as i64 - py)
                .max(0)
                .max(py - e.rect.max.y as i64);
            d2[i] = dx * dx + dy * dy;
            lane[i] = e;
        }
        for i in 0..LANES {
            f(lane[i], d2[i]);
        }
    }
    for chunk in blocks.remainder().chunks_exact(ENTRY) {
        let e = decode(chunk);
        f(e, e.rect.dist2_point(p));
    }
    scan.len()
}

/// Decode a packed array of `u32` LE ids (a uniform-grid bucket chain
/// page's payload region) and emit each one.
pub fn scan_ids(bytes: &[u8], mut f: impl FnMut(u32)) {
    for chunk in bytes.chunks_exact(4) {
        f(u32::from_le_bytes(
            chunk.try_into().expect("exact id chunk"),
        ));
    }
}

/// Walk a packed array of ascending `u64` LE keys (a B-tree leaf's key
/// region), emitting each key `<= hi` and stopping at the first key past
/// `hi`. The callback's `Break` short-circuits, as in range scans.
pub fn scan_keys_le(
    bytes: &[u8],
    hi: u64,
    f: &mut impl FnMut(u64) -> ControlFlow<()>,
) -> ControlFlow<()> {
    for chunk in bytes.chunks_exact(8) {
        let k = u64::from_le_bytes(chunk.try_into().expect("exact key chunk"));
        if k > hi {
            break;
        }
        f(k)?;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_rng::StdRng;

    /// Build a node page holding `n` random entries, including degenerate
    /// (zero-area) rectangles — segments are often axis-aligned, so the
    /// kernels must handle `min == max` on either axis.
    fn random_page(rng: &mut StdRng, n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; HDR + n * ENTRY];
        RectNode::init(&mut buf, true);
        for i in 0..n {
            let x0 = rng.gen_range(-1000..1000);
            let y0 = rng.gen_range(-1000..1000);
            let (w, h) = if rng.gen_bool(0.25) {
                (0, 0) // zero-area rect
            } else {
                (rng.gen_range(0..100), rng.gen_range(0..100))
            };
            RectNode::push(
                &mut buf,
                Entry {
                    rect: Rect::new(x0, y0, x0 + w, y0 + h),
                    child: i as u32,
                },
            );
        }
        buf
    }

    #[test]
    fn intersecting_matches_naive_loop() {
        let mut rng = StdRng::seed_from_u64(11);
        // Sizes straddle the block width: full blocks, ragged tails, and
        // partially-filled nodes below one block.
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 13, 50, 101] {
            let buf = random_page(&mut rng, n);
            let w = Rect::new(-300, -300, 250, 400);
            let naive: Vec<Entry> = RectNode::entries(&buf)
                .into_iter()
                .filter(|e| w.intersects(&e.rect))
                .collect();
            let mut got = Vec::new();
            let scanned = scan_intersecting(&EntryScan::of_node(&buf), &w, |e| got.push(e));
            assert_eq!(scanned, n, "kernel scans every entry");
            assert_eq!(got, naive, "n={n}");
        }
    }

    #[test]
    fn containing_point_matches_naive_loop() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [0, 1, 3, 4, 6, 11, 50] {
            let buf = random_page(&mut rng, n);
            // Probe corners and interiors of stored rects, not just random
            // points: closed-boundary semantics must match exactly.
            let mut probes = vec![Point::new(0, 0), Point::new(-37, 44)];
            for e in RectNode::entries(&buf) {
                probes.push(e.rect.min);
                probes.push(e.rect.max);
            }
            for p in probes {
                let naive: Vec<Entry> = RectNode::entries(&buf)
                    .into_iter()
                    .filter(|e| e.rect.contains_point(p))
                    .collect();
                let mut got = Vec::new();
                let scanned = scan_containing_point(&EntryScan::of_node(&buf), p, |e| got.push(e));
                assert_eq!(scanned, n);
                assert_eq!(got, naive, "n={n} p={p:?}");
            }
        }
    }

    #[test]
    fn min_dist2_matches_rect_dist2_point() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [0, 1, 4, 5, 9, 50] {
            let buf = random_page(&mut rng, n);
            for _ in 0..8 {
                let p = Point::new(rng.gen_range(-1500..1500), rng.gen_range(-1500..1500));
                let naive: Vec<(Entry, i64)> = RectNode::entries(&buf)
                    .into_iter()
                    .map(|e| (e, e.rect.dist2_point(p)))
                    .collect();
                let mut got = Vec::new();
                let scanned = scan_min_dist2(&EntryScan::of_node(&buf), p, |e, d| got.push((e, d)));
                assert_eq!(scanned, n);
                assert_eq!(got, naive, "n={n} p={p:?}");
            }
        }
    }

    #[test]
    fn min_dist2_extreme_coordinates_match_reference() {
        // The widest domain `Rect::dist2_point` itself supports (per-axis
        // differences must fit i32, far beyond world coordinates): the
        // kernel must agree there too.
        const M: i32 = (1 << 30) - 1;
        let mut buf = vec![0u8; HDR + 2 * ENTRY];
        RectNode::init(&mut buf, true);
        let r = Rect::new(-M, -M, -M, -M);
        RectNode::push(&mut buf, Entry { rect: r, child: 0 });
        let r2 = Rect::new(M - 1, M - 1, M, M);
        RectNode::push(&mut buf, Entry { rect: r2, child: 1 });
        let p = Point::new(M, -M);
        let mut got = Vec::new();
        scan_min_dist2(&EntryScan::of_node(&buf), p, |e, d| got.push((e.child, d)));
        assert_eq!(got[0], (0, r.dist2_point(p)));
        assert_eq!(got[1], (1, r2.dist2_point(p)));
    }

    #[test]
    fn entry_scan_iter_agrees_with_entries_vec() {
        let mut rng = StdRng::seed_from_u64(14);
        let buf = random_page(&mut rng, 23);
        let scan = EntryScan::of_node(&buf);
        assert_eq!(scan.len(), 23);
        assert!(!scan.is_empty());
        assert_eq!(scan.iter().collect::<Vec<_>>(), RectNode::entries(&buf));
        let empty = random_page(&mut rng, 0);
        assert!(EntryScan::of_node(&empty).is_empty());
    }

    #[test]
    fn scan_ids_decodes_packed_u32() {
        let ids = [7u32, 0, u32::MAX, 41];
        let mut bytes = Vec::new();
        for id in ids {
            bytes.extend_from_slice(&id.to_le_bytes());
        }
        let mut got = Vec::new();
        scan_ids(&bytes, |id| got.push(id));
        assert_eq!(got, ids);
    }

    #[test]
    fn scan_keys_le_stops_at_hi_and_short_circuits() {
        let keys = [3u64, 9, 10, 15, 40];
        let mut bytes = Vec::new();
        for k in keys {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        let mut got = Vec::new();
        let r = scan_keys_le(&bytes, 15, &mut |k| {
            got.push(k);
            ControlFlow::Continue(())
        });
        assert_eq!(got, [3, 9, 10, 15]);
        assert!(r.is_continue());
        got.clear();
        let r = scan_keys_le(&bytes, 100, &mut |k| {
            got.push(k);
            if k >= 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(got, [3, 9, 10], "callback break stops the walk");
        assert!(r.is_break());
    }
}
