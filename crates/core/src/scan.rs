//! Hot-path scan kernels: zero-copy node views and explicit SIMD
//! geometric predicates over the structure-of-arrays page layout.
//!
//! Every query in this workspace bottoms out in the same inner loop —
//! "walk the entries of one node page, test each bounding rectangle
//! against the query region" — and the paper's wall-clock numbers are
//! dominated by it. This module centralizes that loop in three kernels
//! ([`scan_intersecting`], [`scan_containing_point`], [`scan_min_dist2`])
//! that
//!
//! * read the page bytes **in place** through an [`EntryScan`] view over
//!   the v2 lane layout of [`RectNode`] pages (no intermediate
//!   `Vec<Entry>`), and
//! * evaluate the rectangle predicate with explicit `std::arch` x86-64
//!   intrinsics: 8 entries per step with AVX2, 4 with SSE2, each step one
//!   vector compare per lane followed by **movemask survivor
//!   extraction** — the surviving entries drop out of a single scalar
//!   bit-walk over the mask, in storage order. This is the SIMD-ified
//!   R-tree scanning design: a structure-of-arrays node layout turns each
//!   predicate operand into one contiguous vector load, where the old
//!   interleaved layout needed a gather.
//!
//! The instruction set is picked once per process ([`active_isa`]) via
//! `is_x86_feature_detected!` — eagerly warmed at pool-open time by the
//! index constructors — with the portable scalar blocks kept as the
//! fallback for non-x86-64 targets and for the `LSDB_FORCE_SCALAR=1`
//! override (set it to pin the scalar path regardless of CPU; CI runs the
//! differential suite and the counter guard under both arms). Every ISA
//! arm emits identical survivors in identical order and returns identical
//! scan counts; `tests/kernel_differential.rs` in this crate proves it
//! exhaustively.
//!
//! The kernels are *counter-transparent*: each returns the number of
//! entries scanned, which is exactly the `bbox_comps` charge the caller
//! owes (one bounding-box computation per entry examined, matching what
//! the per-entry loops charged before). Filtering moved from the shared
//! engines into these kernels emits precisely the entries the engines
//! would have kept, so `QueryStats` are byte-identical either way.
//!
//! Two byte-array micro-kernels ride along for the non-rectangle
//! structures: [`scan_ids`] (uniform-grid bucket chains: packed `u32`
//! ids) and [`scan_keys_le`] (PMR quadtree B-tree leaves: sorted `u64`
//! keys) — so no structure crate keeps a private entry-decoding loop.

use crate::rectnode::{Entry, RectNode, HDR};
use lsdb_geom::{Point, Rect};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU8, Ordering};

/// Widest kernel batch: 8 × i32 lanes per AVX2 step (SSE2 runs 4, the
/// scalar fallback blocks by 8 for auto-vectorization). Differential
/// tests straddle this width to cover ragged tails.
pub const LANES: usize = 8;

/// A zero-copy view of one [`RectNode`] page's entry lanes.
///
/// Replaces `RectNode::entries(buf) -> Vec<Entry>` on the query path:
/// the view borrows the pinned page bytes and decodes on the fly, so a
/// node scan touches the allocator not at all. (`entries()` remains for
/// the build/split path, which genuinely wants an owned, reorderable
/// vector.)
#[derive(Clone, Copy)]
pub struct EntryScan<'a> {
    buf: &'a [u8],
    count: usize,
    /// Lane stride in bytes (`4 · capacity`).
    stride: usize,
}

impl<'a> EntryScan<'a> {
    /// View over the occupied entries of a node page.
    pub fn of_node(buf: &'a [u8]) -> EntryScan<'a> {
        let count = RectNode::count(buf);
        let stride = RectNode::lane_stride(buf.len());
        debug_assert!(4 * count <= stride, "count exceeds page capacity");
        EntryScan { buf, count, stride }
    }

    /// Number of entries in view.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Read lane `lane` (0 = xlo, 1 = ylo, 2 = xhi, 3 = yhi, 4 = child)
    /// at entry `i`.
    #[inline(always)]
    fn lane(&self, lane: usize, i: usize) -> i32 {
        let at = HDR + lane * self.stride + 4 * i;
        i32::from_le_bytes(self.buf[at..at + 4].try_into().unwrap())
    }

    /// Raw pointer to lane `lane` at entry `i`, for vector loads. A
    /// width-`W` load from here is in bounds whenever `i + W <=
    /// capacity`; the kernels only issue full-width loads with `i + W <=
    /// count <= capacity`.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn lane_ptr(&self, lane: usize, i: usize) -> *const u8 {
        debug_assert!(HDR + lane * self.stride + 4 * i < self.buf.len());
        unsafe { self.buf.as_ptr().add(HDR + lane * self.stride + 4 * i) }
    }

    /// Decode entry `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> Entry {
        debug_assert!(i < self.count);
        Entry {
            rect: Rect::new(
                self.lane(0, i),
                self.lane(1, i),
                self.lane(2, i),
                self.lane(3, i),
            ),
            child: self.lane(4, i) as u32,
        }
    }

    /// Decode entries one by one, in storage order.
    pub fn iter(&self) -> impl Iterator<Item = Entry> + 'a {
        let s = *self;
        (0..s.count).map(move |i| s.get(i))
    }
}

// ----------------------------------------------------------------------
// ISA selection
// ----------------------------------------------------------------------

/// Instruction set an entry-scan kernel runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Portable blocked-scalar fallback (also what LLVM auto-vectorizes).
    Scalar,
    /// 4-wide `std::arch` x86-64 SSE2 intrinsics.
    Sse2,
    /// 8-wide `std::arch` x86-64 AVX2 intrinsics.
    Avx2,
}

impl Isa {
    pub const ALL: [Isa; 3] = [Isa::Scalar, Isa::Sse2, Isa::Avx2];

    pub fn label(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }

    /// Can this ISA run on the current CPU?
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => true, // baseline on x86-64
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Cached process-wide selection: 0 = undecided, else `Isa` + 1.
static ACTIVE_ISA: AtomicU8 = AtomicU8::new(0);

/// The ISA the dispatching kernels use. Decided once per process — the
/// index constructors call this at pool-open time, so by the time a query
/// runs the answer is a cached atomic load. Honors the
/// `LSDB_FORCE_SCALAR=1` environment override (any value other than `0`
/// forces the scalar arm); otherwise picks the widest ISA
/// `is_x86_feature_detected!` reports.
pub fn active_isa() -> Isa {
    match ACTIVE_ISA.load(Ordering::Relaxed) {
        1 => Isa::Scalar,
        2 => Isa::Sse2,
        3 => Isa::Avx2,
        _ => {
            let isa = select_isa();
            let code = match isa {
                Isa::Scalar => 1,
                Isa::Sse2 => 2,
                Isa::Avx2 => 3,
            };
            ACTIVE_ISA.store(code, Ordering::Relaxed);
            isa
        }
    }
}

fn select_isa() -> Isa {
    if std::env::var_os("LSDB_FORCE_SCALAR").is_some_and(|v| v != *"0") {
        return Isa::Scalar;
    }
    if Isa::Avx2.available() {
        Isa::Avx2
    } else if Isa::Sse2.available() {
        Isa::Sse2
    } else {
        Isa::Scalar
    }
}

// ----------------------------------------------------------------------
// Dispatching kernels
// ----------------------------------------------------------------------

/// Emit every entry whose rectangle meets `w` (closed bounds, identical
/// to [`Rect::intersects`]), in storage order. Returns the number of
/// entries scanned — the caller's `bbox_comps` charge.
pub fn scan_intersecting(scan: &EntryScan, w: &Rect, f: impl FnMut(Entry)) -> usize {
    scan_intersecting_with(active_isa(), scan, w, f)
}

/// [`scan_intersecting`] on an explicit ISA (differential tests, bench).
/// The caller must only pass an [`Isa::available`] ISA.
pub fn scan_intersecting_with(
    isa: Isa,
    scan: &EntryScan,
    w: &Rect,
    mut f: impl FnMut(Entry),
) -> usize {
    match isa {
        Isa::Scalar => intersect_scalar(scan, w, &mut f),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => unsafe { intersect_sse2(scan, w, &mut f) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { intersect_avx2(scan, w, &mut f) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => intersect_scalar(scan, w, &mut f),
    }
    scan.len()
}

/// Emit every entry whose rectangle contains `p` (closed bounds,
/// identical to [`Rect::contains_point`]), in storage order. Returns the
/// number of entries scanned.
pub fn scan_containing_point(scan: &EntryScan, p: Point, f: impl FnMut(Entry)) -> usize {
    scan_containing_point_with(active_isa(), scan, p, f)
}

/// [`scan_containing_point`] on an explicit ISA.
pub fn scan_containing_point_with(
    isa: Isa,
    scan: &EntryScan,
    p: Point,
    mut f: impl FnMut(Entry),
) -> usize {
    match isa {
        Isa::Scalar => contain_scalar(scan, p, &mut f),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => unsafe { contain_sse2(scan, p, &mut f) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { contain_avx2(scan, p, &mut f) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => contain_scalar(scan, p, &mut f),
    }
    scan.len()
}

/// Emit every entry together with the exact squared distance from `p` to
/// its rectangle (identical to [`Rect::dist2_point`]; 0 inside) — the
/// SIMD distance lower bound feeding best-first nearest search. Returns
/// the number of entries scanned.
///
/// Domain: as with [`Rect::dist2_point`] itself, every per-axis
/// difference between `p` and a rectangle edge must fit `i32` (far beyond
/// the 2^14 world coordinates; the differential tests exercise ±2^30).
pub fn scan_min_dist2(scan: &EntryScan, p: Point, f: impl FnMut(Entry, i64)) -> usize {
    scan_min_dist2_with(active_isa(), scan, p, f)
}

/// [`scan_min_dist2`] on an explicit ISA.
pub fn scan_min_dist2_with(
    isa: Isa,
    scan: &EntryScan,
    p: Point,
    mut f: impl FnMut(Entry, i64),
) -> usize {
    match isa {
        Isa::Scalar => dist2_scalar(scan, p, &mut f),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => unsafe { dist2_sse2(scan, p, &mut f) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { dist2_avx2(scan, p, &mut f) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => dist2_scalar(scan, p, &mut f),
    }
    scan.len()
}

// ----------------------------------------------------------------------
// Scalar arms (portable fallback; LLVM auto-vectorizes the blocked form)
// ----------------------------------------------------------------------

fn intersect_scalar(scan: &EntryScan, w: &Rect, f: &mut impl FnMut(Entry)) {
    let n = scan.count;
    let mut i = 0;
    let mut keep = [false; LANES];
    while i + LANES <= n {
        for (j, k) in keep.iter_mut().enumerate() {
            // Non-short-circuiting `&`: all four comparisons evaluate
            // unconditionally, which is what lets LLVM fuse the lanes.
            *k = (w.min.x <= scan.lane(2, i + j))
                & (scan.lane(0, i + j) <= w.max.x)
                & (w.min.y <= scan.lane(3, i + j))
                & (scan.lane(1, i + j) <= w.max.y);
        }
        for (j, k) in keep.iter().enumerate() {
            if *k {
                f(scan.get(i + j));
            }
        }
        i += LANES;
    }
    for k in i..n {
        let e = scan.get(k);
        if w.intersects(&e.rect) {
            f(e);
        }
    }
}

fn contain_scalar(scan: &EntryScan, p: Point, f: &mut impl FnMut(Entry)) {
    let n = scan.count;
    let mut i = 0;
    let mut keep = [false; LANES];
    while i + LANES <= n {
        for (j, k) in keep.iter_mut().enumerate() {
            *k = (scan.lane(0, i + j) <= p.x)
                & (p.x <= scan.lane(2, i + j))
                & (scan.lane(1, i + j) <= p.y)
                & (p.y <= scan.lane(3, i + j));
        }
        for (j, k) in keep.iter().enumerate() {
            if *k {
                f(scan.get(i + j));
            }
        }
        i += LANES;
    }
    for k in i..n {
        let e = scan.get(k);
        if e.rect.contains_point(p) {
            f(e);
        }
    }
}

fn dist2_scalar(scan: &EntryScan, p: Point, f: &mut impl FnMut(Entry, i64)) {
    let (px, py) = (p.x as i64, p.y as i64);
    let n = scan.count;
    let mut i = 0;
    let mut d2 = [0i64; LANES];
    while i + LANES <= n {
        for (j, d) in d2.iter_mut().enumerate() {
            // Branch-free clamp: max(min - p, 0, p - max) per axis. For a
            // valid rectangle (min <= max) at most one of the outer terms
            // is positive, so this equals the if/else chain in
            // `Rect::dist2_point` exactly.
            let dx = (scan.lane(0, i + j) as i64 - px)
                .max(0)
                .max(px - scan.lane(2, i + j) as i64);
            let dy = (scan.lane(1, i + j) as i64 - py)
                .max(0)
                .max(py - scan.lane(3, i + j) as i64);
            *d = dx * dx + dy * dy;
        }
        for (j, d) in d2.iter().enumerate() {
            f(scan.get(i + j), *d);
        }
        i += LANES;
    }
    for k in i..n {
        let e = scan.get(k);
        f(e, e.rect.dist2_point(p));
    }
}

// ----------------------------------------------------------------------
// x86-64 SIMD arms
// ----------------------------------------------------------------------
//
// Shape shared by all six: broadcast the query operand, then per step
// load one vector from each coordinate lane, combine the four per-lane
// compares into a *miss* vector (a rectangle fails a closed-bounds test
// iff some strict `>` holds), movemask it, invert, and walk the set bits
// of the keep mask in ascending order — so survivors are emitted exactly
// in storage order, as the scalar arm does. Tails shorter than the
// vector width fall back to the per-entry scalar test, which keeps every
// load full-width and in bounds (`i + W <= count <= capacity`).

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn load8(scan: &EntryScan, lane: usize, i: usize) -> __m256i {
        unsafe { _mm256_loadu_si256(scan.lane_ptr(lane, i) as *const __m256i) }
    }

    #[inline(always)]
    unsafe fn load4(scan: &EntryScan, lane: usize, i: usize) -> __m128i {
        unsafe { _mm_loadu_si128(scan.lane_ptr(lane, i) as *const __m128i) }
    }

    /// Walk the set bits of `keep` in ascending order.
    #[inline(always)]
    fn each_bit(mut keep: u32, mut f: impl FnMut(usize)) {
        while keep != 0 {
            f(keep.trailing_zeros() as usize);
            keep &= keep - 1;
        }
    }

    /// Kick off the five lane streams before the first block. The SoA
    /// layout spreads one node's entries over five cache-line runs where
    /// the v1 interleaved layout was a single run; on a cold node the
    /// first touch of each lane would otherwise miss serially as the
    /// kernel reaches it (best-first nearest traversals visit mostly
    /// cold nodes, so they feel this the most). Overlapping the misses
    /// costs nothing when the page is already hot.
    #[inline(always)]
    unsafe fn prefetch_lanes(scan: &EntryScan) {
        if scan.count == 0 {
            return; // zero-capacity buffers have no lane bytes to touch
        }
        for lane in 0..5 {
            unsafe { _mm_prefetch::<_MM_HINT_T0>(scan.lane_ptr(lane, 0) as *const i8) };
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn intersect_avx2(scan: &EntryScan, w: &Rect, f: &mut impl FnMut(Entry)) {
        let n = scan.count;
        unsafe { prefetch_lanes(scan) };
        let (wminx, wmaxx) = (_mm256_set1_epi32(w.min.x), _mm256_set1_epi32(w.max.x));
        let (wminy, wmaxy) = (_mm256_set1_epi32(w.min.y), _mm256_set1_epi32(w.max.y));
        let mut i = 0;
        while i + 8 <= n {
            let xlo = load8(scan, 0, i);
            let ylo = load8(scan, 1, i);
            let xhi = load8(scan, 2, i);
            let yhi = load8(scan, 3, i);
            let miss = _mm256_or_si256(
                _mm256_or_si256(
                    _mm256_cmpgt_epi32(wminx, xhi),
                    _mm256_cmpgt_epi32(xlo, wmaxx),
                ),
                _mm256_or_si256(
                    _mm256_cmpgt_epi32(wminy, yhi),
                    _mm256_cmpgt_epi32(ylo, wmaxy),
                ),
            );
            let keep = !(_mm256_movemask_ps(_mm256_castsi256_ps(miss)) as u32) & 0xFF;
            each_bit(keep, |j| f(scan.get(i + j)));
            i += 8;
        }
        for k in i..n {
            let e = scan.get(k);
            if w.intersects(&e.rect) {
                f(e);
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn intersect_sse2(scan: &EntryScan, w: &Rect, f: &mut impl FnMut(Entry)) {
        let n = scan.count;
        unsafe { prefetch_lanes(scan) };
        let (wminx, wmaxx) = (_mm_set1_epi32(w.min.x), _mm_set1_epi32(w.max.x));
        let (wminy, wmaxy) = (_mm_set1_epi32(w.min.y), _mm_set1_epi32(w.max.y));
        let mut i = 0;
        while i + 4 <= n {
            let xlo = load4(scan, 0, i);
            let ylo = load4(scan, 1, i);
            let xhi = load4(scan, 2, i);
            let yhi = load4(scan, 3, i);
            let miss = _mm_or_si128(
                _mm_or_si128(_mm_cmpgt_epi32(wminx, xhi), _mm_cmpgt_epi32(xlo, wmaxx)),
                _mm_or_si128(_mm_cmpgt_epi32(wminy, yhi), _mm_cmpgt_epi32(ylo, wmaxy)),
            );
            let keep = !(_mm_movemask_ps(_mm_castsi128_ps(miss)) as u32) & 0xF;
            each_bit(keep, |j| f(scan.get(i + j)));
            i += 4;
        }
        for k in i..n {
            let e = scan.get(k);
            if w.intersects(&e.rect) {
                f(e);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn contain_avx2(scan: &EntryScan, p: Point, f: &mut impl FnMut(Entry)) {
        let n = scan.count;
        unsafe { prefetch_lanes(scan) };
        let px = _mm256_set1_epi32(p.x);
        let py = _mm256_set1_epi32(p.y);
        let mut i = 0;
        while i + 8 <= n {
            let xlo = load8(scan, 0, i);
            let ylo = load8(scan, 1, i);
            let xhi = load8(scan, 2, i);
            let yhi = load8(scan, 3, i);
            let miss = _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpgt_epi32(xlo, px), _mm256_cmpgt_epi32(px, xhi)),
                _mm256_or_si256(_mm256_cmpgt_epi32(ylo, py), _mm256_cmpgt_epi32(py, yhi)),
            );
            let keep = !(_mm256_movemask_ps(_mm256_castsi256_ps(miss)) as u32) & 0xFF;
            each_bit(keep, |j| f(scan.get(i + j)));
            i += 8;
        }
        for k in i..n {
            let e = scan.get(k);
            if e.rect.contains_point(p) {
                f(e);
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn contain_sse2(scan: &EntryScan, p: Point, f: &mut impl FnMut(Entry)) {
        let n = scan.count;
        unsafe { prefetch_lanes(scan) };
        let px = _mm_set1_epi32(p.x);
        let py = _mm_set1_epi32(p.y);
        let mut i = 0;
        while i + 4 <= n {
            let xlo = load4(scan, 0, i);
            let ylo = load4(scan, 1, i);
            let xhi = load4(scan, 2, i);
            let yhi = load4(scan, 3, i);
            let miss = _mm_or_si128(
                _mm_or_si128(_mm_cmpgt_epi32(xlo, px), _mm_cmpgt_epi32(px, xhi)),
                _mm_or_si128(_mm_cmpgt_epi32(ylo, py), _mm_cmpgt_epi32(py, yhi)),
            );
            let keep = !(_mm_movemask_ps(_mm_castsi128_ps(miss)) as u32) & 0xF;
            each_bit(keep, |j| f(scan.get(i + j)));
            i += 4;
        }
        for k in i..n {
            let e = scan.get(k);
            if e.rect.contains_point(p) {
                f(e);
            }
        }
    }

    // Distance kernels: dx = max(xlo − px, px − xhi, 0) per lane (exact
    // within the documented i32-difference domain), then dx² + dy² via
    // unsigned 32→64-bit lane multiplies — dx/dy are non-negative and
    // < 2^31, so `mul_epu32` of a lane with itself is the exact square.
    // Even-indexed entries come straight out of the register; odd-indexed
    // ones after a 32-bit lane shift.

    #[target_feature(enable = "avx2")]
    pub unsafe fn dist2_avx2(scan: &EntryScan, p: Point, f: &mut impl FnMut(Entry, i64)) {
        let n = scan.count;
        unsafe { prefetch_lanes(scan) };
        let px = _mm256_set1_epi32(p.x);
        let py = _mm256_set1_epi32(p.y);
        let zero = _mm256_setzero_si256();
        let mut i = 0;
        let mut even = [0i64; 4];
        let mut odd = [0i64; 4];
        while i + 8 <= n {
            let xlo = load8(scan, 0, i);
            let ylo = load8(scan, 1, i);
            let xhi = load8(scan, 2, i);
            let yhi = load8(scan, 3, i);
            let dx = _mm256_max_epi32(
                _mm256_max_epi32(_mm256_sub_epi32(xlo, px), _mm256_sub_epi32(px, xhi)),
                zero,
            );
            let dy = _mm256_max_epi32(
                _mm256_max_epi32(_mm256_sub_epi32(ylo, py), _mm256_sub_epi32(py, yhi)),
                zero,
            );
            let d2_even = _mm256_add_epi64(_mm256_mul_epu32(dx, dx), _mm256_mul_epu32(dy, dy));
            let dx_o = _mm256_srli_epi64(dx, 32);
            let dy_o = _mm256_srli_epi64(dy, 32);
            let d2_odd =
                _mm256_add_epi64(_mm256_mul_epu32(dx_o, dx_o), _mm256_mul_epu32(dy_o, dy_o));
            _mm256_storeu_si256(even.as_mut_ptr() as *mut __m256i, d2_even);
            _mm256_storeu_si256(odd.as_mut_ptr() as *mut __m256i, d2_odd);
            for j in 0..8 {
                let d = if j & 1 == 0 { even[j / 2] } else { odd[j / 2] };
                f(scan.get(i + j), d);
            }
            i += 8;
        }
        for k in i..n {
            let e = scan.get(k);
            f(e, e.rect.dist2_point(p));
        }
    }

    /// `max(a, b)` on i32 lanes without SSE4.1's `pmaxsd`.
    #[inline(always)]
    unsafe fn max_epi32_sse2(a: __m128i, b: __m128i) -> __m128i {
        unsafe {
            let gt = _mm_cmpgt_epi32(a, b);
            _mm_or_si128(_mm_and_si128(gt, a), _mm_andnot_si128(gt, b))
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn dist2_sse2(scan: &EntryScan, p: Point, f: &mut impl FnMut(Entry, i64)) {
        let n = scan.count;
        unsafe { prefetch_lanes(scan) };
        let px = _mm_set1_epi32(p.x);
        let py = _mm_set1_epi32(p.y);
        let zero = _mm_setzero_si128();
        let mut i = 0;
        let mut even = [0i64; 2];
        let mut odd = [0i64; 2];
        while i + 4 <= n {
            let xlo = load4(scan, 0, i);
            let ylo = load4(scan, 1, i);
            let xhi = load4(scan, 2, i);
            let yhi = load4(scan, 3, i);
            let dx = max_epi32_sse2(
                max_epi32_sse2(_mm_sub_epi32(xlo, px), _mm_sub_epi32(px, xhi)),
                zero,
            );
            let dy = max_epi32_sse2(
                max_epi32_sse2(_mm_sub_epi32(ylo, py), _mm_sub_epi32(py, yhi)),
                zero,
            );
            let d2_even = _mm_add_epi64(_mm_mul_epu32(dx, dx), _mm_mul_epu32(dy, dy));
            let dx_o = _mm_srli_epi64(dx, 32);
            let dy_o = _mm_srli_epi64(dy, 32);
            let d2_odd = _mm_add_epi64(_mm_mul_epu32(dx_o, dx_o), _mm_mul_epu32(dy_o, dy_o));
            _mm_storeu_si128(even.as_mut_ptr() as *mut __m128i, d2_even);
            _mm_storeu_si128(odd.as_mut_ptr() as *mut __m128i, d2_odd);
            for j in 0..4 {
                let d = if j & 1 == 0 { even[j / 2] } else { odd[j / 2] };
                f(scan.get(i + j), d);
            }
            i += 4;
        }
        for k in i..n {
            let e = scan.get(k);
            f(e, e.rect.dist2_point(p));
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{contain_avx2, contain_sse2, dist2_avx2, dist2_sse2, intersect_avx2, intersect_sse2};

// ----------------------------------------------------------------------
// Byte-array micro-kernels (non-rectangle structures)
// ----------------------------------------------------------------------

/// Decode a packed array of `u32` LE ids (a uniform-grid bucket chain
/// page's payload region) and emit each one.
pub fn scan_ids(bytes: &[u8], mut f: impl FnMut(u32)) {
    for chunk in bytes.chunks_exact(4) {
        f(u32::from_le_bytes(
            chunk.try_into().expect("exact id chunk"),
        ));
    }
}

/// Walk a packed array of ascending `u64` LE keys (a B-tree leaf's key
/// region), emitting each key `<= hi` and stopping at the first key past
/// `hi`. The callback's `Break` short-circuits, as in range scans.
pub fn scan_keys_le(
    bytes: &[u8],
    hi: u64,
    f: &mut impl FnMut(u64) -> ControlFlow<()>,
) -> ControlFlow<()> {
    for chunk in bytes.chunks_exact(8) {
        let k = u64::from_le_bytes(chunk.try_into().expect("exact key chunk"));
        if k > hi {
            break;
        }
        f(k)?;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rectnode::ENTRY;
    use lsdb_rng::StdRng;

    /// Build a node page holding `n` random entries, including degenerate
    /// (zero-area) rectangles — segments are often axis-aligned, so the
    /// kernels must handle `min == max` on either axis.
    fn random_page(rng: &mut StdRng, n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; HDR + n * ENTRY];
        RectNode::init(&mut buf, true);
        for i in 0..n {
            let x0 = rng.gen_range(-1000..1000);
            let y0 = rng.gen_range(-1000..1000);
            let (w, h) = if rng.gen_bool(0.25) {
                (0, 0) // zero-area rect
            } else {
                (rng.gen_range(0..100), rng.gen_range(0..100))
            };
            RectNode::push(
                &mut buf,
                Entry {
                    rect: Rect::new(x0, y0, x0 + w, y0 + h),
                    child: i as u32,
                },
            );
        }
        buf
    }

    /// The ISAs this host can run — every one must agree with the naive
    /// reference (the full cross-ISA matrix lives in
    /// `tests/kernel_differential.rs`).
    fn isas() -> Vec<Isa> {
        Isa::ALL.into_iter().filter(|i| i.available()).collect()
    }

    #[test]
    fn intersecting_matches_naive_loop() {
        let mut rng = StdRng::seed_from_u64(11);
        // Sizes straddle the widest block: full blocks, ragged tails, and
        // partially-filled nodes below one block.
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 50, 101] {
            let buf = random_page(&mut rng, n);
            let w = Rect::new(-300, -300, 250, 400);
            let naive: Vec<Entry> = RectNode::entries(&buf)
                .into_iter()
                .filter(|e| w.intersects(&e.rect))
                .collect();
            for isa in isas() {
                let mut got = Vec::new();
                let scanned =
                    scan_intersecting_with(isa, &EntryScan::of_node(&buf), &w, |e| got.push(e));
                assert_eq!(scanned, n, "kernel scans every entry");
                assert_eq!(got, naive, "n={n} isa={isa:?}");
            }
        }
    }

    #[test]
    fn containing_point_matches_naive_loop() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [0, 1, 3, 4, 6, 8, 11, 50] {
            let buf = random_page(&mut rng, n);
            // Probe corners and interiors of stored rects, not just random
            // points: closed-boundary semantics must match exactly.
            let mut probes = vec![Point::new(0, 0), Point::new(-37, 44)];
            for e in RectNode::entries(&buf) {
                probes.push(e.rect.min);
                probes.push(e.rect.max);
            }
            for p in probes {
                let naive: Vec<Entry> = RectNode::entries(&buf)
                    .into_iter()
                    .filter(|e| e.rect.contains_point(p))
                    .collect();
                for isa in isas() {
                    let mut got = Vec::new();
                    let scanned =
                        scan_containing_point_with(isa, &EntryScan::of_node(&buf), p, |e| {
                            got.push(e)
                        });
                    assert_eq!(scanned, n);
                    assert_eq!(got, naive, "n={n} p={p:?} isa={isa:?}");
                }
            }
        }
    }

    #[test]
    fn min_dist2_matches_rect_dist2_point() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [0, 1, 4, 5, 8, 9, 50] {
            let buf = random_page(&mut rng, n);
            for _ in 0..8 {
                let p = Point::new(rng.gen_range(-1500..1500), rng.gen_range(-1500..1500));
                let naive: Vec<(Entry, i64)> = RectNode::entries(&buf)
                    .into_iter()
                    .map(|e| (e, e.rect.dist2_point(p)))
                    .collect();
                for isa in isas() {
                    let mut got = Vec::new();
                    let scanned = scan_min_dist2_with(isa, &EntryScan::of_node(&buf), p, |e, d| {
                        got.push((e, d))
                    });
                    assert_eq!(scanned, n);
                    assert_eq!(got, naive, "n={n} p={p:?} isa={isa:?}");
                }
            }
        }
    }

    #[test]
    fn min_dist2_extreme_coordinates_match_reference() {
        // The widest domain `Rect::dist2_point` itself supports (per-axis
        // differences must fit i32, far beyond world coordinates): every
        // ISA arm must agree there too.
        const M: i32 = (1 << 30) - 1;
        let mut buf = vec![0u8; HDR + 9 * ENTRY];
        RectNode::init(&mut buf, true);
        let r = Rect::new(-M, -M, -M, -M);
        let r2 = Rect::new(M - 1, M - 1, M, M);
        RectNode::push(&mut buf, Entry { rect: r, child: 0 });
        RectNode::push(&mut buf, Entry { rect: r2, child: 1 });
        // Pad to a full 8-block plus a tail so the vector path runs.
        for c in 2..9 {
            RectNode::push(
                &mut buf,
                Entry {
                    rect: Rect::new(-M, -M, M, M),
                    child: c,
                },
            );
        }
        let p = Point::new(M, -M);
        for isa in isas() {
            let mut got = Vec::new();
            scan_min_dist2_with(isa, &EntryScan::of_node(&buf), p, |e, d| {
                got.push((e.child, d))
            });
            assert_eq!(got[0], (0, r.dist2_point(p)), "isa={isa:?}");
            assert_eq!(got[1], (1, r2.dist2_point(p)), "isa={isa:?}");
            assert_eq!(got[2], (2, 0), "inside the padded rect, isa={isa:?}");
        }
    }

    #[test]
    fn entry_scan_iter_agrees_with_entries_vec() {
        let mut rng = StdRng::seed_from_u64(14);
        let buf = random_page(&mut rng, 23);
        let scan = EntryScan::of_node(&buf);
        assert_eq!(scan.len(), 23);
        assert!(!scan.is_empty());
        assert_eq!(scan.iter().collect::<Vec<_>>(), RectNode::entries(&buf));
        let empty = random_page(&mut rng, 0);
        assert!(EntryScan::of_node(&empty).is_empty());
    }

    #[test]
    fn active_isa_is_cached_and_available() {
        let isa = active_isa();
        assert!(isa.available());
        assert_eq!(active_isa(), isa, "selection is sticky");
    }

    #[test]
    fn scan_ids_decodes_packed_u32() {
        let ids = [7u32, 0, u32::MAX, 41];
        let mut bytes = Vec::new();
        for id in ids {
            bytes.extend_from_slice(&id.to_le_bytes());
        }
        let mut got = Vec::new();
        scan_ids(&bytes, |id| got.push(id));
        assert_eq!(got, ids);
    }

    #[test]
    fn scan_keys_le_stops_at_hi_and_short_circuits() {
        let keys = [3u64, 9, 10, 15, 40];
        let mut bytes = Vec::new();
        for k in keys {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        let mut got = Vec::new();
        let r = scan_keys_le(&bytes, 15, &mut |k| {
            got.push(k);
            ControlFlow::Continue(())
        });
        assert_eq!(got, [3, 9, 10, 15]);
        assert!(r.is_continue());
        got.clear();
        let r = scan_keys_le(&bytes, 100, &mut |k| {
            got.push(k);
            if k >= 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(got, [3, 9, 10], "callback break stops the walk");
        assert!(r.is_break());
    }
}
