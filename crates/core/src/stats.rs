use crate::seg_table::SegCache;
use lsdb_pager::{DiskStats, PoolCtx};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of the three quantities the paper measures per query, plus
/// segment-table disk activity (reported separately because segment records
/// cluster: "although many segments will be involved, there will only be
/// minor differences in disk activity").
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct QueryStats {
    /// Index-structure disk accesses (buffer-pool misses + dirty
    /// write-backs of index pages).
    pub disk: DiskStats,
    /// Segment comparisons — accesses to the disk-resident segment table.
    pub seg_comps: u64,
    /// Bounding-box computations (R-trees) or bounding-bucket / node
    /// computations (PMR quadtree).
    pub bbox_comps: u64,
    /// Segment-table disk accesses.
    pub seg_disk: DiskStats,
}

impl QueryStats {
    /// Element-wise difference (for before/after measurement windows).
    pub fn since(self, earlier: QueryStats) -> QueryStats {
        QueryStats {
            disk: self.disk - earlier.disk,
            seg_comps: self.seg_comps - earlier.seg_comps,
            bbox_comps: self.bbox_comps - earlier.bbox_comps,
            seg_disk: self.seg_disk - earlier.seg_disk,
        }
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: QueryStats) {
        self.disk.reads += other.disk.reads;
        self.disk.writes += other.disk.writes;
        self.seg_comps += other.seg_comps;
        self.bbox_comps += other.bbox_comps;
        self.seg_disk.reads += other.seg_disk.reads;
        self.seg_disk.writes += other.seg_disk.writes;
    }
}

/// Per-query execution context: every `&self` query on a
/// [`crate::SpatialIndex`] threads one of these through and charges all of
/// its metric counting here instead of mutating the index.
///
/// The context owns two page-pin handles ([`PoolCtx`]) — one against the
/// index-node pool, one against the segment-table pool — plus the two pure
/// counters. Because a query's counters live entirely in its context, the
/// totals of a query batch are a plain sum of per-query values: identical
/// whether the batch ran on one thread or sixteen.
#[derive(Default)]
pub struct QueryCtx {
    /// Pin handle + disk counters for index-structure pages.
    pub index: PoolCtx,
    /// Pin handle + disk counters for segment-table pages.
    pub seg: PoolCtx,
    /// Segment comparisons (segment-table record fetches).
    pub seg_comps: u64,
    /// Bounding-box / bounding-bucket computations.
    pub bbox_comps: u64,
    /// Reusable traversal scratch (stacks, priority queue, dedup set) owned
    /// by the shared engines in [`crate::traverse`]. Deliberately survives
    /// [`QueryCtx::reset`] so steady-state queries allocate nothing.
    scratch: Option<Box<dyn Any + Send>>,
    /// Direct-mapped cache of decoded segment records, consulted by
    /// [`crate::SegmentTable::get`]. Invalidated by [`QueryCtx::reset`]
    /// alongside the pins (its correctness argument depends on that — see
    /// `SegCache`); its storage is inline, so like `scratch` it costs the
    /// allocator nothing across queries.
    pub(crate) seg_cache: SegCache,
}

impl QueryCtx {
    pub fn new() -> Self {
        QueryCtx::default()
    }

    /// Drop pins and zero every counter, readying the context for the next
    /// query without reallocating its pin tables.
    pub fn reset(&mut self) {
        self.index.reset();
        self.seg.reset();
        self.seg_comps = 0;
        self.bbox_comps = 0;
        self.seg_cache.invalidate();
    }

    /// Move to the next query of a *batch* without dropping warmth: retire
    /// both pin sets (advancing their epochs, zeroing disk counters) and
    /// zero the comparison counters, but keep the pinned page bytes and
    /// the segment mini-cache contents.
    ///
    /// Counters stay byte-identical to a [`QueryCtx::reset`] context
    /// because warm pins replay their recorded charge on first touch in
    /// the new epoch (see [`PoolCtx::retire_pins`]) and the mini-cache
    /// re-pins a record's page before serving a stale-epoch hit. Only
    /// valid while the underlying pools are in a read-only phase; any
    /// build-path mutation in between requires [`QueryCtx::reset`].
    pub fn next_query(&mut self) {
        self.index.retire_pins();
        self.seg.retire_pins();
        self.seg_comps = 0;
        self.bbox_comps = 0;
        // seg_cache deliberately survives: its per-slot epochs are checked
        // against the segment pool's epoch on every hit.
    }

    /// Take the cached traversal scratch, if any (engine-internal).
    pub(crate) fn take_scratch_slot(&mut self) -> Option<Box<dyn Any + Send>> {
        self.scratch.take()
    }

    /// Return a traversal scratch for the next query (engine-internal).
    pub(crate) fn put_scratch_slot(&mut self, s: Box<dyn Any + Send>) {
        self.scratch = Some(s);
    }

    /// The paper-metric snapshot of this context.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            disk: self.index.stats,
            seg_comps: self.seg_comps,
            bbox_comps: self.bbox_comps,
            seg_disk: self.seg.stats,
        }
    }
}

/// Lock-free accumulator of [`QueryStats`] shared by many query threads.
///
/// Each worker finishes a query, snapshots its [`QueryCtx`] and folds the
/// result in with [`SharedStats::add`]; any thread can take a consistent
/// running total with [`SharedStats::snapshot`] without stopping the
/// workers. Because every counter is a plain sum of per-query values (the
/// shared-read guarantee), the aggregate is independent of which worker
/// served which query — a server's `STATS` op reports the same totals a
/// sequential run would.
#[derive(Default, Debug)]
pub struct SharedStats {
    queries: AtomicU64,
    disk_reads: AtomicU64,
    disk_writes: AtomicU64,
    seg_comps: AtomicU64,
    bbox_comps: AtomicU64,
    seg_disk_reads: AtomicU64,
    seg_disk_writes: AtomicU64,
}

impl SharedStats {
    pub fn new() -> Self {
        SharedStats::default()
    }

    /// Fold one query's stats into the shared totals.
    pub fn add(&self, s: QueryStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.disk_reads.fetch_add(s.disk.reads, Ordering::Relaxed);
        self.disk_writes.fetch_add(s.disk.writes, Ordering::Relaxed);
        self.seg_comps.fetch_add(s.seg_comps, Ordering::Relaxed);
        self.bbox_comps.fetch_add(s.bbox_comps, Ordering::Relaxed);
        self.seg_disk_reads
            .fetch_add(s.seg_disk.reads, Ordering::Relaxed);
        self.seg_disk_writes
            .fetch_add(s.seg_disk.writes, Ordering::Relaxed);
    }

    /// Number of queries folded in so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// A point-in-time total. Taken between batches it is exact; taken
    /// while workers are mid-[`SharedStats::add`] each counter is still a
    /// valid running sum (counters are only ever added to).
    pub fn snapshot(&self) -> QueryStats {
        QueryStats {
            disk: DiskStats {
                reads: self.disk_reads.load(Ordering::Relaxed),
                writes: self.disk_writes.load(Ordering::Relaxed),
            },
            seg_comps: self.seg_comps.load(Ordering::Relaxed),
            bbox_comps: self.bbox_comps.load(Ordering::Relaxed),
            seg_disk: DiskStats {
                reads: self.seg_disk_reads.load(Ordering::Relaxed),
                writes: self.seg_disk_writes.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs(r: u64, w: u64, sc: u64, bc: u64) -> QueryStats {
        QueryStats {
            disk: DiskStats {
                reads: r,
                writes: w,
            },
            seg_comps: sc,
            bbox_comps: bc,
            seg_disk: DiskStats::default(),
        }
    }

    #[test]
    fn since_subtracts() {
        let later = qs(10, 5, 100, 1000);
        let earlier = qs(4, 2, 40, 100);
        let d = later.since(earlier);
        assert_eq!(d, qs(6, 3, 60, 900));
    }

    #[test]
    fn add_accumulates() {
        let mut acc = qs(1, 1, 1, 1);
        acc.add(qs(2, 3, 4, 5));
        assert_eq!(acc, qs(3, 4, 5, 6));
    }

    #[test]
    fn shared_stats_accumulate_across_threads() {
        let shared = SharedStats::new();
        let shared = &shared;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..25 {
                        shared.add(qs(1, 0, 2, 3));
                    }
                });
            }
        });
        assert_eq!(shared.queries(), 100);
        assert_eq!(shared.snapshot(), qs(100, 0, 200, 300));
    }

    #[test]
    fn ctx_stats_snapshot_and_reset() {
        let mut ctx = QueryCtx::new();
        ctx.seg_comps = 3;
        ctx.bbox_comps = 7;
        ctx.index.stats.reads = 2;
        ctx.seg.stats.reads = 1;
        assert_eq!(
            ctx.stats(),
            QueryStats {
                disk: DiskStats {
                    reads: 2,
                    writes: 0
                },
                seg_comps: 3,
                bbox_comps: 7,
                seg_disk: DiskStats {
                    reads: 1,
                    writes: 0
                },
            }
        );
        ctx.reset();
        assert_eq!(ctx.stats(), QueryStats::default());
    }
}
