//! Live mutation layer: a durable operation log and a concurrently
//! readable index wrapper.
//!
//! The paper's experiments build each structure once from a polygonal map
//! and then measure read-only queries. This module adds the missing
//! *online* half: segments can be inserted and deleted while queries run,
//! and every mutation is made durable **before** it is applied, so a
//! store killed at any instant recovers to a prefix of the acknowledged
//! operations.
//!
//! The design treats the four spatial structures as *derived* state. The
//! durable truth is [`DurableMap`] — an append-only log of [`MapOp`]s
//! (insert segment / delete id) stored in fixed-size records on pages
//! behind a [`DurableStorage`] WAL. Recovery replays the op log into a
//! freshly built empty index ([`DurableMap::replay_into`]); because
//! segment ids are assigned by append order and every structure's
//! maintenance path is deterministic, the replayed index is *identical* —
//! page images, residency and all — to the index the crashed process had
//! built, which is what the byte-equality crash tests assert.
//!
//! [`LiveIndex`] composes the op log with an index behind a
//! [`RwLock`]: queries share the read side (the query path of every
//! structure is `&self` already), mutations take the write side only
//! *after* the op has committed to the log. A generation counter
//! ([`LiveIndex::epoch`]) ticks on every applied mutation so readers can
//! detect change without holding the lock.

use crate::index::SpatialIndex;
use crate::SegId;
use lsdb_geom::{Point, Segment};
use lsdb_pager::wal::LogDevice;
use lsdb_pager::{DurableStorage, Lsn, MemLog, MemStorage, PageId, RecoveryReport, Storage};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// One logged mutation of the segment set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapOp {
    /// Append this segment to the segment table and index it. The id it
    /// receives is the table length at apply time — a pure function of
    /// the op's position in the log.
    Insert(Segment),
    /// Unindex the segment with this id (the table itself is append-only,
    /// so the record stays; the id is simply no longer live).
    Delete(SegId),
}

/// Bytes per op record: a kind byte plus a 16-byte payload (four `i32`
/// coordinates for an insert; a `u32` id, zero-padded, for a delete).
pub const OP_BYTES: usize = 17;

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// Magic bytes opening the header page of a [`DurableMap`] store. The
/// trailing digit is the map-format version; it moved to 2 together with
/// the structure-of-arrays node-page layout (format v2 stores also carry
/// the versioned `FileStorage` superblock). A v1 store is recognized and
/// rejected with a version message, not a generic bad-magic error.
const MAGIC: &[u8; 8] = b"LSDBMAP2";
const MAGIC_V1: &[u8; 8] = b"LSDBMAP1";

fn encode_op(op: &MapOp, out: &mut [u8]) {
    debug_assert_eq!(out.len(), OP_BYTES);
    out.fill(0);
    match *op {
        MapOp::Insert(seg) => {
            out[0] = KIND_INSERT;
            out[1..5].copy_from_slice(&seg.a.x.to_le_bytes());
            out[5..9].copy_from_slice(&seg.a.y.to_le_bytes());
            out[9..13].copy_from_slice(&seg.b.x.to_le_bytes());
            out[13..17].copy_from_slice(&seg.b.y.to_le_bytes());
        }
        MapOp::Delete(id) => {
            out[0] = KIND_DELETE;
            out[1..5].copy_from_slice(&id.0.to_le_bytes());
        }
    }
}

fn decode_op(buf: &[u8]) -> io::Result<MapOp> {
    debug_assert_eq!(buf.len(), OP_BYTES);
    let word = |at: usize| i32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
    match buf[0] {
        KIND_INSERT => Ok(MapOp::Insert(Segment {
            a: Point {
                x: word(1),
                y: word(5),
            },
            b: Point {
                x: word(9),
                y: word(13),
            },
        })),
        KIND_DELETE => Ok(MapOp::Delete(SegId(word(1) as u32))),
        k => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("durable map: unknown op kind {k}"),
        )),
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The durable source of truth for a live segment database: an
/// append-only log of [`MapOp`]s paged behind a [`DurableStorage`] WAL.
///
/// Page 0 is a header (magic, op count, page size); pages 1… hold
/// [`OP_BYTES`]-sized records, `page_size / OP_BYTES` per page. Appends
/// group-commit: a batch of ops dirties at most a handful of tail pages
/// plus the header and costs one log fsync however many ops it carries.
///
/// The type is storage-erased (`Box<dyn Storage>` / `Box<dyn
/// LogDevice>`) so volatile in-memory maps, file-backed maps, and
/// fault-wrapped crash-test maps all share one concrete type.
pub struct DurableMap {
    store: DurableStorage<Box<dyn Storage + Send>, Box<dyn LogDevice>>,
    /// Every committed op, in log order — the replay source.
    ops: Vec<MapOp>,
    page_size: usize,
    per_page: usize,
}

impl DurableMap {
    /// Open (or create) an op log over `base` + `log`, recovering from
    /// whatever bytes survived a crash. An empty base/log pair is
    /// initialised with a committed header page.
    pub fn open(
        base: Box<dyn Storage + Send>,
        log: Box<dyn LogDevice>,
    ) -> io::Result<(Self, RecoveryReport)> {
        let page_size = base.page_size();
        let (store, report) = DurableStorage::open(base, log)?;
        let mut map = DurableMap {
            store,
            ops: Vec::new(),
            page_size,
            per_page: page_size / OP_BYTES,
        };
        if map.store.num_pages() == 0 {
            let pid = map.store.grow()?;
            debug_assert_eq!(pid, PageId(0));
            map.write_header(0)?;
            map.store.commit()?;
        } else {
            map.load()?;
        }
        Ok((map, report))
    }

    /// A volatile map (in-memory pages and log): live mutation semantics
    /// without persistence, for servers running on a transient store.
    pub fn volatile(page_size: usize) -> DurableMap {
        let (map, _) = DurableMap::open(
            Box::new(MemStorage::new(page_size)),
            Box::new(MemLog::new()),
        )
        .expect("in-memory op log cannot fail to open");
        map
    }

    fn write_header(&mut self, count: u64) -> io::Result<()> {
        let mut page = vec![0u8; self.page_size];
        page[..8].copy_from_slice(MAGIC);
        page[8..16].copy_from_slice(&count.to_le_bytes());
        page[16..20].copy_from_slice(&(self.page_size as u32).to_le_bytes());
        self.store.write_page(PageId(0), &page)
    }

    /// Parse the header and every op record out of a recovered store.
    fn load(&mut self) -> io::Result<()> {
        let mut page = vec![0u8; self.page_size];
        self.store.read_page(PageId(0), &mut page)?;
        if &page[..8] != MAGIC {
            if &page[..8] == MAGIC_V1 {
                return Err(bad_data(
                    "durable map: store is format version 1 (pre-SoA page \
                     layout), which this build does not read",
                ));
            }
            return Err(bad_data("durable map: bad magic in header page"));
        }
        let stored_ps = u32::from_le_bytes(page[16..20].try_into().unwrap()) as usize;
        if stored_ps != self.page_size {
            return Err(bad_data(format!(
                "durable map: store has {stored_ps}-byte pages, opened with {}",
                self.page_size
            )));
        }
        let count = u64::from_le_bytes(page[8..16].try_into().unwrap()) as usize;
        let pages_needed = count.div_ceil(self.per_page) as u32;
        if self.store.num_pages() < pages_needed + 1 {
            return Err(bad_data("durable map: op pages missing for header count"));
        }
        self.ops.reserve(count);
        for i in 0..count {
            let pid = PageId(1 + (i / self.per_page) as u32);
            let slot = i % self.per_page;
            if slot == 0 {
                self.store.read_page(pid, &mut page)?;
            }
            self.ops
                .push(decode_op(&page[slot * OP_BYTES..][..OP_BYTES])?);
        }
        Ok(())
    }

    /// Append one op durably. Equivalent to `append_all(&[op])`.
    pub fn append(&mut self, op: MapOp) -> io::Result<Lsn> {
        self.append_all(std::slice::from_ref(&op))
    }

    /// Append a batch of ops and group-commit them: the records land on
    /// tail pages, the header count is bumped, and the whole batch
    /// becomes durable with a single log append + fsync. On error
    /// nothing is appended (the WAL's pending tier is simply overwritten
    /// by the next attempt).
    pub fn append_all(&mut self, ops: &[MapOp]) -> io::Result<Lsn> {
        if ops.is_empty() {
            return Ok(self.store.last_lsn());
        }
        let mut page = vec![0u8; self.page_size];
        let mut cur: Option<PageId> = None;
        let mut count = self.ops.len();
        for op in ops {
            let pid = PageId(1 + (count / self.per_page) as u32);
            if cur != Some(pid) {
                if let Some(prev) = cur {
                    self.store.write_page(prev, &page)?;
                }
                while self.store.num_pages() <= pid.0 {
                    self.store.grow()?;
                }
                self.store.read_page(pid, &mut page)?;
                cur = Some(pid);
            }
            let slot = count % self.per_page;
            encode_op(op, &mut page[slot * OP_BYTES..][..OP_BYTES]);
            count += 1;
        }
        if let Some(prev) = cur {
            self.store.write_page(prev, &page)?;
        }
        self.write_header(count as u64)?;
        let lsn = self.store.commit()?;
        self.ops.extend_from_slice(ops);
        Ok(lsn)
    }

    /// Fold the log into the base store and truncate it (see
    /// [`DurableStorage::checkpoint`]).
    pub fn checkpoint(&mut self) -> io::Result<Lsn> {
        self.store.checkpoint()
    }

    /// Every committed op in log order.
    pub fn ops(&self) -> &[MapOp] {
        &self.ops
    }

    /// Number of committed ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// LSN of the last committed record in the current log generation.
    pub fn last_lsn(&self) -> Lsn {
        self.store.last_lsn()
    }

    /// Bytes currently in the WAL device (0 right after a checkpoint).
    pub fn log_len(&self) -> u64 {
        self.store.log_len()
    }

    /// Replay the full op history into `index`, which must be in the same
    /// state the live index was in when logging began — freshly built
    /// over the same base map (or empty, if the ops started from an empty
    /// index). Inserts push into the segment table (ids are assigned by
    /// table position, so against an identical base they match the
    /// original assignment exactly) and deletes unindex. After replay the
    /// index is operation-for-operation identical to one that executed
    /// the ops live.
    pub fn replay_into(&self, index: &mut dyn SpatialIndex) {
        for op in &self.ops {
            match *op {
                MapOp::Insert(seg) => {
                    let id = index.seg_table_mut().push(seg);
                    index.insert(id);
                }
                MapOp::Delete(id) => {
                    index.remove(id);
                }
            }
        }
    }
}

/// An index that accepts durable mutations while serving concurrent
/// readers.
///
/// * **Readers** take the shared side of an [`RwLock`] and run the
///   ordinary `&self` query path — counters, pinned-page charging and
///   all. Many readers proceed in parallel.
/// * **Writers** first commit the op to the [`DurableMap`] (WAL fsync —
///   the op is durable before anything observable changes), then take
///   the exclusive side to apply it, then bump the epoch.
///
/// Lock order is always op-log mutex → index lock, and readers take only
/// the index lock, so the pair cannot deadlock. A mutation between a
/// reader's two queries can change results — that is the point — but no
/// reader ever observes a half-applied mutation.
pub struct LiveIndex {
    index: RwLock<Box<dyn SpatialIndex>>,
    map: Mutex<DurableMap>,
    epoch: AtomicU64,
}

impl LiveIndex {
    /// Wrap `index`, whose current contents must be the replay of
    /// `map`'s op history (both empty, or index rebuilt via
    /// [`DurableMap::replay_into`], or the same ops applied live).
    pub fn new(index: Box<dyn SpatialIndex>, map: DurableMap) -> LiveIndex {
        LiveIndex {
            index: RwLock::new(index),
            map: Mutex::new(map),
            epoch: AtomicU64::new(0),
        }
    }

    /// Wrap an already-built index with a volatile op log: mutations are
    /// applied live and logged in memory, but nothing persists. Used by
    /// servers running on transient stores, where the "durability" half
    /// degenerates gracefully to plain serialised mutation.
    pub fn volatile(index: Box<dyn SpatialIndex>) -> LiveIndex {
        LiveIndex::new(index, DurableMap::volatile(lsdb_pager::DEFAULT_PAGE_SIZE))
    }

    /// Durably insert a segment: commit the op to the log, then append
    /// it to the segment table and index it. Returns the assigned id and
    /// the commit LSN.
    pub fn insert(&self, seg: Segment) -> io::Result<(SegId, Lsn)> {
        let mut map = self.map.lock().unwrap();
        let lsn = map.append(MapOp::Insert(seg))?;
        let mut index = self.index.write().unwrap();
        let id = index.seg_table_mut().push(seg);
        index.insert(id);
        self.epoch.fetch_add(1, Ordering::Release);
        Ok((id, lsn))
    }

    /// Durably delete a segment. An id past the end of the segment table
    /// is not an applicable op and is **not** logged: the call returns
    /// `(false, last_lsn)` without touching the index. A valid id that
    /// is already deleted logs the (idempotent) op and returns `false`.
    pub fn remove(&self, id: SegId) -> io::Result<(bool, Lsn)> {
        let mut map = self.map.lock().unwrap();
        {
            let index = self.index.read().unwrap();
            if id.0 >= index.seg_table().len() {
                return Ok((false, map.last_lsn()));
            }
        }
        let lsn = map.append(MapOp::Delete(id))?;
        let mut index = self.index.write().unwrap();
        let removed = index.remove(id);
        self.epoch.fetch_add(1, Ordering::Release);
        Ok((removed, lsn))
    }

    /// Checkpoint the op log: fold the WAL into its base store and
    /// truncate the log. Readers are unaffected (the index lock is not
    /// taken), but the epoch still ticks: epoch-keyed consumers (the
    /// server's reply cache) treat every acknowledged `FLUSH` as an
    /// invalidation point, conservatively orphaning entries from before
    /// the checkpoint.
    pub fn flush(&self) -> io::Result<Lsn> {
        let lsn = self.map.lock().unwrap().checkpoint()?;
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(lsn)
    }

    /// Run `f` against the index under the shared read lock.
    pub fn with_read<R>(&self, f: impl FnOnce(&dyn SpatialIndex) -> R) -> R {
        let guard = self.index.read().unwrap();
        f(&**guard)
    }

    /// Run `f` against the index under the exclusive write lock, without
    /// logging anything. For maintenance that does not change the
    /// logical segment set (cache clearing, stats resets).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut dyn SpatialIndex) -> R) -> R {
        let mut guard = self.index.write().unwrap();
        f(&mut **guard)
    }

    /// Generation counter: incremented after every applied mutation.
    /// Readers can compare epochs across queries to detect interleaved
    /// writes without holding any lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of committed ops in the log.
    pub fn ops_len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// LSN of the last committed op.
    pub fn last_lsn(&self) -> Lsn {
        self.map.lock().unwrap().last_lsn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::QueryCtx;
    use crate::{IndexConfig, QueryStats, SegmentTable};
    use lsdb_geom::Rect;
    use lsdb_pager::fault::FaultyLog;
    use std::collections::BTreeSet;

    const PS: usize = 128;

    fn seg(ax: i32, ay: i32, bx: i32, by: i32) -> Segment {
        Segment {
            a: Point { x: ax, y: ay },
            b: Point { x: bx, y: by },
        }
    }

    fn mem_map() -> (DurableMap, MemLog) {
        let log = MemLog::new();
        let handle = log.clone();
        let (map, _) = DurableMap::open(Box::new(MemStorage::new(PS)), Box::new(log)).unwrap();
        (map, handle)
    }

    fn reopen(bytes: Vec<u8>) -> DurableMap {
        let (map, _) = DurableMap::open(
            Box::new(MemStorage::new(PS)),
            Box::new(MemLog::from_bytes(bytes)),
        )
        .unwrap();
        map
    }

    /// A minimal list-backed [`SpatialIndex`]: enough structure to prove
    /// the live layer's replay and locking semantics in-core (the real
    /// structures exercise it from the bench crate).
    struct ListIndex {
        table: SegmentTable,
        alive: BTreeSet<SegId>,
    }

    impl ListIndex {
        fn new() -> ListIndex {
            let cfg = IndexConfig::default();
            ListIndex {
                table: SegmentTable::new(cfg.page_size, cfg.pool_pages),
                alive: BTreeSet::new(),
            }
        }
    }

    impl SpatialIndex for ListIndex {
        fn name(&self) -> &'static str {
            "list"
        }
        fn seg_table(&self) -> &SegmentTable {
            &self.table
        }
        fn seg_table_mut(&mut self) -> &mut SegmentTable {
            &mut self.table
        }
        fn insert(&mut self, id: SegId) {
            self.alive.insert(id);
        }
        fn remove(&mut self, id: SegId) -> bool {
            self.alive.remove(&id)
        }
        fn len(&self) -> usize {
            self.alive.len()
        }
        fn find_incident(&self, p: Point, ctx: &mut QueryCtx) -> Vec<SegId> {
            self.alive
                .iter()
                .copied()
                .filter(|&id| self.table.get(id, ctx).has_endpoint(p))
                .collect()
        }
        fn nearest(&self, p: Point, ctx: &mut QueryCtx) -> Option<SegId> {
            self.alive
                .iter()
                .copied()
                .map(|id| (self.table.get(id, ctx).dist2_point(p), id))
                .min()
                .map(|(_, id)| id)
        }
        fn window(&self, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId> {
            self.alive
                .iter()
                .copied()
                .filter(|&id| w.intersects_segment(&self.table.get(id, ctx)))
                .collect()
        }
        fn stats(&self) -> QueryStats {
            QueryStats::default()
        }
        fn reset_stats(&mut self) {}
        fn size_bytes(&self) -> u64 {
            0
        }
        fn clear_cache(&mut self) {}
    }

    #[test]
    fn op_codec_roundtrips() {
        for op in [
            MapOp::Insert(seg(i32::MIN, -1, i32::MAX, 7)),
            MapOp::Delete(SegId(u32::MAX)),
            MapOp::Delete(SegId(0)),
        ] {
            let mut buf = [0u8; OP_BYTES];
            encode_op(&op, &mut buf);
            assert_eq!(decode_op(&buf).unwrap(), op);
        }
        assert!(decode_op(&[9u8; OP_BYTES]).is_err());
    }

    #[test]
    fn durable_map_survives_reopen_from_log() {
        let (mut map, log) = mem_map();
        // Enough ops to cross a page boundary (128 / 17 = 7 per page).
        let ops: Vec<MapOp> = (0..20)
            .map(|i| {
                if i % 5 == 4 {
                    MapOp::Delete(SegId(i as u32 / 5))
                } else {
                    MapOp::Insert(seg(i, i + 1, i + 2, i + 3))
                }
            })
            .collect();
        map.append_all(&ops[..9]).unwrap();
        for op in &ops[9..] {
            map.append(*op).unwrap();
        }
        assert_eq!(map.ops(), &ops[..]);

        let recovered = reopen(log.bytes());
        assert_eq!(recovered.ops(), &ops[..]);
    }

    #[test]
    fn empty_map_reopens_cleanly() {
        let (map, log) = mem_map();
        assert_eq!(map.len(), 0);
        let recovered = reopen(log.bytes());
        assert_eq!(recovered.len(), 0);
    }

    #[test]
    fn header_validation_rejects_foreign_stores() {
        // A base whose header page carries the wrong magic is refused.
        let mut base = MemStorage::new(PS);
        let p0 = base.grow().unwrap();
        base.write_page(p0, &[0x5A; PS]).unwrap();
        let err = DurableMap::open(Box::new(base), Box::new(MemLog::new()))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // So is a header recording a different page size: hand-craft a
        // valid header page that claims 64-byte pages, open at 128.
        let mut page = vec![0u8; PS];
        page[..8].copy_from_slice(MAGIC);
        page[16..20].copy_from_slice(&64u32.to_le_bytes());
        let mut base = MemStorage::new(PS);
        let p0 = base.grow().unwrap();
        base.write_page(p0, &page).unwrap();
        let err = DurableMap::open(Box::new(base), Box::new(MemLog::new()))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn v1_format_store_is_rejected_with_version_error() {
        // A store written by the format-v1 code (header magic "LSDBMAP1",
        // node pages in the interleaved layout) must be refused at open
        // with a message naming the version — not a decode panic, and not
        // a generic bad-magic complaint.
        let mut page = vec![0u8; PS];
        page[..8].copy_from_slice(MAGIC_V1);
        page[8..16].copy_from_slice(&0u64.to_le_bytes());
        page[16..20].copy_from_slice(&(PS as u32).to_le_bytes());
        let mut base = MemStorage::new(PS);
        let p0 = base.grow().unwrap();
        base.write_page(p0, &page).unwrap();
        let err = DurableMap::open(Box::new(base), Box::new(MemLog::new()))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("format version 1"), "{err}");
    }

    #[test]
    fn torn_log_at_every_byte_recovers_an_op_prefix() {
        // The crash property at the op level: cut the WAL anywhere and
        // the reopened map holds exactly the ops of some committed
        // prefix of append batches, never a partial batch.
        let (mut map, log) = mem_map();
        // Any cut before the first op batch (including inside the initial
        // header commit) recovers an empty map.
        let mut committed_prefixes = vec![(0usize, 0usize)];
        let batches: [&[MapOp]; 3] = [
            &[
                MapOp::Insert(seg(0, 0, 1, 1)),
                MapOp::Insert(seg(2, 2, 3, 3)),
            ],
            &[MapOp::Delete(SegId(0))],
            &[
                MapOp::Insert(seg(4, 4, 5, 5)),
                MapOp::Insert(seg(6, 6, 7, 7)),
                MapOp::Insert(seg(8, 8, 9, 9)),
            ],
        ];
        let mut all = Vec::new();
        for batch in batches {
            map.append_all(batch).unwrap();
            all.extend_from_slice(batch);
            committed_prefixes.push((log.len() as usize, all.len()));
        }
        let full = log.bytes();
        for cut in 0..=full.len() {
            let recovered = reopen(full[..cut].to_vec());
            let expect = committed_prefixes
                .iter()
                .rev()
                .find(|&&(len, _)| len <= cut)
                .map(|&(_, ops)| ops)
                .unwrap();
            assert_eq!(recovered.ops(), &all[..expect], "cut at {cut}");
        }
    }

    #[test]
    fn faulty_log_append_fails_cleanly_and_recovers_acknowledged_ops() {
        let (mut map, log) = mem_map();
        map.append(MapOp::Insert(seg(1, 1, 2, 2))).unwrap();
        let acknowledged = log.bytes();

        // Rebuild the map over a log that tears on the next append.
        let gen2 = MemLog::from_bytes(acknowledged);
        let handle = gen2.clone();
        let (mut map, _) = DurableMap::open(
            Box::new(MemStorage::new(PS)),
            Box::new(FaultyLog::new(gen2, 10)),
        )
        .unwrap();
        assert_eq!(map.len(), 1);
        assert!(map.append(MapOp::Insert(seg(3, 3, 4, 4))).is_err());
        assert_eq!(map.len(), 1, "failed append is not recorded");

        let recovered = reopen(handle.bytes());
        assert_eq!(recovered.ops(), &[MapOp::Insert(seg(1, 1, 2, 2))]);
    }

    #[test]
    fn checkpoint_truncates_log_and_map_stays_replayable() {
        let (mut map, _) = mem_map();
        map.append_all(&[
            MapOp::Insert(seg(0, 0, 5, 5)),
            MapOp::Insert(seg(5, 5, 9, 0)),
            MapOp::Delete(SegId(0)),
        ])
        .unwrap();
        assert!(map.log_len() > 0);
        map.checkpoint().unwrap();
        assert_eq!(map.log_len(), 0);
        assert_eq!(map.last_lsn(), Lsn::ZERO);

        let mut index = ListIndex::new();
        map.replay_into(&mut index);
        assert_eq!(index.len(), 1);
        assert_eq!(index.seg_table().len(), 2, "table is append-only");
        assert!(!index.alive.contains(&SegId(0)));
        assert!(index.alive.contains(&SegId(1)));
    }

    #[test]
    fn replay_matches_live_application() {
        let live = LiveIndex::new(Box::new(ListIndex::new()), DurableMap::volatile(PS));
        let mut ids = Vec::new();
        for i in 0..10 {
            let (id, _) = live.insert(seg(i, 0, i, 10)).unwrap();
            ids.push(id);
        }
        assert_eq!(ids, (0..10).map(SegId).collect::<Vec<_>>());
        let (removed, _) = live.remove(SegId(3)).unwrap();
        assert!(removed);
        let (removed, _) = live.remove(SegId(3)).unwrap();
        assert!(!removed, "double delete reports not-present");
        let (removed, _) = live.remove(SegId(99)).unwrap();
        assert!(!removed, "out-of-range delete refused");
        assert_eq!(live.ops_len(), 12, "refused delete was not logged");
        assert_eq!(live.epoch(), 12);

        // Replay the logged history into a fresh index: same alive set.
        let mut rebuilt = ListIndex::new();
        live.map.lock().unwrap().replay_into(&mut rebuilt);
        live.with_read(|index| {
            assert_eq!(index.len(), rebuilt.len());
            let mut ctx = QueryCtx::new();
            let w = Rect::new(-100, -100, 100, 100);
            assert_eq!(index.window(w, &mut ctx), rebuilt.window(w, &mut ctx));
        });
    }

    #[test]
    fn concurrent_readers_during_writes() {
        use std::sync::atomic::AtomicBool;

        let live = LiveIndex::new(Box::new(ListIndex::new()), DurableMap::volatile(PS));
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut ctx = QueryCtx::new();
                    while !done.load(Ordering::Acquire) {
                        live.with_read(|index| {
                            let hits = index.window(Rect::new(0, 0, 1000, 1000), &mut ctx);
                            // Every observed hit resolves to a real record:
                            // no reader sees a half-applied insert.
                            for id in hits {
                                let s = index.seg_table().get(id, &mut ctx);
                                assert_eq!(s.a.y, 0);
                            }
                        });
                        ctx.next_query();
                    }
                });
            }
            for i in 0..200 {
                live.insert(seg(i, 0, i, 10)).unwrap();
                if i % 10 == 9 {
                    live.remove(SegId(i as u32 - 5)).unwrap();
                }
            }
            done.store(true, Ordering::Release);
        });
        assert_eq!(live.with_read(|i| i.len()), 200 - 20);
        assert_eq!(live.epoch(), 220);
    }

    #[test]
    fn file_backed_map_survives_checkpoint_and_reopen() {
        let dir = std::env::temp_dir().join(format!("lsdb-live-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("map.pages");
        let log_path = dir.join("map.wal");
        let ops = [
            MapOp::Insert(seg(1, 2, 3, 4)),
            MapOp::Insert(seg(5, 6, 7, 8)),
            MapOp::Delete(SegId(0)),
        ];
        {
            let base = lsdb_pager::FileStorage::create(&base_path, PS).unwrap();
            let log = lsdb_pager::FileLog::create(&log_path).unwrap();
            let (mut map, _) = DurableMap::open(Box::new(base), Box::new(log)).unwrap();
            map.append_all(&ops[..2]).unwrap();
            map.checkpoint().unwrap();
            map.append(ops[2]).unwrap(); // committed to the log only
        }
        {
            let base = lsdb_pager::FileStorage::open(&base_path, PS).unwrap();
            let log = lsdb_pager::FileLog::open(&log_path).unwrap();
            let (map, report) = DurableMap::open(Box::new(base), Box::new(log)).unwrap();
            assert_eq!(map.ops(), &ops[..]);
            assert_eq!(report.batches, 1, "one post-checkpoint batch replayed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
