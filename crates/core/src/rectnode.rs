//! On-page layout of R-tree-family nodes.
//!
//! The paper fixes the *logical* format: "represent each node as a set of
//! 2-tuples (R, O) where R is the smallest rectangle that contains the
//! data stored in son O. For line segments ... each 2-tuple requires 5
//! entries — 4 for the x and y coordinate values of the bounding rectangle
//! and one entry for the pointer to the son node ... each 2-tuple requires
//! 20 bytes of storage and thus each 1K byte page contains a maximum of 50
//! line segments."
//!
//! # Physical layout: structure of arrays (format v2)
//!
//! Those 20 bytes per tuple are preserved, but since format v2 they are
//! laid out as five parallel **lanes** instead of interleaved 20-byte
//! records:
//!
//! ```text
//! offset                  contents
//! 0 .. 24                 header: tag (1) · format version (1) ·
//!                         count u16 LE (2) · reserved (20)
//! HDR + 0·S .. +   S      xlo[cap]   i32 LE
//! HDR + 1·S .. + 2·S      ylo[cap]   i32 LE
//! HDR + 2·S .. + 3·S      xhi[cap]   i32 LE
//! HDR + 3·S .. + 4·S      yhi[cap]   i32 LE
//! HDR + 4·S .. + 5·S      child[cap] u32 LE
//! ```
//!
//! where `cap = (page_size - HDR) / 20` (identical to the v1 capacity, so
//! tree shapes — and therefore the paper's counters — are unchanged) and
//! `S = 4·cap` is the lane stride. A scan kernel now reads each predicate
//! operand as one contiguous vector-width load per lane instead of
//! gathering it out of interleaved records — the structure-of-arrays
//! transposition that "SIMD-ified R-tree Query Processing" shows beats
//! auto-vectorized AoS scanning by large constant factors (see
//! [`crate::scan`]). Lane starts are 4-byte aligned whenever the page
//! buffer is (HDR and every stride are multiples of 4); the kernels use
//! unaligned vector loads, so nothing stronger is required.
//!
//! Byte 1 of the header, reserved (always zero) in v1, now carries the
//! page-format version ([`FORMAT_VERSION`]). In-memory pages are always
//! current-format; persistent *stores* negotiate their format at open
//! time instead (see `lsdb_pager::FileStorage` and the `DurableMap`
//! header), rejecting versions they do not understand.
//!
//! Entry order within a node is not semantically meaningful (R-tree nodes
//! are unordered sets), so removal is a swap-remove — this matches the
//! paper's observation that R-tree-family 2-tuples "need not be sorted",
//! unlike the PMR quadtree's B-tree pages. Build paths may still *choose*
//! an order ([`EntryOrder`]): Hilbert-sorting a node's entries clusters
//! the survivors of a window predicate into runs, which changes how full
//! the per-block survivor masks of the SIMD kernels are (measured by the
//! `scanbench` ordering experiment).

use crate::scan::{self, EntryScan};
use crate::traverse::{DfsSink, NnSink, NodeAccess};
use crate::{LocId, QueryCtx, SegId, SegmentTable};
use lsdb_geom::{hilbert::hilbert_xy2d, Dist2, Point, Rect};
use lsdb_pager::{MemPool, PageId};

/// Node header bytes: tag (1) + format version (1) + count (2) +
/// reserved (20).
pub const HDR: usize = 24;
/// Bytes per entry summed across the five lanes: 4 × i32 rectangle +
/// u32 child pointer.
pub const ENTRY: usize = 20;
/// Page-format version written into header byte 1: 2 = structure-of-arrays
/// lanes. (Version 1, the interleaved array-of-structs layout, is no
/// longer readable; stores carrying v1 pages are rejected at open.)
pub const FORMAT_VERSION: u8 = 2;

/// One (R, O) 2-tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    pub rect: Rect,
    /// Segment id (leaf) or page id (internal).
    pub child: u32,
}

/// Intra-node entry ordering applied by the build/split paths.
///
/// `Storage` keeps entries exactly where the maintenance algorithms put
/// them — the paper's behaviour, and the default: every committed counter
/// baseline is recorded under it (traversal emit order follows entry
/// order, so changing the order changes DFS descent order and with it the
/// disk-access counters). `Hilbert` sorts each written node's entries by
/// the Hilbert code of their rectangle centers, the ordering experiment
/// of the SIMD R-tree literature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EntryOrder {
    /// Maintenance-path order (insertion/split order). The default.
    #[default]
    Storage,
    /// Entries sorted by Hilbert code of their rectangle center.
    Hilbert,
}

impl EntryOrder {
    pub fn label(self) -> &'static str {
        match self {
            EntryOrder::Storage => "storage",
            EntryOrder::Hilbert => "hilbert",
        }
    }
}

/// Sort key: Hilbert code of the (doubled) rectangle center, quantized to
/// the order-16 curve. Ties (same quantized cell) keep their relative
/// order — `sort_by_key` is stable — so the knob is deterministic.
fn hilbert_key(r: &Rect) -> u64 {
    let (cx2, cy2) = r.center2();
    // Doubled centers span [-2^32, 2^32]; shift to unsigned and keep the
    // top 16 bits of the 33-bit range.
    let q = |c2: i64| (((c2 + (1i64 << 32)) >> 17) as u32).min(0xFFFF);
    hilbert_xy2d(16, q(cx2), q(cy2))
}

/// Apply `order` to a node's entries before they are written. Called by
/// the build/split sites of the R-tree family; a no-op for
/// [`EntryOrder::Storage`].
pub fn order_entries(entries: &mut [Entry], order: EntryOrder) {
    if order == EntryOrder::Hilbert {
        entries.sort_by_key(|e| hilbert_key(&e.rect));
    }
}

/// Static accessors over a raw node page.
pub struct RectNode;

impl RectNode {
    /// Maximum entries per node — the paper's `M ≈ S / k`. Unchanged by
    /// the v2 lane layout: the same 20 bytes per entry, transposed.
    pub fn capacity(page_size: usize) -> usize {
        (page_size - HDR) / ENTRY
    }

    /// Lane stride in bytes for a page buffer of `page_size` bytes:
    /// `4 · capacity`. Lane `k` (0 = xlo, 1 = ylo, 2 = xhi, 3 = yhi,
    /// 4 = child) starts at `HDR + k · stride`.
    #[inline(always)]
    pub fn lane_stride(page_size: usize) -> usize {
        4 * Self::capacity(page_size)
    }

    pub fn init(buf: &mut [u8], leaf: bool) {
        buf[..HDR].fill(0);
        buf[0] = if leaf { 0 } else { 1 };
        buf[1] = FORMAT_VERSION;
    }

    pub fn is_leaf(buf: &[u8]) -> bool {
        buf[0] == 0
    }

    /// The format version stamped into the node header (byte 1). Always
    /// [`FORMAT_VERSION`] for pages written by this code; v1 pages carried
    /// a zero here.
    pub fn format_version(buf: &[u8]) -> u8 {
        buf[1]
    }

    pub fn count(buf: &[u8]) -> usize {
        u16::from_le_bytes([buf[2], buf[3]]) as usize
    }

    fn set_count(buf: &mut [u8], c: usize) {
        buf[2..4].copy_from_slice(&(c as u16).to_le_bytes());
    }

    #[inline(always)]
    fn lane_at(buf_len: usize, lane: usize, i: usize) -> usize {
        HDR + lane * Self::lane_stride(buf_len) + 4 * i
    }

    #[inline(always)]
    fn rd_lane(buf: &[u8], lane: usize, i: usize) -> i32 {
        let at = Self::lane_at(buf.len(), lane, i);
        i32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
    }

    #[inline(always)]
    fn wr_lane(buf: &mut [u8], lane: usize, i: usize, v: i32) {
        let at = Self::lane_at(buf.len(), lane, i);
        buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    pub fn entry(buf: &[u8], i: usize) -> Entry {
        debug_assert!(i < Self::count(buf));
        Entry {
            rect: Rect::new(
                Self::rd_lane(buf, 0, i),
                Self::rd_lane(buf, 1, i),
                Self::rd_lane(buf, 2, i),
                Self::rd_lane(buf, 3, i),
            ),
            child: Self::rd_lane(buf, 4, i) as u32,
        }
    }

    pub fn set_entry(buf: &mut [u8], i: usize, e: Entry) {
        debug_assert!(i < Self::count(buf));
        Self::write_raw(buf, i, e);
    }

    fn write_raw(buf: &mut [u8], i: usize, e: Entry) {
        Self::wr_lane(buf, 0, i, e.rect.min.x);
        Self::wr_lane(buf, 1, i, e.rect.min.y);
        Self::wr_lane(buf, 2, i, e.rect.max.x);
        Self::wr_lane(buf, 3, i, e.rect.max.y);
        Self::wr_lane(buf, 4, i, e.child as i32);
    }

    /// Append an entry (the paper: "a 2-tuple ... can simply be inserted as
    /// the last element"). Panics in debug builds past capacity.
    pub fn push(buf: &mut [u8], e: Entry) {
        let c = Self::count(buf);
        debug_assert!(c < Self::capacity(buf.len()), "node overflow");
        Self::write_raw(buf, c, e);
        Self::set_count(buf, c + 1);
    }

    /// Swap-remove the entry at `i`.
    pub fn remove_at(buf: &mut [u8], i: usize) {
        let c = Self::count(buf);
        debug_assert!(i < c);
        if i != c - 1 {
            let last = Self::entry(buf, c - 1);
            Self::write_raw(buf, i, last);
        }
        Self::set_count(buf, c - 1);
    }

    /// Materialize all entries as an owned vector. Build/split path only:
    /// splits and redistributions genuinely want a reorderable `Vec`. The
    /// query path walks pages zero-copy through [`EntryScan`] instead.
    pub fn entries(buf: &[u8]) -> Vec<Entry> {
        (0..Self::count(buf)).map(|i| Self::entry(buf, i)).collect()
    }

    /// Replace all entries (used after splits and redistributions).
    pub fn write_entries(buf: &mut [u8], entries: &[Entry]) {
        debug_assert!(entries.len() <= Self::capacity(buf.len()));
        for (i, &e) in entries.iter().enumerate() {
            Self::write_raw(buf, i, e);
        }
        Self::set_count(buf, entries.len());
    }

    /// Minimum bounding rectangle of all entries. Panics on an empty node
    /// (only a leaf root may be empty, and its MBR is never requested).
    pub fn mbr(buf: &[u8]) -> Rect {
        let c = Self::count(buf);
        assert!(c > 0, "MBR of empty node");
        let mut r = Self::entry(buf, 0).rect;
        for i in 1..c {
            r = r.union(&Self::entry(buf, i).rect);
        }
        r
    }
}

/// Traversal handle for one R-tree-family node: its page plus its level
/// (leaves are level 1), which is how the family distinguishes leaf pages
/// without a per-page tag lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RectRef {
    pub pid: PageId,
    pub level: u32,
}

/// [`NodeAccess`] implementation shared by every structure that stores
/// [`RectNode`] pages — the R\*-tree and the R+-tree. The two trees differ
/// only in how pages are *built* (split/redistribution policy); their
/// traversal, including the counter accounting (one bbox computation per
/// entry on every page read), is identical, so one cursor serves both.
pub struct RectTreeAccess<'a> {
    pub pool: &'a MemPool,
    pub table: &'a SegmentTable,
    pub root: PageId,
    /// Level of the root; leaves are level 1.
    pub height: u32,
}

impl RectTreeAccess<'_> {
    fn root_ref(&self) -> RectRef {
        RectRef {
            pid: self.root,
            level: self.height,
        }
    }
}

impl NodeAccess for RectTreeAccess<'_> {
    type Node = RectRef;

    fn table(&self) -> &SegmentTable {
        self.table
    }

    fn seed_point(
        &self,
        _p: Point,
        _probe_only: bool,
        _ctx: &mut QueryCtx,
        sink: &mut DfsSink<RectRef>,
    ) {
        sink.node(self.root_ref());
    }

    fn expand_point(
        &self,
        n: RectRef,
        p: Point,
        probe_only: bool,
        ctx: &mut QueryCtx,
        sink: &mut DfsSink<RectRef>,
    ) {
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        let buf = self.pool.read_page_pinned(n.pid, index);
        let entries = EntryScan::of_node(buf);
        // One bbox computation per entry scanned — the kernels report the
        // scanned count, which is the full node occupancy regardless of
        // how many entries pass the filter (identical to the historical
        // per-entry loop's charge).
        if n.level == 1 {
            sink.arrive(LocId(n.pid.0 as u64));
            if probe_only {
                *bbox_comps += entries.len() as u64;
            } else {
                *bbox_comps +=
                    scan::scan_containing_point(&entries, p, |e| sink.entry(SegId(e.child))) as u64;
            }
        } else {
            *bbox_comps += scan::scan_containing_point(&entries, p, |e| {
                sink.node(RectRef {
                    pid: PageId(e.child),
                    level: n.level - 1,
                });
            }) as u64;
        }
    }

    fn seed_window(&self, _w: Rect, _ctx: &mut QueryCtx, sink: &mut DfsSink<RectRef>) {
        sink.node(self.root_ref());
    }

    fn expand_window(&self, n: RectRef, w: Rect, ctx: &mut QueryCtx, sink: &mut DfsSink<RectRef>) {
        let QueryCtx {
            index, bbox_comps, ..
        } = ctx;
        let buf = self.pool.read_page_pinned(n.pid, index);
        let entries = EntryScan::of_node(buf);
        if n.level == 1 {
            *bbox_comps +=
                scan::scan_intersecting(&entries, &w, |e| sink.entry(SegId(e.child))) as u64;
        } else {
            *bbox_comps += scan::scan_intersecting(&entries, &w, |e| {
                sink.node(RectRef {
                    pid: PageId(e.child),
                    level: n.level - 1,
                });
            }) as u64;
        }
    }

    fn seed_nearest(&self, _p: Point, _ctx: &mut QueryCtx, sink: &mut NnSink<RectRef>) {
        sink.node(self.root_ref(), Dist2::ZERO);
    }

    fn expand_nearest(&self, n: RectRef, p: Point, ctx: &mut QueryCtx, sink: &mut NnSink<RectRef>) {
        if n.level == 1 {
            // Pinned-borrow leaf expansion: one page access charges the
            // node (and one bbox per entry, as every traversal of this
            // family does), then the entry walk and the segment fetches
            // proceed over the borrowed bytes — the split-borrow `get_with`
            // keeps the usual per-fetch charges while the index-page slice
            // stays alive.
            let QueryCtx {
                index,
                seg,
                seg_comps,
                bbox_comps,
                seg_cache,
                ..
            } = ctx;
            let buf = self.pool.read_page_pinned(n.pid, index);
            let entries = EntryScan::of_node(buf);
            *bbox_comps += entries.len() as u64;
            for e in entries.iter() {
                let id = SegId(e.child);
                let s = self.table.get_with(id, seg, seg_comps, seg_cache);
                sink.exact(id, s.dist2_point(p));
            }
        } else {
            let QueryCtx {
                index, bbox_comps, ..
            } = ctx;
            let buf = self.pool.read_page_pinned(n.pid, index);
            let entries = EntryScan::of_node(buf);
            // No pruning against the best-so-far: the queue's global
            // ordering prunes for us (a node never pops after the k-th
            // result's distance).
            *bbox_comps += scan::scan_min_dist2(&entries, p, |e, d| {
                sink.node(
                    RectRef {
                        pid: PageId(e.child),
                        level: n.level - 1,
                    },
                    Dist2::from_int(d),
                );
            }) as u64;
        }
    }
}

/// Minimum bounding rectangle of a slice of entries.
pub fn entries_mbr(entries: &[Entry]) -> Rect {
    assert!(!entries.is_empty());
    let mut r = entries[0].rect;
    for e in &entries[1..] {
        r = r.union(&e.rect);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(x0: i32, y0: i32, x1: i32, y1: i32, child: u32) -> Entry {
        Entry {
            rect: Rect::new(x0, y0, x1, y1),
            child,
        }
    }

    #[test]
    fn capacity_matches_paper() {
        assert_eq!(RectNode::capacity(1024), 50, "1 KB page = 50 tuples");
        assert_eq!(RectNode::capacity(512), 24);
        assert_eq!(RectNode::capacity(2048), 101);
    }

    #[test]
    fn lanes_tile_the_page_exactly() {
        // 1 KB page: cap 50, stride 200; five lanes end exactly at 1024.
        assert_eq!(RectNode::lane_stride(1024), 200);
        assert_eq!(HDR + 5 * RectNode::lane_stride(1024), 1024);
        // Lane starts are 4-byte aligned offsets.
        for k in 0..5 {
            assert_eq!((HDR + k * RectNode::lane_stride(1024)) % 4, 0);
        }
    }

    #[test]
    fn push_entry_roundtrip() {
        let mut buf = vec![0u8; 256];
        RectNode::init(&mut buf, true);
        assert!(RectNode::is_leaf(&buf));
        assert_eq!(RectNode::format_version(&buf), FORMAT_VERSION);
        RectNode::push(&mut buf, e(1, 2, 3, 4, 9));
        RectNode::push(&mut buf, e(-5, -6, 7, 8, 10));
        assert_eq!(RectNode::count(&buf), 2);
        assert_eq!(RectNode::entry(&buf, 0), e(1, 2, 3, 4, 9));
        assert_eq!(RectNode::entry(&buf, 1), e(-5, -6, 7, 8, 10));
    }

    #[test]
    fn swap_remove() {
        let mut buf = vec![0u8; 256];
        RectNode::init(&mut buf, false);
        assert!(!RectNode::is_leaf(&buf));
        for i in 0..4 {
            RectNode::push(&mut buf, e(i, i, i + 1, i + 1, i as u32));
        }
        RectNode::remove_at(&mut buf, 1);
        assert_eq!(RectNode::count(&buf), 3);
        // Last entry swapped into slot 1.
        assert_eq!(RectNode::entry(&buf, 1).child, 3);
        RectNode::remove_at(&mut buf, 2);
        assert_eq!(RectNode::count(&buf), 2);
    }

    #[test]
    fn mbr_unions_all() {
        let mut buf = vec![0u8; 256];
        RectNode::init(&mut buf, true);
        RectNode::push(&mut buf, e(0, 0, 2, 2, 0));
        RectNode::push(&mut buf, e(5, -1, 6, 1, 1));
        assert_eq!(RectNode::mbr(&buf), Rect::new(0, -1, 6, 2));
        assert_eq!(
            entries_mbr(&RectNode::entries(&buf)),
            Rect::new(0, -1, 6, 2)
        );
    }

    #[test]
    fn write_entries_replaces() {
        let mut buf = vec![0u8; 256];
        RectNode::init(&mut buf, true);
        for i in 0..5 {
            RectNode::push(&mut buf, e(i, 0, i, 0, i as u32));
        }
        RectNode::write_entries(&mut buf, &[e(9, 9, 9, 9, 42)]);
        assert_eq!(RectNode::count(&buf), 1);
        assert_eq!(RectNode::entry(&buf, 0).child, 42);
    }

    #[test]
    fn extreme_coordinates_roundtrip() {
        let mut buf = vec![0u8; 256];
        RectNode::init(&mut buf, true);
        let x = e(i32::MIN, i32::MIN, i32::MAX, i32::MAX, u32::MAX);
        RectNode::push(&mut buf, x);
        assert_eq!(RectNode::entry(&buf, 0), x);
    }

    #[test]
    fn storage_order_is_identity_hilbert_order_clusters() {
        let mut entries: Vec<Entry> = (0..8)
            .map(|i| {
                let x = (i % 2) * 8000 + 10 * i;
                e(x, 100 * i, x + 5, 100 * i + 5, i as u32)
            })
            .collect();
        let snapshot = entries.clone();
        order_entries(&mut entries, EntryOrder::Storage);
        assert_eq!(entries, snapshot, "storage order never reorders");
        order_entries(&mut entries, EntryOrder::Hilbert);
        let keys: Vec<u64> = entries.iter().map(|x| hilbert_key(&x.rect)).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted, "hilbert order sorts by curve position");
        // Same multiset of entries either way.
        let mut ids: Vec<u32> = entries.iter().map(|x| x.child).collect();
        ids.sort();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }
}
