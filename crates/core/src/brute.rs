//! Brute-force reference implementations of the five paper queries.
//!
//! These scan the raw segment list with the same exact geometric predicates
//! the indexes use, so every index implementation can be validated
//! result-for-result against them (up to ties in nearest-neighbour
//! distance, which are compared by exact distance value).

use crate::{PolygonalMap, SegId};
#[cfg(test)]
use lsdb_geom::Segment;
use lsdb_geom::{Dist2, Point, Rect};

/// Query 1: ids of all segments with an endpoint at `p`.
pub fn incident(map: &PolygonalMap, p: Point) -> Vec<SegId> {
    map.segments
        .iter()
        .enumerate()
        .filter(|(_, s)| s.has_endpoint(p))
        .map(|(i, _)| SegId(i as u32))
        .collect()
}

/// Query 2: ids of all segments incident at the *other* endpoint of
/// segment `id`, given that one endpoint is `p`.
pub fn second_endpoint(map: &PolygonalMap, id: SegId, p: Point) -> Vec<SegId> {
    let other = map.segments[id.index()].other_endpoint(p);
    incident(map, other)
}

/// Query 3: the exact minimal distance from `p` to any segment, together
/// with one segment attaining it (the lowest id among ties, for
/// determinism). `None` for an empty map.
pub fn nearest(map: &PolygonalMap, p: Point) -> Option<(SegId, Dist2)> {
    map.segments
        .iter()
        .enumerate()
        .map(|(i, s)| (SegId(i as u32), s.dist2_point(p)))
        .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
}

/// Query 5: ids of all segments intersecting the closed window `w`.
pub fn window(map: &PolygonalMap, w: Rect) -> Vec<SegId> {
    map.segments
        .iter()
        .enumerate()
        .filter(|(_, s)| w.intersects_segment(s))
        .map(|(i, _)| SegId(i as u32))
        .collect()
}

/// Normalize a query answer for comparison: sorted ids.
pub fn sorted(mut ids: Vec<SegId>) -> Vec<SegId> {
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: i32, ay: i32, bx: i32, by: i32) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn sample() -> PolygonalMap {
        PolygonalMap::new(
            "sample",
            vec![
                seg(0, 0, 10, 0),    // 0
                seg(10, 0, 10, 10),  // 1
                seg(10, 10, 0, 10),  // 2
                seg(0, 10, 0, 0),    // 3: unit square scaled by 10
                seg(20, 20, 30, 30), // 4: far diagonal
            ],
        )
    }

    #[test]
    fn incident_at_corner() {
        let m = sample();
        assert_eq!(incident(&m, Point::new(10, 0)), vec![SegId(0), SegId(1)]);
        assert_eq!(incident(&m, Point::new(5, 5)), vec![]);
    }

    #[test]
    fn second_endpoint_walks_across() {
        let m = sample();
        // Segment 0 from its (0,0) endpoint: other endpoint (10,0) touches
        // segments 0 and 1.
        assert_eq!(
            second_endpoint(&m, SegId(0), Point::new(0, 0)),
            vec![SegId(0), SegId(1)]
        );
    }

    #[test]
    fn nearest_picks_min_distance() {
        let m = sample();
        let (id, d) = nearest(&m, Point::new(5, 2)).unwrap();
        assert_eq!(id, SegId(0));
        assert_eq!(d, Dist2::from_int(4));
        // Equidistant from segments 0 and 3 at the corner: lowest id wins.
        let (id, d) = nearest(&m, Point::new(1, 1)).unwrap();
        assert_eq!(id, SegId(0));
        assert_eq!(d, Dist2::from_int(1));
    }

    #[test]
    fn window_clips() {
        let m = sample();
        assert_eq!(
            window(&m, Rect::new(-1, -1, 2, 11)),
            vec![SegId(0), SegId(2), SegId(3)]
        );
        assert_eq!(window(&m, Rect::new(4, 4, 6, 6)), vec![]);
        assert_eq!(window(&m, Rect::new(25, 24, 26, 27)), vec![SegId(4)]);
    }
}
