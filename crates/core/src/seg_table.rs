use crate::QueryCtx;
use lsdb_geom::{Point, Segment};
use lsdb_pager::{MemPool, PageId, PoolCtx};

/// Identifier of a segment in a [`SegmentTable`]. Densely allocated from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SegId(pub u32);

impl SegId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const RECORD_BYTES: usize = 16; // x1, y1, x2, y2 as i32

/// Slots in the per-context segment mini-cache. Power of two so the
/// direct-mapped slot index is a mask; 1024 × 28 bytes ≈ 28 KB per
/// context — still small next to its page pins, and wide enough that a
/// whole polygon boundary (a few hundred segments, each re-compared
/// several times per walk) stays resident instead of aliasing itself out
/// of a narrower table.
const SEG_CACHE_SLOTS: usize = 1024;

/// A small direct-mapped cache of decoded segment records, owned by a
/// [`QueryCtx`].
///
/// Polygon traversals (query 2/4 compositions) fetch the same few dozen
/// segments repeatedly; each fetch is a paper-metric *segment
/// comparison*, but the page lookup + record decode behind it is pure
/// implementation cost. This cache removes the redundant decode while
/// leaving every counter untouched:
///
/// * `seg_comps` is charged per [`SegmentTable::get`] call, hit or miss;
/// * a hit can never hide a disk charge, because a hit is only served
///   for free when its slot was filled *in the current query epoch* —
///   i.e. the miss that filled it pinned the record's page in this very
///   query, so the skipped page access was free anyway. A slot filled by
///   an earlier query of the same batch (stale epoch, see
///   [`QueryCtx::next_query`]) still serves the cached decode, but only
///   after re-pinning the record's page so the page charge is replayed
///   exactly as a cold fetch would charge it. Both cache and pins are
///   dropped by [`QueryCtx::reset`] and invalidated when the context
///   wanders to a table backed by a different pool.
///
/// (The table is append-only, so a cached decode can never go stale.)
/// Slots in the per-page replay memo (see [`SegCache::page_tags`]).
const PAGE_MEMO_SLOTS: usize = 64;

pub(crate) struct SegCache {
    /// Identity of the pool the cached records came from
    /// ([`lsdb_pager::BufferPool::pool_id`]); `None` = empty.
    owner: Option<u64>,
    /// Cached [`SegId`] per slot; `u32::MAX` = vacant (never a real id —
    /// the table caps out well below, and PMR uses it as its own
    /// sentinel for "no segment").
    tags: [u32; SEG_CACHE_SLOTS],
    /// The segment-pool epoch ([`lsdb_pager::PoolCtx::epoch`]) each slot
    /// was last charged in. A hit with a stale epoch must replay its page
    /// charge before being served.
    epochs: [u64; SEG_CACHE_SLOTS],
    segs: [Segment; SEG_CACHE_SLOTS],
    /// Direct-mapped memo of segment-table pages whose charge has already
    /// been replayed (or paid cold) *in the current epoch*: `page_tags`
    /// holds the raw page id (`u32::MAX` = vacant), `page_epochs` the
    /// epoch it was paid in. Entries are written only immediately after a
    /// `read_page` call on that page, so a memo hit can skip the repeat
    /// `read_page` — the repeat is charge-idempotent within one epoch, so
    /// skipping it cannot change any counter. A polygon walk re-touching
    /// a few hundred warm records per query turns into a handful of pin
    /// lookups per page instead of one per record.
    page_tags: [u32; PAGE_MEMO_SLOTS],
    page_epochs: [u64; PAGE_MEMO_SLOTS],
}

impl Default for SegCache {
    fn default() -> Self {
        let zero = Segment::new(Point::new(0, 0), Point::new(0, 0));
        SegCache {
            owner: None,
            tags: [u32::MAX; SEG_CACHE_SLOTS],
            epochs: [0; SEG_CACHE_SLOTS],
            segs: [zero; SEG_CACHE_SLOTS],
            page_tags: [u32::MAX; PAGE_MEMO_SLOTS],
            page_epochs: [0; PAGE_MEMO_SLOTS],
        }
    }
}

impl SegCache {
    /// Drop every cached record (O(1): slots are lazily cleared when the
    /// cache next binds to a pool).
    pub(crate) fn invalidate(&mut self) {
        self.owner = None;
    }
}

/// The disk-resident table of segment endpoints.
///
/// Every index entry is just a pointer (a [`SegId`]) into this table; "each
/// segment comparison means an access to the segment table which is
/// disk-resident" — so [`SegmentTable::get`] charges one segment comparison
/// and one (potential) segment-table page access to the caller's
/// [`QueryCtx`]. The table sits behind its own buffer pool so that segment
/// record disk activity is reported separately from index disk activity.
///
/// Layout: fixed 16-byte records packed `page_size / 16` per page, record
/// `i` on page `i / per_page`. Append-only: a polygonal map's segments are
/// loaded once and indexes reference them forever after (deleting a segment
/// from an *index* does not recycle its table slot, mirroring the paper's
/// shared-table setup).
pub struct SegmentTable {
    pool: MemPool,
    pages: Vec<PageId>,
    per_page: usize,
    /// `(shift, mask)` when `per_page` is a power of two (it is for every
    /// power-of-two page size, including the default): record→page and
    /// record→slot become shift/mask instead of hardware div/mod on a
    /// path taken once per segment comparison.
    pow2: Option<(u32, usize)>,
    len: u32,
}

impl SegmentTable {
    pub fn new(page_size: usize, pool_pages: usize) -> Self {
        assert!(page_size >= RECORD_BYTES);
        let per_page = page_size / RECORD_BYTES;
        SegmentTable {
            pool: MemPool::in_memory(page_size, pool_pages),
            pages: Vec::new(),
            per_page,
            pow2: per_page
                .is_power_of_two()
                .then(|| (per_page.trailing_zeros(), per_page - 1)),
            len: 0,
        }
    }

    /// `(page index, slot within page)` of record `idx`.
    #[inline]
    fn locate(&self, idx: usize) -> (usize, usize) {
        match self.pow2 {
            Some((shift, mask)) => (idx >> shift, idx & mask),
            None => (idx / self.per_page, idx % self.per_page),
        }
    }

    /// Load every segment of `map`, in order, so `SegId(i)` is
    /// `map.segments[i]`.
    pub fn from_map(map: &crate::PolygonalMap, page_size: usize, pool_pages: usize) -> Self {
        let mut t = SegmentTable::new(page_size, pool_pages);
        for seg in &map.segments {
            t.push(*seg);
        }
        t
    }

    pub fn push(&mut self, seg: Segment) -> SegId {
        let id = SegId(self.len);
        let slot = id.index() % self.per_page;
        if slot == 0 {
            let pid = self.pool.allocate();
            self.pages.push(pid);
        }
        let pid = self.pages[id.index() / self.per_page];
        self.pool.with_page_mut(pid, |buf| {
            let at = slot * RECORD_BYTES;
            buf[at..at + 4].copy_from_slice(&seg.a.x.to_le_bytes());
            buf[at + 4..at + 8].copy_from_slice(&seg.a.y.to_le_bytes());
            buf[at + 8..at + 12].copy_from_slice(&seg.b.x.to_le_bytes());
            buf[at + 12..at + 16].copy_from_slice(&seg.b.y.to_le_bytes());
        });
        self.len += 1;
        id
    }

    /// Fetch a segment's endpoints on the query path: counts one segment
    /// comparison and charges any page access to the context's segment-pool
    /// pin handle. Shared — any number of queries may fetch concurrently.
    ///
    /// Served from the context's segment mini-cache when possible; the
    /// comparison is charged either way (it is a paper metric — only the
    /// redundant decode is skipped, see `SegCache`).
    pub fn get(&self, id: SegId, ctx: &mut QueryCtx) -> Segment {
        let QueryCtx {
            seg,
            seg_comps,
            seg_cache,
            ..
        } = ctx;
        self.get_with(id, seg, seg_comps, seg_cache)
    }

    /// Split-borrow form of [`SegmentTable::get`], for callers that hold
    /// other pieces of the [`QueryCtx`] borrowed (e.g. a pinned index-page
    /// slice from the context's index pool).
    pub(crate) fn get_with(
        &self,
        id: SegId,
        seg: &mut PoolCtx,
        seg_comps: &mut u64,
        cache: &mut SegCache,
    ) -> Segment {
        *seg_comps += 1;
        let pool_id = self.pool.pool_id();
        if cache.owner != Some(pool_id) {
            // First fetch since reset, or the context wandered to a table
            // backed by a different pool: (re)bind and clear the slots.
            cache.tags = [u32::MAX; SEG_CACHE_SLOTS];
            cache.page_tags = [u32::MAX; PAGE_MEMO_SLOTS];
            cache.owner = Some(pool_id);
        }
        let slot = id.index() & (SEG_CACHE_SLOTS - 1);
        if cache.tags[slot] == id.0 {
            if cache.epochs[slot] == seg.epoch() {
                return cache.segs[slot];
            }
            // Filled by an earlier query of this batch: the decode is
            // still valid (the table is append-only), but the page charge
            // belongs to this query — re-pin the record's page so the
            // counters match a cold fetch exactly (skipped when the page
            // memo proves this epoch already paid the page).
            let (page, _) = self.locate(id.index());
            let pid = self.pages[page];
            let pslot = pid.0 as usize & (PAGE_MEMO_SLOTS - 1);
            if cache.page_tags[pslot] != pid.0 || cache.page_epochs[pslot] != seg.epoch() {
                self.pool.read_page(pid, seg, |_| {});
                cache.page_tags[pslot] = pid.0;
                cache.page_epochs[pslot] = seg.epoch();
            }
            cache.epochs[slot] = seg.epoch();
            return cache.segs[slot];
        }
        assert!(id.0 < self.len, "segment {id:?} out of range");
        let (page, page_slot) = self.locate(id.index());
        let pid = self.pages[page];
        let record = self.pool.read_page(pid, seg, |buf| decode(buf, page_slot));
        let pslot = pid.0 as usize & (PAGE_MEMO_SLOTS - 1);
        cache.page_tags[pslot] = pid.0;
        cache.page_epochs[pslot] = seg.epoch();
        cache.tags[slot] = id.0;
        cache.epochs[slot] = seg.epoch();
        cache.segs[slot] = record;
        record
    }

    /// Query-path fetch against a bare pool context (no comparison
    /// charged); building block for [`SegmentTable::get`].
    pub fn read(&self, id: SegId, ctx: &mut PoolCtx) -> Segment {
        assert!(id.0 < self.len, "segment {id:?} out of range");
        let (page, slot) = self.locate(id.index());
        let pid = self.pages[page];
        self.pool.read_page(pid, ctx, |buf| decode(buf, slot))
    }

    /// Build-path fetch: goes through the pool's LRU (charging its internal
    /// stats on a miss) and counts no comparison — the paper's query
    /// metrics exclude harness and build bookkeeping.
    pub fn fetch(&mut self, id: SegId) -> Segment {
        assert!(id.0 < self.len, "segment {id:?} out of range");
        let (page, slot) = self.locate(id.index());
        let pid = self.pages[page];
        self.pool.with_page(pid, |buf| decode(buf, slot))
    }

    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate all ids (does not touch the disk).
    pub fn ids(&self) -> impl Iterator<Item = SegId> {
        (0..self.len).map(SegId)
    }

    /// Segment-table disk activity of the build path since the last reset.
    pub fn disk_stats(&self) -> lsdb_pager::DiskStats {
        self.pool.stats()
    }

    pub fn reset_stats(&mut self) {
        self.pool.reset_stats();
    }

    /// Flush and drop every buffered page (for cold-cache measurements).
    pub fn clear_cache(&mut self) {
        self.pool.clear();
    }

    /// Table footprint in bytes (the paper reports this separately since
    /// it is identical across structures).
    pub fn size_bytes(&self) -> u64 {
        self.pool.size_bytes()
    }

    /// Charge this table's pool frames against a (usually process-global)
    /// byte budget shared with other maps.
    pub fn attach_budget(&mut self, budget: &std::sync::Arc<lsdb_pager::BufferBudget>) {
        self.pool.attach_budget(budget);
    }

    /// Physically shed up to `target_bytes` of cold frame bytes (budget
    /// enforcement; invisible to per-query paper counters).
    pub fn shed_cache(&self, target_bytes: u64) -> std::io::Result<u64> {
        self.pool.shed(target_bytes)
    }

    /// Cache accounting snapshot for the table's pool.
    pub fn cache_stats(&self) -> lsdb_pager::CacheStats {
        self.pool.cache_stats()
    }
}

fn decode(buf: &[u8], slot: usize) -> Segment {
    let at = slot * RECORD_BYTES;
    let rd = |o: usize| i32::from_le_bytes(buf[at + o..at + o + 4].try_into().unwrap());
    Segment::new(Point::new(rd(0), rd(4)), Point::new(rd(8), rd(12)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: i32, ay: i32, bx: i32, by: i32) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn push_get_roundtrip() {
        let mut t = SegmentTable::new(1024, 4);
        let a = t.push(seg(1, 2, 3, 4));
        let b = t.push(seg(100, 200, 300, 400));
        let mut ctx = QueryCtx::new();
        assert_eq!(t.get(a, &mut ctx), seg(1, 2, 3, 4));
        assert_eq!(t.get(b, &mut ctx), seg(100, 200, 300, 400));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn records_span_many_pages() {
        // 64-byte pages hold 4 records each.
        let mut t = SegmentTable::new(64, 2);
        let n = 100;
        for i in 0..n {
            t.push(seg(i, i + 1, i + 2, i + 3));
        }
        for i in (0..n).rev() {
            assert_eq!(t.fetch(SegId(i as u32)), seg(i, i + 1, i + 2, i + 3));
        }
        assert_eq!(t.size_bytes(), 25 * 64);
    }

    #[test]
    fn get_counts_comparisons_fetch_does_not() {
        let mut t = SegmentTable::new(1024, 4);
        let a = t.push(seg(0, 0, 1, 1));
        let mut ctx = QueryCtx::new();
        t.get(a, &mut ctx);
        t.get(a, &mut ctx);
        t.fetch(a);
        assert_eq!(ctx.seg_comps, 2);
    }

    #[test]
    fn ctx_charges_seg_pool_reads_on_cold_pages() {
        // 64-byte pages hold 4 records; 64 records span 16 pages.
        let mut t = SegmentTable::new(64, 2);
        for i in 0..64 {
            t.push(seg(i, 0, i, 1));
        }
        t.clear_cache();
        let mut ctx = QueryCtx::new();
        for i in (0..64).step_by(8) {
            t.get(SegId(i), &mut ctx);
        }
        // 8 strided records hit 8 distinct cold pages.
        assert_eq!(ctx.seg.stats.reads, 8);
        assert_eq!(ctx.seg_comps, 8);
        // Repeating the scan within the same context is free (pinned).
        for i in (0..64).step_by(8) {
            t.get(SegId(i), &mut ctx);
        }
        assert_eq!(ctx.seg.stats.reads, 8);
        assert_eq!(ctx.seg_comps, 16);
    }

    #[test]
    fn concurrent_gets_share_the_table() {
        let mut t = SegmentTable::new(64, 2);
        for i in 0..32 {
            t.push(seg(i, 0, i, 1));
        }
        t.clear_cache();
        let t = &t;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut ctx = QueryCtx::new();
                        for i in 0..32 {
                            assert_eq!(t.get(SegId(i), &mut ctx), seg(i as i32, 0, i as i32, 1));
                        }
                        ctx.stats()
                    })
                })
                .collect();
            let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for s in &stats {
                assert_eq!(s.seg_comps, 32);
                assert_eq!(*s, stats[0], "identical work, identical counters");
            }
        });
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let t = SegmentTable::new(1024, 4);
        let mut ctx = QueryCtx::new();
        t.get(SegId(0), &mut ctx);
    }

    #[test]
    fn mini_cache_hits_skip_no_charges() {
        // 64-byte pages hold 4 records; two pages.
        let mut t = SegmentTable::new(64, 2);
        for i in 0..8 {
            t.push(seg(i, 0, i, 1));
        }
        t.clear_cache();
        let mut ctx = QueryCtx::new();
        // Repeated fetches: the comparison counter still moves per call,
        // disk charges only on the first touch of each page.
        for _ in 0..5 {
            assert_eq!(t.get(SegId(2), &mut ctx), seg(2, 0, 2, 1));
            assert_eq!(t.get(SegId(6), &mut ctx), seg(6, 0, 6, 1));
        }
        assert_eq!(ctx.seg_comps, 10, "every get is a comparison, hit or miss");
        assert_eq!(ctx.seg.stats.reads, 2, "one cold read per distinct page");
        // Reset invalidates the cache together with the pins: the next
        // fetch recharges the page exactly as an uncached context would.
        ctx.reset();
        t.get(SegId(2), &mut ctx);
        assert_eq!(ctx.seg_comps, 1);
        assert_eq!(ctx.seg.stats.reads, 1, "cache does not outlive the pins");
    }

    #[test]
    fn mini_cache_survives_next_query_but_replays_page_charges() {
        // 64-byte pages hold 4 records. A batch boundary (next_query)
        // keeps the cached decodes, but a stale-epoch hit must charge the
        // page exactly as a cold context would.
        let mut t = SegmentTable::new(64, 2);
        for i in 0..8 {
            t.push(seg(i, 0, i, 1));
        }
        t.clear_cache();
        let mut ctx = QueryCtx::new();
        t.get(SegId(2), &mut ctx);
        t.get(SegId(6), &mut ctx);
        assert_eq!(ctx.seg.stats.reads, 2);

        ctx.next_query();
        assert_eq!(ctx.stats(), crate::QueryStats::default());
        // Stale-epoch hits: decode served from cache, charges replayed.
        assert_eq!(t.get(SegId(2), &mut ctx), seg(2, 0, 2, 1));
        assert_eq!(t.get(SegId(2), &mut ctx), seg(2, 0, 2, 1));
        assert_eq!(t.get(SegId(6), &mut ctx), seg(6, 0, 6, 1));
        assert_eq!(ctx.seg_comps, 3, "comparisons recount per query");
        assert_eq!(ctx.seg.stats.reads, 2, "page charges replayed per query");

        // Identical to what a fresh context reports for the same query.
        let mut fresh = QueryCtx::new();
        t.get(SegId(2), &mut fresh);
        t.get(SegId(2), &mut fresh);
        t.get(SegId(6), &mut fresh);
        assert_eq!(ctx.stats(), fresh.stats());
    }

    #[test]
    fn mini_cache_never_serves_another_tables_records() {
        // Two tables, same ids, different records, one wandering context;
        // mirrors the pager's wandering-ctx test one level up.
        let mut t1 = SegmentTable::new(64, 2);
        let mut t2 = SegmentTable::new(64, 2);
        t1.push(seg(1, 1, 1, 1));
        t2.push(seg(2, 2, 2, 2));
        let mut ctx = QueryCtx::new();
        assert_eq!(t1.get(SegId(0), &mut ctx), seg(1, 1, 1, 1));
        assert_eq!(t2.get(SegId(0), &mut ctx), seg(2, 2, 2, 2));
        assert_eq!(t1.get(SegId(0), &mut ctx), seg(1, 1, 1, 1));
    }

    #[test]
    fn mini_cache_colliding_ids_evict() {
        // Ids 0 and SEG_CACHE_SLOTS map to the same direct-mapped slot.
        let mut t = SegmentTable::new(1024, 8);
        let n = SEG_CACHE_SLOTS as i32 + 1;
        for i in 0..n {
            t.push(seg(i, 0, i, 1));
        }
        let mut ctx = QueryCtx::new();
        assert_eq!(t.get(SegId(0), &mut ctx), seg(0, 0, 0, 1));
        let far = SegId(SEG_CACHE_SLOTS as u32);
        assert_eq!(t.get(far, &mut ctx), seg(n - 1, 0, n - 1, 1));
        assert_eq!(t.get(SegId(0), &mut ctx), seg(0, 0, 0, 1));
    }

    #[test]
    fn negative_coordinates_survive() {
        // The table itself is coordinate-agnostic even though world maps
        // are normalized to non-negative coordinates.
        let mut t = SegmentTable::new(1024, 4);
        let a = t.push(seg(-5, -6, 7, 8));
        let mut ctx = QueryCtx::new();
        assert_eq!(t.get(a, &mut ctx), seg(-5, -6, 7, 8));
    }
}
