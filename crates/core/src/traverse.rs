//! Structure-agnostic traversal engines — the one query algorithm under
//! all of the paper's structures.
//!
//! The paper's thesis is that the R\*-tree, R+-tree and PMR quadtree
//! differ only in *node decomposition policy*; the query algorithms
//! (depth-first search for point and window queries, Hoel & Samet's
//! incremental best-first search for ranked neighbors) are identical.
//! This module makes that literal: each structure implements [`NodeAccess`]
//! — "seed the traversal, expand a node into child nodes and leaf segment
//! entries, charging the right counters" — and the engines here own the
//! search loops, the priority queue, the dedup sets and the result
//! ordering. A structure crate contains no recursion and no heap of its
//! own.
//!
//! # Counter-charging contract
//!
//! The engines charge exactly two things themselves:
//!
//! * one `seg_comps` (plus segment-pool disk) per segment record fetched
//!   through [`SegmentTable::get`] — for DFS entries that survive dedup,
//!   and for every nearest-neighbor candidate popped from the queue;
//! * nothing else. All `bbox_comps` and index-pool disk charges are made
//!   by the structure inside its seed/expand callbacks (one bbox per
//!   R-tree entry scanned, one per PMR bucket located-or-scanned, one per
//!   grid cell examined), which is what lets each structure keep its
//!   paper-faithful accounting while sharing the loop. The stored-rect
//!   prefilter of the R-tree family likewise lives structure-side, inside
//!   the batched kernels of [`crate::scan`]: an expansion emits exactly
//!   the entries whose stored rectangle meets the query region, so the
//!   engine sees the same fetch set, in the same order, as when it
//!   applied the prefilter itself.
//!
//! # Determinism and tie-breaking
//!
//! DFS visits nodes in emission order (depth-first, matching the classic
//! recursive formulation). Best-first search orders its queue by
//! `(lower bound, kind, tie)`: at equal distance, unexpanded *nodes* come
//! first, then unresolved *candidates*, then *exact* results ordered by
//! `SegId`. Expanding every region that could still contain an
//! equal-distance segment before reporting anything at that distance makes
//! the output totally ordered by `(distance, SegId)` — the documented
//! tie-break rule of [`crate::SpatialIndex::nearest_k`].
//!
//! # Scratch-buffer reuse
//!
//! Every engine borrows a `Scratch` (stacks, sinks, priority queue,
//! dedup set) cached inside the [`QueryCtx`]; buffers are cleared, never
//! dropped, between queries, and the buffer-pool pin path recycles page
//! boxes the same way — so a warmed-up context runs probes, window scans
//! and nearest-neighbor queries without allocating.

use crate::{LocId, QueryCtx, SegId, SegmentTable};
use lsdb_geom::{Dist2, Point, Rect};
use std::any::Any;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

/// The expansion policy a structure contributes to the shared engines.
///
/// Each method receives the query context (to charge disk and bbox/bucket
/// counters) and a sink to emit child nodes and leaf segment entries into.
/// Regions and lower bounds must be *conservative*: a point query expands
/// only nodes whose region contains the point, a window query only nodes
/// whose region meets the window, and every nearest-neighbor bound must
/// not exceed the true distance of anything stored under the node.
pub trait NodeAccess {
    /// Traversal handle for one node: a page id + level for the R-trees, a
    /// quadtree block for the PMR, a cell coordinate for the grid.
    type Node: Copy + Send + 'static;

    /// The segment table the engines fetch records from (charging one
    /// `seg_comps` per fetch).
    fn table(&self) -> &SegmentTable;

    /// Start a point query: push the root (trees) or resolve the bucket
    /// containing `p` outright (PMR, grid). With `probe_only` the
    /// traversal must visit (and charge) the same index pages but emit no
    /// segment entries — the paper's "locate the leaf" step of query 2.
    /// The first leaf reached reports its id via [`DfsSink::arrive`].
    fn seed_point(
        &self,
        p: Point,
        probe_only: bool,
        ctx: &mut QueryCtx,
        sink: &mut DfsSink<Self::Node>,
    );

    /// Expand one node of a point query: child nodes whose region contains
    /// `p`, or this leaf's entries.
    fn expand_point(
        &self,
        node: Self::Node,
        p: Point,
        probe_only: bool,
        ctx: &mut QueryCtx,
        sink: &mut DfsSink<Self::Node>,
    );

    /// Start a window query.
    fn seed_window(&self, w: Rect, ctx: &mut QueryCtx, sink: &mut DfsSink<Self::Node>);

    /// Expand one node of a window query: child nodes/entries whose region
    /// meets `w`.
    fn expand_window(
        &self,
        node: Self::Node,
        w: Rect,
        ctx: &mut QueryCtx,
        sink: &mut DfsSink<Self::Node>,
    );

    /// Start a nearest-neighbor query: enqueue roots/buckets with
    /// conservative lower bounds.
    fn seed_nearest(&self, p: Point, ctx: &mut QueryCtx, sink: &mut NnSink<Self::Node>);

    /// Expand one node of a nearest-neighbor query into child nodes and/or
    /// candidates, each with a conservative lower bound.
    fn expand_nearest(
        &self,
        node: Self::Node,
        p: Point,
        ctx: &mut QueryCtx,
        sink: &mut NnSink<Self::Node>,
    );
}

/// Emission buffer for the depth-first engines. Nodes are visited in
/// emission order; entries are resolved (dedup → fetch → predicate) as
/// soon as the emitting expansion returns.
pub struct DfsSink<N> {
    nodes: Vec<N>,
    entries: Vec<SegId>,
    arrived: Option<LocId>,
}

impl<N> Default for DfsSink<N> {
    fn default() -> Self {
        DfsSink {
            nodes: Vec::new(),
            entries: Vec::new(),
            arrived: None,
        }
    }
}

impl<N> DfsSink<N> {
    /// Emit a child node to visit (in emission order, depth-first).
    pub fn node(&mut self, n: N) {
        self.nodes.push(n);
    }

    /// Reverse the nodes emitted so far by the current expansion. For
    /// structures whose legacy traversal popped a plain stack (the PMR
    /// quadtree), emitting in storage order and reversing reproduces the
    /// historical visit order exactly.
    pub fn reverse_nodes(&mut self) {
        self.nodes.reverse();
    }

    /// Emit a leaf entry for the engine to resolve (dedup, fetch the
    /// record, apply the exact segment predicate). A structure that
    /// stores per-entry bounding rectangles (the R-tree family) emits
    /// only the entries whose rectangle meets the query region — its
    /// scan kernel applies that prefilter; bucket structures (PMR, grid)
    /// emit every bucket entry.
    pub fn entry(&mut self, id: SegId) {
        self.entries.push(id);
    }

    /// Report arrival at a leaf/bucket; the first report wins and becomes
    /// the probe result.
    pub fn arrive(&mut self, loc: LocId) {
        if self.arrived.is_none() {
            self.arrived = Some(loc);
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.entries.clear();
        self.arrived = None;
    }
}

/// What one best-first queue element resolves to.
enum NnItem<N> {
    Node(N),
    Candidate(SegId),
    Exact(SegId),
}

/// Queue element ordered by `(lower bound, kind, tie)`. Kind ranks nodes
/// before candidates before exacts so every region/candidate that could
/// still produce an equal-distance result resolves before anything at that
/// distance is reported; exact ties break by `SegId`, making the output
/// totally ordered by `(distance, SegId)`.
struct NnEntry<N> {
    dist: Dist2,
    rank: u8,
    tie: u64,
    item: NnItem<N>,
}

impl<N> PartialEq for NnEntry<N> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<N> Eq for NnEntry<N> {}
impl<N> PartialOrd for NnEntry<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<N> Ord for NnEntry<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .cmp(&other.dist)
            .then(self.rank.cmp(&other.rank))
            .then(self.tie.cmp(&other.tie))
    }
}

/// Emission buffer for the best-first engine: the single shared min-heap.
pub struct NnSink<N> {
    heap: BinaryHeap<Reverse<NnEntry<N>>>,
    seq: u64,
}

impl<N> Default for NnSink<N> {
    fn default() -> Self {
        NnSink {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<N> NnSink<N> {
    /// Enqueue a node at a conservative lower bound.
    pub fn node(&mut self, n: N, lower_bound: Dist2) {
        self.seq += 1;
        self.heap.push(Reverse(NnEntry {
            dist: lower_bound,
            rank: 0,
            tie: self.seq,
            item: NnItem::Node(n),
        }));
    }

    /// Enqueue a candidate segment at a conservative lower bound (its
    /// exact distance is computed — one segment comparison — when it
    /// pops).
    pub fn candidate(&mut self, id: SegId, lower_bound: Dist2) {
        self.seq += 1;
        self.heap.push(Reverse(NnEntry {
            dist: lower_bound,
            rank: 1,
            tie: self.seq,
            item: NnItem::Candidate(id),
        }));
    }

    /// Enqueue a segment at its *exact* distance (the structure already
    /// fetched the record and charged the comparison). Popping it reports
    /// it — no further resolution.
    pub fn exact(&mut self, id: SegId, dist: Dist2) {
        self.heap.push(Reverse(NnEntry {
            dist,
            rank: 2,
            tie: id.0 as u64,
            item: NnItem::Exact(id),
        }));
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }
}

/// Per-context reusable traversal state. Cached in the [`QueryCtx`]
/// across queries (and across `reset`), so steady-state traversals reuse
/// capacity instead of allocating.
struct Scratch<N> {
    stack: Vec<N>,
    sink: DfsSink<N>,
    nn: NnSink<N>,
    seen: HashSet<SegId>,
}

impl<N> Default for Scratch<N> {
    fn default() -> Self {
        Scratch {
            stack: Vec::new(),
            sink: DfsSink::default(),
            nn: NnSink::default(),
            seen: HashSet::new(),
        }
    }
}

fn take_scratch<N: Copy + Send + 'static>(ctx: &mut QueryCtx) -> Box<Scratch<N>> {
    ctx.take_scratch_slot()
        // A context that last served a different structure type holds a
        // differently-typed scratch; start fresh (the old one is dropped).
        .and_then(|b| b.downcast::<Scratch<N>>().ok())
        .unwrap_or_default()
}

fn put_scratch<N: Copy + Send + 'static>(ctx: &mut QueryCtx, s: Box<Scratch<N>>) {
    ctx.put_scratch_slot(s as Box<dyn Any + Send>);
}

/// Which DFS query is running (decides prefilter, dedup policy and the
/// segment predicate).
enum DfsQuery {
    /// Incidence/probe at a point. Dedup marks ids on *emission* (a record
    /// seen in one leaf and rejected is re-fetched from another — the
    /// historical multi-leaf accounting of the R+-tree).
    Point { p: Point, probe_only: bool },
    /// Window scan. Dedup marks ids on first *encounter*: a record fetched
    /// once is never fetched again, match or not.
    Window { w: Rect },
}

/// The depth-first engine under `find_incident`, `probe_point`, `window`
/// and `window_visit`. Returns the first leaf/bucket arrival.
fn dfs_visit<A: NodeAccess>(
    acc: &A,
    q: DfsQuery,
    ctx: &mut QueryCtx,
    emit: &mut dyn FnMut(SegId),
) -> LocId {
    let mut s = take_scratch::<A::Node>(ctx);
    let Scratch {
        stack, sink, seen, ..
    } = &mut *s;
    stack.clear();
    sink.clear();
    seen.clear();
    let mut loc = LocId::NONE;
    match q {
        DfsQuery::Point { p, probe_only } => acc.seed_point(p, probe_only, ctx, sink),
        DfsQuery::Window { w } => acc.seed_window(w, ctx, sink),
    }
    loop {
        if loc == LocId::NONE {
            if let Some(l) = sink.arrived.take() {
                loc = l;
            }
        }
        for &id in &sink.entries {
            match q {
                DfsQuery::Point { p, .. } => {
                    if seen.contains(&id) {
                        continue;
                    }
                    let seg = acc.table().get(id, ctx);
                    if seg.has_endpoint(p) {
                        seen.insert(id);
                        emit(id);
                    }
                }
                DfsQuery::Window { w } => {
                    if !seen.insert(id) {
                        continue;
                    }
                    let seg = acc.table().get(id, ctx);
                    if w.intersects_segment(&seg) {
                        emit(id);
                    }
                }
            }
        }
        sink.entries.clear();
        // Visit emitted nodes in emission order: push the block reversed,
        // pop the top — exactly the classic recursion's pre-order.
        let base = stack.len();
        stack.append(&mut sink.nodes);
        stack[base..].reverse();
        let Some(n) = stack.pop() else { break };
        match q {
            DfsQuery::Point { p, probe_only } => acc.expand_point(n, p, probe_only, ctx, sink),
            DfsQuery::Window { w } => acc.expand_window(n, w, ctx, sink),
        }
    }
    put_scratch(ctx, s);
    loc
}

/// Query 1 engine: all segments with an endpoint exactly at `p`.
pub fn find_incident<A: NodeAccess>(acc: &A, p: Point, ctx: &mut QueryCtx) -> Vec<SegId> {
    let mut out = Vec::new();
    incident_visit(acc, p, ctx, &mut |id| out.push(id));
    out
}

/// Query 1 engine, streaming: like [`find_incident`] but emitting into a
/// caller-owned sink, so repeated callers (the polygon walk fires one
/// incidence query per boundary vertex) reuse one buffer instead of
/// allocating a fresh `Vec` per call. Identical traversal, identical
/// counters.
pub fn incident_visit<A: NodeAccess>(
    acc: &A,
    p: Point,
    ctx: &mut QueryCtx,
    f: &mut dyn FnMut(SegId),
) {
    dfs_visit(
        acc,
        DfsQuery::Point {
            p,
            probe_only: false,
        },
        ctx,
        f,
    );
}

/// Point-location engine: visit the same index pages as a point query,
/// fetch no segment records, report the first leaf/bucket reached.
pub fn probe_point<A: NodeAccess>(acc: &A, p: Point, ctx: &mut QueryCtx) -> LocId {
    dfs_visit(
        acc,
        DfsQuery::Point {
            p,
            probe_only: true,
        },
        ctx,
        &mut |_| {},
    )
}

/// Query 5 engine, streaming: every segment meeting `w`, once each.
pub fn window_visit<A: NodeAccess>(acc: &A, w: Rect, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
    dfs_visit(acc, DfsQuery::Window { w }, ctx, f);
}

/// Query 5 engine, materializing.
pub fn window<A: NodeAccess>(acc: &A, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId> {
    let mut out = Vec::new();
    window_visit(acc, w, ctx, &mut |id| out.push(id));
    out
}

/// The incremental best-first loop under both nearest-neighbor entry
/// points: emits the first `k` distinct segments in `(distance, SegId)`
/// order.
fn best_first_drive<A: NodeAccess>(
    acc: &A,
    p: Point,
    k: usize,
    ctx: &mut QueryCtx,
    emit: &mut dyn FnMut(SegId),
) {
    if k == 0 {
        return;
    }
    let mut s = take_scratch::<A::Node>(ctx);
    let Scratch { nn, seen, .. } = &mut *s;
    nn.clear();
    seen.clear();
    acc.seed_nearest(p, ctx, nn);
    let mut emitted = 0usize;
    while let Some(Reverse(NnEntry { item, .. })) = nn.heap.pop() {
        match item {
            NnItem::Exact(id) => {
                // A segment stored in several leaves/buckets resolves to
                // several exacts; report it once.
                if seen.insert(id) {
                    emit(id);
                    emitted += 1;
                    if emitted == k {
                        break;
                    }
                }
            }
            NnItem::Candidate(id) => {
                let seg = acc.table().get(id, ctx);
                nn.exact(id, seg.dist2_point(p));
            }
            NnItem::Node(n) => acc.expand_nearest(n, p, ctx, nn),
        }
    }
    put_scratch(ctx, s);
}

/// Query 3 engine: a segment at minimal distance from `p` (smallest
/// `SegId` among equidistant ones).
pub fn best_first_nearest<A: NodeAccess>(acc: &A, p: Point, ctx: &mut QueryCtx) -> Option<SegId> {
    let mut found = None;
    best_first_drive(acc, p, 1, ctx, &mut |id| found = Some(id));
    found
}

/// Ranked-retrieval engine: the `k` nearest segments in
/// `(distance, SegId)` order.
pub fn best_first_nearest_k<A: NodeAccess>(
    acc: &A,
    p: Point,
    k: usize,
    ctx: &mut QueryCtx,
) -> Vec<SegId> {
    let mut out = Vec::new();
    best_first_drive(acc, p, k, ctx, &mut |id| out.push(id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nn_entry_order_is_dist_then_kind_then_tie() {
        let e = |dist: i64, rank: u8, tie: u64| NnEntry::<u32> {
            dist: Dist2::from_int(dist),
            rank,
            tie,
            item: NnItem::Exact(SegId(0)),
        };
        assert!(e(1, 2, 0) < e(2, 0, 0), "distance dominates");
        assert!(e(5, 0, 9) < e(5, 2, 1), "nodes resolve before exacts");
        assert!(e(5, 2, 3) < e(5, 2, 4), "exact ties break by id");
    }

    #[test]
    fn scratch_is_reused_across_queries() {
        let mut ctx = QueryCtx::new();
        let mut s = take_scratch::<u32>(&mut ctx);
        s.stack.reserve(64);
        let cap = s.stack.capacity();
        s.stack.push(7);
        put_scratch(&mut ctx, s);
        ctx.reset();
        let s = take_scratch::<u32>(&mut ctx);
        assert!(s.stack.capacity() >= cap, "capacity survives reset");
        // A differently-typed scratch starts fresh instead of panicking.
        put_scratch(&mut ctx, s);
        let other = take_scratch::<(i32, i32)>(&mut ctx);
        assert_eq!(other.stack.capacity(), 0);
    }
}
