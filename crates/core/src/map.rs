use lsdb_geom::{world_rect, Point, Rect, Segment};
use std::collections::HashMap;

/// A *polygonal map*: a line-segment database of vertices and edges,
/// "regardless of whether or not the line segments are connected to each
/// other" (paper §2). This is the in-memory form; indexes consume it via a
/// [`crate::SegmentTable`].
#[derive(Clone, Debug)]
pub struct PolygonalMap {
    pub name: String,
    pub segments: Vec<Segment>,
}

/// A planarity violation: two segments that properly cross (or overlap, or
/// form a T-junction away from a vertex).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanarityViolation {
    pub first: usize,
    pub second: usize,
}

impl PolygonalMap {
    pub fn new(name: impl Into<String>, segments: Vec<Segment>) -> Self {
        PolygonalMap {
            name: name.into(),
            segments,
        }
    }

    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Minimum bounding rectangle of the whole map. `None` if empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.segments.iter();
        let first = it.next()?.bbox();
        Some(it.fold(first, |acc, s| acc.union(&s.bbox())))
    }

    /// True if every coordinate lies in the normalized 16K×16K world.
    pub fn is_normalized(&self) -> bool {
        let w = world_rect();
        self.segments
            .iter()
            .all(|s| w.contains_point(s.a) && w.contains_point(s.b))
    }

    /// All vertices (distinct endpoints) with their incident segment ids.
    /// An in-memory reference structure for tests and the brute-force
    /// oracle — a real database would answer this through the index.
    pub fn vertex_incidence(&self) -> HashMap<Point, Vec<usize>> {
        let mut m: HashMap<Point, Vec<usize>> = HashMap::new();
        for (i, s) in self.segments.iter().enumerate() {
            m.entry(s.a).or_default().push(i);
            m.entry(s.b).or_default().push(i);
        }
        m
    }

    /// Check vertex-noded planarity: no two segments properly intersect
    /// (sharing endpoints is allowed; crossings, overlaps and T-junctions
    /// are not). Also rejects degenerate (zero-length) and duplicate
    /// segments. Returns the first violation found.
    ///
    /// Cost is kept near-linear by bucketing segments into a coarse grid
    /// and testing only bucket-local pairs.
    pub fn validate_planar(&self) -> Result<(), PlanarityViolation> {
        for (i, s) in self.segments.iter().enumerate() {
            if s.is_degenerate() {
                return Err(PlanarityViolation {
                    first: i,
                    second: i,
                });
            }
        }
        // Duplicate detection on canonical endpoints.
        let mut seen: HashMap<(Point, Point), usize> = HashMap::new();
        for (i, s) in self.segments.iter().enumerate() {
            let c = s.canonical();
            if let Some(&j) = seen.get(&(c.a, c.b)) {
                return Err(PlanarityViolation {
                    first: j,
                    second: i,
                });
            }
            seen.insert((c.a, c.b), i);
        }
        let Some(bbox) = self.bbox() else {
            return Ok(());
        };
        // ~4 segments per cell on average.
        let target_cells = (self.segments.len() / 4).max(1);
        let side = ((bbox.width().max(bbox.height()) as f64) / (target_cells as f64).sqrt())
            .ceil()
            .max(1.0) as i64;
        let mut grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, s) in self.segments.iter().enumerate() {
            let b = s.bbox();
            let cx0 = b.min.x as i64 / side;
            let cx1 = b.max.x as i64 / side;
            let cy0 = b.min.y as i64 / side;
            let cy1 = b.max.y as i64 / side;
            for cx in cx0..=cx1 {
                for cy in cy0..=cy1 {
                    grid.entry((cx, cy)).or_default().push(i);
                }
            }
        }
        for ids in grid.values() {
            for (k, &i) in ids.iter().enumerate() {
                for &j in &ids[k + 1..] {
                    if self.segments[i].properly_intersects(&self.segments[j]) {
                        let (a, b) = if i < j { (i, j) } else { (j, i) };
                        return Err(PlanarityViolation {
                            first: a,
                            second: b,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Scale and translate all coordinates so the map's minimum bounding
    /// **square** maps onto the 16K×16K world, as the paper does ("a
    /// minimum bounding square was computed for each map, and all
    /// coordinate values were normalized with respect to a 16K by 16K
    /// region"). Degenerate segments produced by snapping are dropped.
    pub fn normalize_to_world(&mut self) {
        let Some(b) = self.bbox() else { return };
        let span = b.width().max(b.height()).max(1);
        let w = lsdb_geom::WORLD_SIZE as i64 - 1;
        let tx = |v: i32, lo: i32| -> i32 { (((v - lo) as i64 * w) / span) as i32 };
        for s in &mut self.segments {
            s.a = Point::new(tx(s.a.x, b.min.x), tx(s.a.y, b.min.y));
            s.b = Point::new(tx(s.b.x, b.min.x), tx(s.b.y, b.min.y));
        }
        self.segments.retain(|s| !s.is_degenerate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: i32, ay: i32, bx: i32, by: i32) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn bbox_and_len() {
        let m = PolygonalMap::new("t", vec![seg(1, 2, 3, 4), seg(0, 9, 2, 1)]);
        assert_eq!(m.bbox(), Some(Rect::new(0, 1, 3, 9)));
        assert_eq!(m.len(), 2);
        assert!(PolygonalMap::new("e", vec![]).bbox().is_none());
    }

    #[test]
    fn vertex_incidence_groups_segments() {
        let m = PolygonalMap::new("t", vec![seg(0, 0, 5, 0), seg(5, 0, 5, 5), seg(5, 0, 9, 9)]);
        let inc = m.vertex_incidence();
        assert_eq!(inc[&Point::new(5, 0)], vec![0, 1, 2]);
        assert_eq!(inc[&Point::new(0, 0)], vec![0]);
    }

    #[test]
    fn planarity_accepts_shared_endpoints() {
        let m = PolygonalMap::new(
            "t",
            vec![seg(0, 0, 5, 5), seg(5, 5, 10, 0), seg(5, 5, 5, 10)],
        );
        assert!(m.validate_planar().is_ok());
    }

    #[test]
    fn planarity_rejects_crossing() {
        let m = PolygonalMap::new("t", vec![seg(0, 0, 10, 10), seg(0, 10, 10, 0)]);
        assert_eq!(
            m.validate_planar(),
            Err(PlanarityViolation {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn planarity_rejects_t_junction_duplicates_degenerates() {
        let t = PolygonalMap::new("t", vec![seg(0, 0, 10, 0), seg(5, 0, 5, 5)]);
        assert!(t.validate_planar().is_err());
        let d = PolygonalMap::new("t", vec![seg(0, 0, 3, 3), seg(3, 3, 0, 0)]);
        assert!(d.validate_planar().is_err(), "duplicate (reversed) segment");
        let z = PolygonalMap::new("t", vec![seg(4, 4, 4, 4)]);
        assert!(z.validate_planar().is_err(), "degenerate segment");
    }

    #[test]
    fn planarity_catches_distant_pair_in_same_cell_row() {
        // Crossing far from the origin, exercising grid bucketing.
        let mut segs = vec![];
        for i in 0..100 {
            segs.push(seg(i * 10, 0, i * 10 + 5, 5));
        }
        segs.push(seg(900, 900, 1000, 1000));
        segs.push(seg(900, 1000, 1000, 900));
        let m = PolygonalMap::new("t", segs);
        let err = m.validate_planar().unwrap_err();
        assert_eq!((err.first, err.second), (100, 101));
    }

    #[test]
    fn normalize_scales_into_world() {
        let mut m = PolygonalMap::new("t", vec![seg(100, 100, 200, 150), seg(200, 150, 300, 300)]);
        m.normalize_to_world();
        assert!(m.is_normalized());
        let b = m.bbox().unwrap();
        // The longest axis now spans the world.
        assert_eq!(b.width().max(b.height()), lsdb_geom::WORLD_SIZE as i64 - 1);
    }

    #[test]
    fn normalize_drops_snapped_degenerates() {
        // Two segments, one microscopically short relative to the other:
        // snapping collapses it.
        let mut m = PolygonalMap::new("t", vec![seg(0, 0, 1_000_000, 1_000_000), seg(5, 5, 6, 5)]);
        m.normalize_to_world();
        assert_eq!(m.len(), 1);
    }
}
