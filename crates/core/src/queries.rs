//! Structure-independent implementations of paper queries 2 and 4.
//!
//! * **Query 2** — "given an endpoint of a line segment, find all the line
//!   segments that are incident at the other endpoint of the line segment".
//!   One segment-table access to learn the other endpoint, then a query-1
//!   point search.
//!
//! * **Query 4** — "given a point in the two-dimensional space containing
//!   the line segments, find the minimal enclosing polygon by outputting
//!   its constituent line segments". Executed exactly as the paper
//!   describes: one nearest-line query (query 3) locates a boundary edge of
//!   the polygon, then the boundary is traversed "by repeatedly executing
//!   query 2 and determining the right line segment from the ones that are
//!   returned" — the *right* one being the first in clockwise order from
//!   the reversed incoming direction, which walks the face containing the
//!   query point.
//!
//! Both compositions take `&I` plus a [`QueryCtx`], like the trait queries
//! they are built from, so they run concurrently against a shared index.

use crate::{QueryCtx, SegId, SpatialIndex};
use lsdb_geom::angle::{first_clockwise_from, Dir};
use lsdb_geom::{orient, Point};

/// Result of an enclosing-polygon traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolygonWalk {
    /// Boundary edges in traversal order. A segment can appear twice when
    /// the face boundary doubles back over a dead-end road.
    pub boundary: Vec<SegId>,
    /// True if the walk returned to its starting directed edge; false if
    /// it was cut short by the step limit.
    pub closed: bool,
}

impl PolygonWalk {
    /// The polygon's constituent segments, deduplicated, in first-visit
    /// order.
    pub fn distinct_segments(&self) -> Vec<SegId> {
        let mut seen = std::collections::HashSet::new();
        self.boundary
            .iter()
            .copied()
            .filter(|id| seen.insert(*id))
            .collect()
    }

    /// Number of boundary steps (the paper's "polygon size": the average
    /// was 19 in urban Baltimore county and 132 in rural Charles county).
    pub fn len(&self) -> usize {
        self.boundary.len()
    }

    pub fn is_empty(&self) -> bool {
        self.boundary.is_empty()
    }
}

/// Query 2: all segments incident at the other endpoint of `id`, given
/// that `p` is one of its endpoints. The returned set includes `id` itself
/// (it is incident at that endpoint too).
///
/// Following the paper's implementation (its Point2 bounding-box metrics
/// are exactly twice its Point1 metrics, while its segment comparisons are
/// Point1's plus one), the structure is first probed at the *given*
/// endpoint to locate the segment's leaf, the segment record is fetched
/// (one segment comparison), and then the full point search runs at the
/// other endpoint.
pub fn second_endpoint<I: SpatialIndex + ?Sized>(
    index: &I,
    id: SegId,
    p: Point,
    ctx: &mut QueryCtx,
) -> Vec<SegId> {
    index.probe_point(p, ctx);
    let seg = index.seg_table().get(id, ctx);
    let other = seg.other_endpoint(p);
    index.find_incident(other, ctx)
}

/// Query 4: walk the boundary of the face containing `p`.
///
/// Returns `None` if the index is empty. `max_steps` bounds the traversal
/// (the outer face of a 50k-segment map can be long); a typical limit is
/// `4 * n`.
pub fn enclosing_polygon<I: SpatialIndex + ?Sized>(
    index: &I,
    p: Point,
    max_steps: usize,
    ctx: &mut QueryCtx,
) -> Option<PolygonWalk> {
    let e0 = index.nearest(p, ctx)?;
    let s0 = index.seg_table().get(e0, ctx);
    // Walk the face on p's side: orient the starting edge u->v so that p
    // lies to its left. If p is exactly on the segment's supporting line,
    // either face is "the" enclosing polygon; take a->b.
    let (mut u, mut v) = if orient(s0.a, s0.b, p) >= 0 {
        (s0.a, s0.b)
    } else {
        (s0.b, s0.a)
    };
    let start = (u, v);
    let mut walk = PolygonWalk {
        boundary: vec![e0],
        closed: false,
    };
    let mut current = e0;
    // The walk fires one incidence query per boundary vertex — hundreds
    // on rural faces — so the per-step working vectors live outside the
    // loop and are refilled in place.
    let mut incident: Vec<SegId> = Vec::new();
    let mut dirs: Vec<Dir> = Vec::new();
    let mut far: Vec<Point> = Vec::new();
    for _ in 0..max_steps {
        // Query 2 at v: segments incident at the far end of the current
        // edge, then select the clockwise-first one from the reversed
        // incoming direction.
        incident.clear();
        index.find_incident_visit(v, ctx, &mut |id| incident.push(id));
        debug_assert!(
            incident.contains(&current),
            "index lost the current boundary edge at {v:?}"
        );
        let d_in = Dir::between(v, u);
        dirs.clear();
        far.clear();
        for &cand in &incident {
            let s = index.seg_table().get(cand, ctx);
            let w = s.other_endpoint(v);
            far.push(w);
            dirs.push(Dir::between(v, w));
        }
        let next_idx = first_clockwise_from(d_in, &dirs)?;
        let next_id = incident[next_idx];
        let w = far[next_idx];
        u = v;
        v = w;
        current = next_id;
        if (u, v) == start {
            walk.closed = true;
            break;
        }
        walk.boundary.push(next_id);
    }
    Some(walk)
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end (against real indexes) in each index crate and
    // in the workspace integration tests; the unit tests here use a mock
    // index around the brute-force oracle.
    use super::*;
    use crate::{brute, IndexConfig, PolygonalMap, QueryStats, SegmentTable};
    use lsdb_geom::{Rect, Segment};

    /// A trivial SpatialIndex that answers via the brute-force oracle.
    struct BruteIndex {
        map: PolygonalMap,
        table: SegmentTable,
    }

    impl BruteIndex {
        fn new(map: PolygonalMap) -> Self {
            let cfg = IndexConfig::default();
            let table = SegmentTable::from_map(&map, cfg.page_size, cfg.pool_pages);
            BruteIndex { map, table }
        }
    }

    impl SpatialIndex for BruteIndex {
        fn name(&self) -> &'static str {
            "brute"
        }
        fn seg_table(&self) -> &SegmentTable {
            &self.table
        }
        fn seg_table_mut(&mut self) -> &mut SegmentTable {
            &mut self.table
        }
        fn insert(&mut self, _id: SegId) {}
        fn remove(&mut self, _id: SegId) -> bool {
            false
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn find_incident(&self, p: Point, _ctx: &mut QueryCtx) -> Vec<SegId> {
            brute::incident(&self.map, p)
        }
        fn nearest(&self, p: Point, _ctx: &mut QueryCtx) -> Option<SegId> {
            brute::nearest(&self.map, p).map(|(id, _)| id)
        }
        fn window(&self, w: Rect, _ctx: &mut QueryCtx) -> Vec<SegId> {
            brute::window(&self.map, w)
        }
        fn stats(&self) -> QueryStats {
            QueryStats::default()
        }
        fn reset_stats(&mut self) {}
        fn size_bytes(&self) -> u64 {
            0
        }
        fn clear_cache(&mut self) {}
    }

    fn seg(ax: i32, ay: i32, bx: i32, by: i32) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// A 2×1 block of two squares sharing a wall, with a dead-end stub
    /// hanging off the middle of the shared wall into the left square:
    ///
    /// ```text
    ///   (0,10)---(10,10)---(20,10)
    ///     |         |          |
    ///     |  stub---+          |
    ///     |         |          |
    ///   (0,0)----(10,0)----(20,0)
    /// ```
    fn two_squares_with_stub() -> PolygonalMap {
        PolygonalMap::new(
            "two-squares",
            vec![
                seg(0, 0, 10, 0),    // 0 bottom-left
                seg(10, 0, 20, 0),   // 1 bottom-right
                seg(20, 0, 20, 10),  // 2 right wall
                seg(20, 10, 10, 10), // 3 top-right
                seg(10, 10, 0, 10),  // 4 top-left
                seg(0, 10, 0, 0),    // 5 left wall
                seg(10, 0, 10, 5),   // 6 shared wall, lower half
                seg(10, 5, 10, 10),  // 7 shared wall, upper half
                seg(10, 5, 5, 5),    // 8 dead-end stub into the left square
            ],
        )
    }

    #[test]
    fn second_endpoint_includes_self_and_neighbors() {
        let idx = BruteIndex::new(two_squares_with_stub());
        let mut ctx = QueryCtx::new();
        // Segment 0 from (0,0): other endpoint (10,0) touches 0, 1, 6.
        let got = second_endpoint(&idx, SegId(0), Point::new(0, 0), &mut ctx);
        assert_eq!(brute::sorted(got), vec![SegId(0), SegId(1), SegId(6)]);
        assert_eq!(ctx.seg_comps, 1, "one table fetch for the other endpoint");
    }

    #[test]
    fn polygon_around_point_in_right_square() {
        let idx = BruteIndex::new(two_squares_with_stub());
        let mut ctx = QueryCtx::new();
        let walk = enclosing_polygon(&idx, Point::new(15, 5), 100, &mut ctx).unwrap();
        assert!(walk.closed);
        assert_eq!(
            brute::sorted(walk.distinct_segments()),
            vec![SegId(1), SegId(2), SegId(3), SegId(6), SegId(7)]
        );
        assert_eq!(walk.len(), 5, "the stub is not on the right face");
    }

    #[test]
    fn polygon_around_point_in_left_square_walks_the_stub() {
        let idx = BruteIndex::new(two_squares_with_stub());
        let mut ctx = QueryCtx::new();
        // Query near the left wall: nearest edge is 5; the face boundary
        // includes the dead-end stub, whose segment is traversed twice.
        let walk = enclosing_polygon(&idx, Point::new(1, 5), 100, &mut ctx).unwrap();
        assert!(walk.closed);
        let distinct = brute::sorted(walk.distinct_segments());
        assert_eq!(
            distinct,
            vec![SegId(0), SegId(4), SegId(5), SegId(6), SegId(7), SegId(8)],
            "left square walls + stub"
        );
        let stub_visits = walk.boundary.iter().filter(|&&s| s == SegId(8)).count();
        assert_eq!(stub_visits, 2, "dead-end edge appears twice");
        assert_eq!(walk.len(), 7);
    }

    #[test]
    fn polygon_outside_walks_outer_face() {
        let idx = BruteIndex::new(two_squares_with_stub());
        let mut ctx = QueryCtx::new();
        let walk = enclosing_polygon(&idx, Point::new(-5, 5), 100, &mut ctx).unwrap();
        assert!(walk.closed);
        // Outer face: the outer boundary of the 2x1 block (not the shared
        // wall, not the stub).
        assert_eq!(
            brute::sorted(walk.distinct_segments()),
            vec![SegId(0), SegId(1), SegId(2), SegId(3), SegId(4), SegId(5)]
        );
    }

    #[test]
    fn polygon_respects_step_limit() {
        let idx = BruteIndex::new(two_squares_with_stub());
        let mut ctx = QueryCtx::new();
        let walk = enclosing_polygon(&idx, Point::new(15, 5), 2, &mut ctx).unwrap();
        assert!(!walk.closed);
        assert_eq!(walk.len(), 3, "start edge + 2 steps");
    }

    #[test]
    fn polygon_on_empty_index_is_none() {
        let idx = BruteIndex::new(PolygonalMap::new("empty", vec![]));
        let mut ctx = QueryCtx::new();
        assert!(enclosing_polygon(&idx, Point::new(0, 0), 10, &mut ctx).is_none());
    }

    #[test]
    fn shared_index_serves_parallel_walks() {
        // The same BruteIndex (and its segment table) serves four threads
        // walking the same polygon; each context sees identical counters.
        let idx = BruteIndex::new(two_squares_with_stub());
        let idx = &idx;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        let mut ctx = QueryCtx::new();
                        let walk =
                            enclosing_polygon(idx, Point::new(15, 5), 100, &mut ctx).unwrap();
                        (brute::sorted(walk.distinct_segments()), ctx.stats())
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for r in &results {
                assert_eq!(*r, results[0], "identical answers and counters");
            }
        });
    }
}
