//! Locality-sorted batch execution of homogeneous query vectors.
//!
//! A batch is one vector of same-typed queries executed back-to-back
//! against one structure by one [`QueryCtx`]. Before execution the batch
//! is sorted by the Morton (Z-order) key of each query's point, so
//! queries landing in the same region of the world run consecutively and
//! the context's warm state — pinned page bytes and the segment
//! mini-cache — is maximally reused across neighbors. Between items the
//! context is advanced with [`QueryCtx::next_query`], which keeps that
//! warmth but replays every charge per query, so **each item's
//! [`QueryStats`] is byte-identical to executing it alone on a freshly
//! reset context** (asserted by the bench crate's counter guard). Results
//! are returned in the original submission order.

use crate::{queries, QueryCtx, QueryStats, SegId, SpatialIndex};
use lsdb_geom::{morton, Point, Rect};

/// A homogeneous vector of queries, executed as one unit by
/// [`execute_batch`]. Variants mirror the singleton wire requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchRequest {
    /// Query 1 per point: all segments incident at the point.
    Incident(Vec<Point>),
    /// Query 2 per `(id, at)` pair: segments at the other endpoint.
    Second(Vec<(SegId, Point)>),
    /// Query 3 per point: the nearest segment.
    Nearest(Vec<Point>),
    /// Ranked query 3 per `(at, k)` pair.
    Knn(Vec<(Point, u32)>),
    /// Query 5 per rectangle.
    Window(Vec<Rect>),
    /// Query 4 per point, all sharing one step cap.
    Polygon { points: Vec<Point>, max_steps: u32 },
}

impl BatchRequest {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        match self {
            BatchRequest::Incident(v) => v.len(),
            BatchRequest::Second(v) => v.len(),
            BatchRequest::Nearest(v) => v.len(),
            BatchRequest::Knn(v) => v.len(),
            BatchRequest::Window(v) => v.len(),
            BatchRequest::Polygon { points, .. } => points.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest segment id the batch references, if any (`Second`
    /// batches only) — what a server validates against the map before
    /// executing.
    pub fn max_seg_id(&self) -> Option<SegId> {
        match self {
            BatchRequest::Second(v) => v.iter().map(|&(id, _)| id).max(),
            _ => None,
        }
    }

    /// The singleton request equivalent to item `i` — the definition of
    /// what a batch item *means* (parity tests execute these).
    fn query_point(&self, i: usize) -> Point {
        match self {
            BatchRequest::Incident(v) => v[i],
            BatchRequest::Second(v) => v[i].1,
            BatchRequest::Nearest(v) => v[i],
            BatchRequest::Knn(v) => v[i].0,
            // A window's locality is its center.
            BatchRequest::Window(v) => {
                let w = &v[i];
                Point::new(
                    w.min.x + (w.max.x - w.min.x) / 2,
                    w.min.y + (w.max.y - w.min.y) / 2,
                )
            }
            BatchRequest::Polygon { points, .. } => points[i],
        }
    }
}

/// One batch item's answer, mirroring the singleton reply shapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchAnswer {
    /// Incident / second / knn / window: a segment-id set.
    Segs(Vec<SegId>),
    /// Nearest: the closest segment, `None` only for an empty index.
    Nearest(Option<SegId>),
    /// Polygon: boundary walk plus the closed flag, `None` for an empty
    /// index.
    Polygon(Option<(Vec<SegId>, bool)>),
}

impl BatchAnswer {
    /// Result cardinality (segments returned / boundary steps).
    pub fn result_size(&self) -> usize {
        match self {
            BatchAnswer::Segs(ids) => ids.len(),
            BatchAnswer::Nearest(id) => id.is_some() as usize,
            BatchAnswer::Polygon(walk) => walk.as_ref().map_or(0, |(b, _)| b.len()),
        }
    }
}

/// One executed batch item: the answer plus the per-query counter
/// snapshot (byte-identical to singleton execution).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchItem {
    pub answer: BatchAnswer,
    pub stats: QueryStats,
}

/// Morton key of a query point, clamped into the 16-bit-per-axis domain
/// [`morton::interleave`] accepts (the world is 14 levels deep, so all
/// in-world points pass through unclamped).
fn morton_key(p: Point) -> u32 {
    morton::interleave(p.x.clamp(0, 0xFFFF) as u32, p.y.clamp(0, 0xFFFF) as u32)
}

/// Execute every query of `req` against `index`, in Morton order of query
/// point, returning per-item answers and counters in the original
/// submission order.
///
/// The context is [`QueryCtx::reset`] once up front, then advanced with
/// [`QueryCtx::next_query`] between items: page pins and the segment
/// mini-cache stay warm across neighboring queries, while every counter
/// is charged per item exactly as a fresh context would charge it.
pub fn execute_batch(
    index: &dyn SpatialIndex,
    req: &BatchRequest,
    ctx: &mut QueryCtx,
) -> Vec<BatchItem> {
    let n = req.len();
    // Stable order: ties broken by submission index, so execution order —
    // and therefore nothing at all, per the counter invariant — depends
    // only on the batch contents.
    let mut order: Vec<(u32, u32)> = (0..n)
        .map(|i| (morton_key(req.query_point(i)), i as u32))
        .collect();
    order.sort_unstable();

    ctx.reset();
    let mut out: Vec<Option<BatchItem>> = (0..n).map(|_| None).collect();
    for &(_, i) in &order {
        ctx.next_query();
        let i = i as usize;
        let answer = match req {
            BatchRequest::Incident(v) => BatchAnswer::Segs(index.find_incident(v[i], ctx)),
            BatchRequest::Second(v) => {
                let (id, at) = v[i];
                BatchAnswer::Segs(queries::second_endpoint(index, id, at, ctx))
            }
            BatchRequest::Nearest(v) => BatchAnswer::Nearest(index.nearest(v[i], ctx)),
            BatchRequest::Knn(v) => {
                let (at, k) = v[i];
                BatchAnswer::Segs(index.nearest_k(at, k as usize, ctx))
            }
            BatchRequest::Window(v) => BatchAnswer::Segs(index.window(v[i], ctx)),
            BatchRequest::Polygon { points, max_steps } => {
                let walk = queries::enclosing_polygon(index, points[i], *max_steps as usize, ctx);
                BatchAnswer::Polygon(walk.map(|w| (w.boundary, w.closed)))
            }
        };
        out[i] = Some(BatchItem {
            answer,
            stats: ctx.stats(),
        });
    }
    out.into_iter()
        .map(|o| o.expect("every submission index executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_key_orders_neighbors_together() {
        // Points in the same quadrant sort adjacent to each other, ahead
        // of a far-away point that is closer in submission order.
        let near_a = morton_key(Point::new(10, 10));
        let near_b = morton_key(Point::new(11, 10));
        let far = morton_key(Point::new(9000, 9000));
        assert!(near_a < far && near_b < far);
        assert!(near_a.abs_diff(near_b) < near_a.abs_diff(far));
    }

    #[test]
    fn morton_key_clamps_out_of_world_points() {
        // Must not trip interleave's 16-bit debug assertion.
        let _ = morton_key(Point::new(-5, i32::MAX));
        let _ = morton_key(Point::new(i32::MIN, 70000));
    }

    #[test]
    fn batch_len_and_max_seg_id() {
        let b = BatchRequest::Second(vec![
            (SegId(3), Point::new(0, 0)),
            (SegId(9), Point::new(1, 1)),
            (SegId(4), Point::new(2, 2)),
        ]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.max_seg_id(), Some(SegId(9)));
        let w = BatchRequest::Window(vec![]);
        assert!(w.is_empty());
        assert_eq!(w.max_seg_id(), None);
    }
}
