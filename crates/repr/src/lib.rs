//! The representative-point index — the paper's §2 counter-example.
//!
//! "Using a representative point, each line segment can be represented by
//! its endpoints ... in effect, we have constructed a mapping from a
//! two-dimensional space to a four-dimensional space. This mapping is fine
//! for storage purposes. However, it is not ideal for spatial operations
//! involving search ... proximity in the two-dimensional space from which
//! the lines are drawn is not necessarily preserved in the four-dimensional
//! space."
//!
//! This crate implements that strawman faithfully so the claim can be
//! *measured* (see the `ablation` benchmark): a uniform 4-d grid over the
//! representative points `(x1, y1, x2, y2)` of the canonicalized segments —
//! the transformed-space bucketing the paper contrasts with spatial
//! occupancy (a simplified grid file "applied to the transformed data").
//!
//! What goes right and wrong, exactly as §2 predicts:
//!
//! * **Storage** is ideal: every segment lives in exactly one bucket, no
//!   redundancy at all.
//! * **Exact-endpoint search** (query 1) is tolerable: fixing two of the
//!   four coordinates leaves a 2-d slab of `g²` cells per endpoint role.
//! * **Window and nearest queries suffer**: a small 2-d window corresponds
//!   to a large, non-rectangular region of the 4-d space, and Euclidean
//!   proximity does not transfer, so the search must visit a large share
//!   of the buckets and fall back to coarse 4-d lower bounds.

use lsdb_core::{
    IndexConfig, PolygonalMap, QueryCtx, QueryStats, SegId, SegmentTable, SpatialIndex,
};
use lsdb_geom::{Dist2, Point, Rect, Segment, WORLD_SIZE};
use lsdb_pager::{MemPool, PageId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const HDR: usize = 8; // count u16 at 0, next page u32 at 4

/// A uniform 4-d grid over segment representative points.
pub struct ReprGrid {
    pool: MemPool,
    table: SegmentTable,
    /// Cells per axis (total cells = g⁴).
    g: i32,
    /// First/tail page of each 4-d cell's bucket chain, by flattened index.
    chains: Vec<Option<(PageId, PageId)>>,
    ids_per_page: usize,
    len: usize,
}

/// 4-d cell coordinates.
type Cell4 = [i32; 4];

impl ReprGrid {
    /// `g` cells per axis; `g⁴` buckets in total (keep `g` small).
    pub fn new(table: SegmentTable, cfg: IndexConfig, g: i32) -> Self {
        assert!((2..=16).contains(&g), "g^4 buckets: keep g in 2..=16");
        assert!(WORLD_SIZE % g == 0);
        let pool = MemPool::in_memory(cfg.page_size, cfg.pool_pages);
        let ids_per_page = (cfg.page_size - HDR) / 4;
        ReprGrid {
            pool,
            table,
            g,
            chains: vec![None; (g * g * g * g) as usize],
            ids_per_page,
            len: 0,
        }
    }

    pub fn build(map: &PolygonalMap, cfg: IndexConfig, g: i32) -> Self {
        let table = SegmentTable::from_map(map, cfg.page_size, cfg.pool_pages);
        let mut t = ReprGrid::new(table, cfg, g);
        for id in 0..map.segments.len() {
            t.insert(SegId(id as u32));
        }
        t
    }

    fn side(&self) -> i32 {
        WORLD_SIZE / self.g
    }

    /// The representative point of a segment: canonical endpoint order so
    /// the mapping is deterministic for undirected segments.
    fn rep(seg: &Segment) -> [i32; 4] {
        let c = seg.canonical();
        [c.a.x, c.a.y, c.b.x, c.b.y]
    }

    fn cell_of(&self, rep: [i32; 4]) -> Cell4 {
        let s = self.side();
        [rep[0] / s, rep[1] / s, rep[2] / s, rep[3] / s].map(|c| c.clamp(0, self.g - 1))
    }

    fn flat(&self, c: Cell4) -> usize {
        let g = self.g as usize;
        ((c[0] as usize * g + c[1] as usize) * g + c[2] as usize) * g + c[3] as usize
    }

    /// The 2-d rectangle of world positions axis-pair `lo` of a cell can
    /// hold: `[c*s, c*s + s - 1]`.
    fn axis_range(&self, c: i32) -> (i32, i32) {
        let s = self.side();
        (c * s, c * s + s - 1)
    }

    fn bucket_ids(&mut self, flat: usize) -> Vec<SegId> {
        let mut out = Vec::new();
        let Some((first, _)) = self.chains[flat] else {
            return out;
        };
        let mut page = Some(first);
        while let Some(pid) = page {
            page = self.pool.with_page(pid, |buf| {
                let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
                for i in 0..count {
                    let at = HDR + i * 4;
                    out.push(SegId(u32::from_le_bytes(
                        buf[at..at + 4].try_into().unwrap(),
                    )));
                }
                let next = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                (next != u32::MAX).then_some(PageId(next))
            });
        }
        out
    }

    fn append(&mut self, flat: usize, id: SegId) {
        let per = self.ids_per_page;
        let new_page = |pool: &mut MemPool, id: SegId| -> PageId {
            let pid = pool.allocate();
            pool.with_page_mut(pid, |buf| {
                buf[0..2].copy_from_slice(&1u16.to_le_bytes());
                buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
                buf[HDR..HDR + 4].copy_from_slice(&id.0.to_le_bytes());
            });
            pid
        };
        match self.chains[flat] {
            None => {
                let pid = new_page(&mut self.pool, id);
                self.chains[flat] = Some((pid, pid));
            }
            Some((first, tail)) => {
                let appended = self.pool.with_page_mut(tail, |buf| {
                    let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
                    if count < per {
                        let at = HDR + count * 4;
                        buf[at..at + 4].copy_from_slice(&id.0.to_le_bytes());
                        buf[0..2].copy_from_slice(&((count + 1) as u16).to_le_bytes());
                        true
                    } else {
                        false
                    }
                });
                if !appended {
                    let pid = new_page(&mut self.pool, id);
                    self.pool.with_page_mut(tail, |buf| {
                        buf[4..8].copy_from_slice(&pid.0.to_le_bytes());
                    });
                    self.chains[flat] = Some((first, pid));
                }
            }
        }
    }

    /// Query-path twin of [`ReprGrid::bucket_ids`]: walk the chain over the
    /// pool's shared read path, charging page reads to the context. One
    /// call is one bucket computation.
    fn bucket_ids_ctx(&self, flat: usize, ctx: &mut QueryCtx) -> Vec<SegId> {
        ctx.bbox_comps += 1;
        let mut out = Vec::new();
        let Some((first, _)) = self.chains[flat] else {
            return out;
        };
        let mut page = Some(first);
        while let Some(pid) = page {
            page = self.pool.read_page(pid, &mut ctx.index, |buf| {
                let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
                for i in 0..count {
                    let at = HDR + i * 4;
                    out.push(SegId(u32::from_le_bytes(
                        buf[at..at + 4].try_into().unwrap(),
                    )));
                }
                let next = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                (next != u32::MAX).then_some(PageId(next))
            });
        }
        out
    }

    /// Iterate cells of the 2-d slab where axes `(ai, aj)` are fixed to the
    /// cell coordinates containing `(vi, vj)`.
    fn slab_cells(&self, ai: usize, aj: usize, vi: i32, vj: i32) -> Vec<usize> {
        let s = self.side();
        let (ci, cj) = ((vi / s).clamp(0, self.g - 1), (vj / s).clamp(0, self.g - 1));
        let mut cells = Vec::with_capacity((self.g * self.g) as usize);
        for a in 0..self.g {
            for b in 0..self.g {
                let mut c = [0i32; 4];
                c[ai] = ci;
                c[aj] = cj;
                let free: Vec<usize> = (0..4).filter(|k| *k != ai && *k != aj).collect();
                c[free[0]] = a;
                c[free[1]] = b;
                cells.push(self.flat(c));
            }
        }
        cells
    }

    /// Lower bound on the distance from `p` to any segment whose
    /// representative point lies in cell `c`: both endpoints are confined
    /// to known 2-d rectangles, and a segment cannot be closer to `p` than
    /// the nearer of the two... it can (its interior can pass closer), so
    /// the only sound cell-level bound is the distance to the convex hull
    /// of the two endpoint rectangles — approximated by the bounding box
    /// of both, which is a valid lower bound.
    fn cell_dist_lb(&self, c: Cell4, p: Point) -> i64 {
        let (x1l, x1h) = self.axis_range(c[0]);
        let (y1l, y1h) = self.axis_range(c[1]);
        let (x2l, x2h) = self.axis_range(c[2]);
        let (y2l, y2h) = self.axis_range(c[3]);
        let hull = Rect::new(x1l.min(x2l), y1l.min(y2l), x1h.max(x2h), y1h.max(y2h));
        hull.dist2_point(p)
    }
}

struct CellEntry {
    dist: i64,
    flat: usize,
}

impl PartialEq for CellEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.flat == other.flat
    }
}
impl Eq for CellEntry {}
impl PartialOrd for CellEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CellEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.cmp(&other.dist).then(self.flat.cmp(&other.flat))
    }
}

impl SpatialIndex for ReprGrid {
    fn name(&self) -> &'static str {
        "repr-point 4-d grid"
    }

    fn seg_table(&self) -> &SegmentTable {
        &self.table
    }

    fn seg_table_mut(&mut self) -> &mut SegmentTable {
        &mut self.table
    }

    fn insert(&mut self, id: SegId) {
        let seg = self.table.fetch(id);
        let cell = self.cell_of(Self::rep(&seg));
        let flat = self.flat(cell);
        self.append(flat, id);
        self.len += 1;
    }

    fn remove(&mut self, id: SegId) -> bool {
        let seg = self.table.fetch(id);
        let flat = self.flat(self.cell_of(Self::rep(&seg)));
        let ids = self.bucket_ids(flat);
        if !ids.contains(&id) {
            return false;
        }
        // Rebuild the chain without `id`.
        if let Some((first, _)) = self.chains[flat] {
            let mut page = Some(first);
            while let Some(pid) = page {
                let next = self.pool.with_page(pid, |buf| {
                    let next = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                    (next != u32::MAX).then_some(PageId(next))
                });
                self.pool.free(pid);
                page = next;
            }
        }
        self.chains[flat] = None;
        for other in ids {
            if other != id {
                self.append(flat, other);
            }
        }
        self.len -= 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn find_incident(&self, p: Point, ctx: &mut QueryCtx) -> Vec<SegId> {
        // The canonical endpoint may sit in either role: two 2-d slabs of
        // g² buckets each.
        let mut out = Vec::new();
        for (ai, aj) in [(0, 1), (2, 3)] {
            for flat in self.slab_cells(ai, aj, p.x, p.y) {
                for id in self.bucket_ids_ctx(flat, ctx) {
                    let seg = self.table.get(id, ctx);
                    if seg.has_endpoint(p) && !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    fn nearest(&self, p: Point, ctx: &mut QueryCtx) -> Option<SegId> {
        if self.len == 0 {
            return None;
        }
        // Best-first over all g⁴ cells with the (weak) hull lower bound —
        // the paper's point: there is no good way to localize this search
        // in the transformed space.
        let g = self.g;
        let mut heap: BinaryHeap<Reverse<CellEntry>> = BinaryHeap::new();
        for x1 in 0..g {
            for y1 in 0..g {
                for x2 in 0..g {
                    for y2 in 0..g {
                        let c = [x1, y1, x2, y2];
                        if self.chains[self.flat(c)].is_some() {
                            heap.push(Reverse(CellEntry {
                                dist: self.cell_dist_lb(c, p),
                                flat: self.flat(c),
                            }));
                        }
                    }
                }
            }
        }
        let mut best: Option<(Dist2, SegId)> = None;
        while let Some(Reverse(CellEntry { dist, flat })) = heap.pop() {
            if let Some((bd, _)) = best {
                if bd <= Dist2::from_int(dist) {
                    break;
                }
            }
            for id in self.bucket_ids_ctx(flat, ctx) {
                let seg = self.table.get(id, ctx);
                let d = seg.dist2_point(p);
                if best.is_none_or(|(bd, bid)| (d, id) < (bd, bid)) {
                    best = Some((d, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    fn window(&self, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId> {
        let mut out = Vec::new();
        self.window_visit(w, ctx, &mut |id| out.push(id));
        out
    }

    fn window_visit(&self, w: Rect, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        // A segment intersecting `w` cannot have both endpoints strictly on
        // the same outside of `w` along either axis; every 4-d cell not
        // excluded by that test must be scanned.
        let g = self.g;
        let excluded_axis = |cl: i32, ch: i32, lo: i32, hi: i32| -> bool {
            // Both endpoint coordinate ranges on one side of the window.
            (ch < lo) || (cl > hi)
        };
        for x1 in 0..g {
            for y1 in 0..g {
                for x2 in 0..g {
                    for y2 in 0..g {
                        let (x1l, x1h) = self.axis_range(x1);
                        let (x2l, x2h) = self.axis_range(x2);
                        let (y1l, y1h) = self.axis_range(y1);
                        let (y2l, y2h) = self.axis_range(y2);
                        // The segment's bbox spans from min to max of the
                        // endpoint ranges; exclude cells whose every
                        // possible bbox misses the window.
                        if excluded_axis(x1l.min(x2l), x1h.max(x2h), w.min.x, w.max.x)
                            || excluded_axis(y1l.min(y2l), y1h.max(y2h), w.min.y, w.max.y)
                        {
                            continue;
                        }
                        let flat = self.flat([x1, y1, x2, y2]);
                        if self.chains[flat].is_none() {
                            continue;
                        }
                        for id in self.bucket_ids_ctx(flat, ctx) {
                            let seg = self.table.get(id, ctx);
                            if w.intersects_segment(&seg) {
                                f(id);
                            }
                        }
                    }
                }
            }
        }
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            disk: self.pool.stats(),
            seg_comps: 0,
            bbox_comps: 0,
            seg_disk: self.table.disk_stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pool.reset_stats();
        self.table.reset_stats();
    }

    fn size_bytes(&self) -> u64 {
        self.pool.size_bytes()
    }

    fn clear_cache(&mut self) {
        self.pool.clear();
    }

    fn attach_budget(&mut self, budget: &std::sync::Arc<lsdb_pager::BufferBudget>) {
        self.pool.attach_budget(budget);
        self.table.attach_budget(budget);
    }

    fn shed_cache(&self, target_bytes: u64) -> std::io::Result<u64> {
        let freed = self.pool.shed(target_bytes)?;
        Ok(freed + self.table.shed_cache(target_bytes.saturating_sub(freed))?)
    }

    fn cache_stats(&self) -> lsdb_pager::CacheStats {
        let mut s = self.pool.cache_stats();
        s.add(self.table.cache_stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::brute;

    fn cfg() -> IndexConfig {
        IndexConfig {
            page_size: 256,
            pool_pages: 16,
            ..Default::default()
        }
    }

    fn cross_map() -> PolygonalMap {
        let q = WORLD_SIZE / 4;
        PolygonalMap::new(
            "cross",
            vec![
                Segment::new(Point::new(10, 10), Point::new(q, q)),
                Segment::new(Point::new(q, q), Point::new(3 * q, q)),
                Segment::new(Point::new(3 * q, q), Point::new(3 * q, 3 * q)),
                Segment::new(Point::new(0, 2 * q), Point::new(WORLD_SIZE - 1, 2 * q)),
                Segment::new(Point::new(2 * q, 0), Point::new(2 * q, WORLD_SIZE - 1)),
            ],
        )
    }

    #[test]
    fn build_and_storage_is_duplication_free() {
        let map = cross_map();
        let t = ReprGrid::build(&map, cfg(), 4);
        assert_eq!(t.len(), map.len());
        // One bucket entry per segment: the §2 "fine for storage" claim.
        // 5 segments × 4 bytes plus chain headers fits a single page per
        // occupied bucket.
        assert!(t.size_bytes() <= 5 * 256);
    }

    #[test]
    fn incident_matches_brute_force() {
        let map = cross_map();
        let t = ReprGrid::build(&map, cfg(), 4);
        let mut ctx = QueryCtx::new();
        let q = WORLD_SIZE / 4;
        for p in [
            Point::new(q, q),
            Point::new(3 * q, q),
            Point::new(10, 10),
            Point::new(5, 5),
        ] {
            assert_eq!(
                brute::sorted(t.find_incident(p, &mut ctx)),
                brute::incident(&map, p),
                "at {p:?}"
            );
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let map = cross_map();
        let t = ReprGrid::build(&map, cfg(), 4);
        let mut ctx = QueryCtx::new();
        for x in (0..WORLD_SIZE).step_by(2231) {
            for y in (0..WORLD_SIZE).step_by(1787) {
                let p = Point::new(x, y);
                let got = t.nearest(p, &mut ctx).expect("non-empty");
                let want = brute::nearest(&map, p).unwrap();
                assert_eq!(map.segments[got.index()].dist2_point(p), want.1, "at {p:?}");
            }
        }
    }

    #[test]
    fn window_matches_brute_force() {
        let map = cross_map();
        let t = ReprGrid::build(&map, cfg(), 4);
        let mut ctx = QueryCtx::new();
        let q = WORLD_SIZE / 4;
        for w in [
            Rect::new(0, 0, WORLD_SIZE - 1, WORLD_SIZE - 1),
            Rect::new(q - 10, q - 10, q + 10, q + 10),
            Rect::new(0, 2 * q, 5, 2 * q),
            Rect::new(123, 456, 789, 1011),
        ] {
            assert_eq!(
                brute::sorted(t.window(w, &mut ctx)),
                brute::window(&map, w),
                "{w:?}"
            );
        }
    }

    #[test]
    fn remove_works() {
        let map = cross_map();
        let mut t = ReprGrid::build(&map, cfg(), 4);
        assert!(t.remove(SegId(1)));
        assert!(!t.remove(SegId(1)));
        assert_eq!(t.len(), map.len() - 1);
        let mut ctx = QueryCtx::new();
        let w = Rect::new(0, 0, WORLD_SIZE - 1, WORLD_SIZE - 1);
        let want: Vec<SegId> = brute::window(&map, w)
            .into_iter()
            .filter(|id| id.0 != 1)
            .collect();
        assert_eq!(brute::sorted(t.window(w, &mut ctx)), want);
    }

    #[test]
    fn mixed_lengths_defeat_window_localization_as_the_paper_predicts() {
        // When segment lengths vary (short streets + long highways, as in
        // any road network), the 4-d cells holding long segments have
        // endpoint ranges spanning the whole map and can never be excluded:
        // every tiny window must scan all of them. This is §2's "proximity
        // ... is not necessarily preserved" made measurable.
        let mut segs = Vec::new();
        for i in 0i32..200 {
            let x = (i % 20) * 800 + 13;
            let y = (i / 20) * 800 + 29;
            segs.push(Segment::new(Point::new(x, y), Point::new(x + 300, y + 250)));
        }
        let n_short = segs.len();
        for i in 0i32..49 {
            // Long "highways" fanning out from near the window's corner to
            // 49 different destination cells: each lands in a distinct 4-d
            // bucket, every one of whose possible bounding boxes covers
            // the window — no window test can exclude any of them.
            segs.push(Segment::new(
                Point::new(300 + (i % 5), 350 + (i % 7)),
                Point::new(2048 * (1 + i % 7) + 700, 2048 * (1 + (i / 7) % 7) + 900),
            ));
        }
        let map = PolygonalMap::new("mixed", segs);
        let t = ReprGrid::build(&map, cfg(), 8);
        // The cells holding the highways can never be excluded by any
        // window test.
        let highway_cells: std::collections::HashSet<usize> = (n_short..map.len())
            .map(|i| t.flat(t.cell_of(ReprGrid::rep(&map.segments[i]))))
            .collect();
        let mut ctx = QueryCtx::new();
        let w = Rect::new(400, 400, 560, 560); // tiny corner window
        let hits = t.window(w, &mut ctx);
        let visited = ctx.stats().bbox_comps;
        assert!(
            visited as usize >= highway_cells.len(),
            "every highway bucket must be scanned: visited {visited}, \
             highway buckets {}",
            highway_cells.len()
        );
        assert!(visited > 15, "visited {visited}");
        // Correctness is unaffected — only cost.
        assert_eq!(brute::sorted(hits), brute::window(&map, w));
    }
}
