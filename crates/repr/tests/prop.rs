//! Property-style tests for the representative-point 4-d grid: despite
//! being the paper's §2 strawman, it must be *correct* — only its costs are
//! bad. Cases are drawn from fixed-seed [`lsdb_rng::StdRng`] streams.

use lsdb_core::{brute, IndexConfig, PolygonalMap, QueryCtx, SegId, SpatialIndex};
use lsdb_geom::{Point, Rect, Segment};
use lsdb_repr::ReprGrid;
use lsdb_rng::StdRng;

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0..16384i32), rng.gen_range(0..16384i32))
}

fn rand_segment(rng: &mut StdRng) -> Segment {
    loop {
        let a = rand_point(rng);
        let b = rand_point(rng);
        if a != b {
            return Segment::new(a, b);
        }
    }
}

fn rand_map(rng: &mut StdRng, max: usize) -> PolygonalMap {
    let n = rng.gen_range(1..max);
    PolygonalMap::new("prop", (0..n).map(|_| rand_segment(rng)).collect())
}

#[test]
fn queries_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0x4E94_0001);
    for _ in 0..24 {
        let map = rand_map(&mut rng, 60);
        let g = [2i32, 4, 8][rng.gen_range(0usize..3)];
        let cfg = IndexConfig {
            page_size: 256,
            pool_pages: 8,
            ..Default::default()
        };
        let t = ReprGrid::build(&map, cfg, g);
        let mut ctx = QueryCtx::new();
        for _ in 0..rng.gen_range(1..6) {
            let p = rand_point(&mut rng);
            assert_eq!(
                brute::sorted(t.find_incident(p, &mut ctx)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p, &mut ctx).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for _ in 0..rng.gen_range(1..4) {
            let w = Rect::bounding(rand_point(&mut rng), rand_point(&mut rng));
            assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
        }
    }
}

#[test]
fn incident_at_real_endpoints() {
    // The rep-point index's one fast query: exact endpoint lookups.
    let mut rng = StdRng::seed_from_u64(0x4E94_0002);
    for _ in 0..24 {
        let map = rand_map(&mut rng, 50);
        let cfg = IndexConfig {
            page_size: 256,
            pool_pages: 8,
            ..Default::default()
        };
        let t = ReprGrid::build(&map, cfg, 8);
        let mut ctx = QueryCtx::new();
        for s in map.segments.iter().take(20) {
            for p in [s.a, s.b] {
                assert_eq!(
                    brute::sorted(t.find_incident(p, &mut ctx)),
                    brute::incident(&map, p)
                );
            }
        }
    }
}

#[test]
fn deletes_then_queries() {
    let mut rng = StdRng::seed_from_u64(0x4E94_0003);
    for _ in 0..24 {
        let map = rand_map(&mut rng, 50);
        let cfg = IndexConfig {
            page_size: 128,
            pool_pages: 8,
            ..Default::default()
        };
        let mut t = ReprGrid::build(&map, cfg, 4);
        let mut kept = Vec::new();
        for i in 0..map.len() {
            if rng.gen_range(0u32..2) == 0 {
                assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        assert_eq!(t.len(), kept.len());
        let mut ctx = QueryCtx::new();
        let w = Rect::new(0, 0, 16383, 16383);
        assert_eq!(brute::sorted(t.window(w, &mut ctx)), kept);
    }
}
