//! Property tests for the representative-point 4-d grid: despite being the
//! paper's §2 strawman, it must be *correct* — only its costs are bad.

use lsdb_core::{brute, IndexConfig, PolygonalMap, SegId, SpatialIndex};
use lsdb_geom::{Point, Rect, Segment};
use lsdb_repr::ReprGrid;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0..16384i32, 0..16384i32).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point())
        .prop_filter("non-degenerate", |(a, b)| a != b)
        .prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_map(max: usize) -> impl Strategy<Value = PolygonalMap> {
    prop::collection::vec(arb_segment(), 1..max)
        .prop_map(|segs| PolygonalMap::new("prop", segs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn queries_match_oracle(
        map in arb_map(60),
        g in prop::sample::select(vec![2i32, 4, 8]),
        probes in prop::collection::vec(arb_point(), 1..6),
        windows in prop::collection::vec((arb_point(), arb_point()), 1..4),
    ) {
        let cfg = IndexConfig { page_size: 256, pool_pages: 8 };
        let mut t = ReprGrid::build(&map, cfg, g);
        for &p in &probes {
            prop_assert_eq!(
                brute::sorted(t.find_incident(p)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            prop_assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for &(a, b) in &windows {
            let w = Rect::bounding(a, b);
            prop_assert_eq!(brute::sorted(t.window(w)), brute::window(&map, w));
        }
    }

    #[test]
    fn incident_at_real_endpoints(map in arb_map(50)) {
        // The rep-point index's one fast query: exact endpoint lookups.
        let cfg = IndexConfig { page_size: 256, pool_pages: 8 };
        let mut t = ReprGrid::build(&map, cfg, 8);
        for s in map.segments.iter().take(20) {
            for p in [s.a, s.b] {
                prop_assert_eq!(
                    brute::sorted(t.find_incident(p)),
                    brute::incident(&map, p)
                );
            }
        }
    }

    #[test]
    fn deletes_then_queries(
        map in arb_map(50),
        delete_mask in prop::collection::vec(any::<bool>(), 50),
    ) {
        let cfg = IndexConfig { page_size: 128, pool_pages: 8 };
        let mut t = ReprGrid::build(&map, cfg, 4);
        let mut kept = Vec::new();
        for i in 0..map.len() {
            if delete_mask[i] {
                prop_assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        prop_assert_eq!(t.len(), kept.len());
        let w = Rect::new(0, 0, 16383, 16383);
        prop_assert_eq!(brute::sorted(t.window(w)), kept);
    }
}
