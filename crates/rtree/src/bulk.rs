//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The paper builds its trees by one-by-one insertion (and pays for it —
//! Table 1's R\*-tree build CPU is ~9× the R+-tree's). A production system
//! loading a whole county at once would bulk-load instead: sort by x into
//! vertical slices, sort each slice by y, pack nodes to capacity, recurse.
//! The result is near-100% occupancy and a build that is orders of
//! magnitude cheaper than R\* insertion; the ablation benchmark compares
//! both. STR (Leutenegger, Lopez & Edgington) is insertion-order
//! independent, so bulk-loaded trees are also fully deterministic.

use crate::RTree;
use lsdb_core::rectnode::{entries_mbr, Entry, RectNode};
#[cfg(test)]
use lsdb_core::SegId;
use lsdb_core::{IndexConfig, PolygonalMap, SegmentTable};
use lsdb_pager::PageId;

impl RTree {
    /// Bulk-load a tree over `map` using Sort-Tile-Recursive packing.
    ///
    /// The resulting tree satisfies every R-tree invariant (all leaves at
    /// one level, nodes between `m` and `M` entries — trailing nodes
    /// borrow from their left neighbour to stay above `m`) and answers
    /// queries identically to an insertion-built tree; only its shape (and
    /// therefore its per-query metrics) differs.
    pub fn bulk_load(map: &PolygonalMap, cfg: IndexConfig) -> RTree {
        let table = SegmentTable::from_map(map, cfg.page_size, cfg.pool_pages);
        let mut tree = RTree::new(table, cfg, crate::RTreeKind::RStar);
        if map.is_empty() {
            return tree;
        }
        // The empty placeholder root from `new` is recycled by the first
        // allocation below.
        let placeholder = tree.root;
        tree.pool.free(placeholder);
        // Leaf entries: (segment MBR, segment id).
        let mut entries: Vec<Entry> = map
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| Entry {
                rect: s.bbox(),
                child: i as u32,
            })
            .collect();
        let mut level = 1u32;
        loop {
            let groups = str_tile(&mut entries, tree.m_max, tree.m_min);
            let single = groups.len() == 1;
            let mut parents = Vec::with_capacity(groups.len());
            for group in groups {
                let pid = tree.write_node(&group, level == 1);
                parents.push(Entry {
                    rect: entries_mbr(&group),
                    child: pid.0,
                });
            }
            if single {
                tree.root = PageId(parents[0].child);
                tree.height = level;
                tree.len = map.len();
                return tree;
            }
            entries = parents;
            level += 1;
        }
    }

    fn write_node(&mut self, entries: &[Entry], leaf: bool) -> PageId {
        let pid = self.pool.allocate();
        let mut ordered = entries.to_vec();
        lsdb_core::rectnode::order_entries(&mut ordered, self.order);
        self.pool.with_page_mut(pid, |buf| {
            RectNode::init(buf, leaf);
            RectNode::write_entries(buf, &ordered);
        });
        pid
    }
}

/// Partition `entries` into groups of `m..=cap` entries using STR tiling:
/// slice vertically by x-center, then pack each slice by y-center.
fn str_tile(entries: &mut [Entry], cap: usize, m: usize) -> Vec<Vec<Entry>> {
    let n = entries.len();
    if n <= cap {
        return vec![entries.to_vec()];
    }
    let node_count = n.div_ceil(cap);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slice_count);
    entries.sort_by_key(|e| center2(&e.rect).0);
    let mut groups = Vec::with_capacity(node_count);
    for slice in entries.chunks_mut(per_slice) {
        slice.sort_by_key(|e| center2(&e.rect).1);
        for chunk in slice.chunks(cap) {
            groups.push(chunk.to_vec());
        }
        rebalance_tail(&mut groups, m);
    }
    groups
}

/// Doubled center coordinates (exact, no rounding).
fn center2(r: &lsdb_geom::Rect) -> (i64, i64) {
    r.center2()
}

/// If the last group fell below `m`, move entries from its predecessor;
/// when the predecessor cannot spare enough (it may itself hold only `m`
/// after an earlier rebalance), merge the two groups instead — `m ≤ 40%·M`
/// guarantees the merged group fits one node.
fn rebalance_tail(groups: &mut Vec<Vec<Entry>>, m: usize) {
    let k = groups.len();
    if k < 2 {
        return;
    }
    let need = m.saturating_sub(groups[k - 1].len());
    if need == 0 {
        return;
    }
    if groups[k - 2].len() >= m + need {
        let (left, right) = groups.split_at_mut(k - 1);
        let donor = &mut left[k - 2];
        for _ in 0..need {
            let e = donor.pop().expect("donor entries");
            right[0].push(e);
        }
    } else {
        let tail = groups.pop().expect("k >= 2");
        let prev = groups.last_mut().expect("k >= 2");
        prev.extend(tail);
        debug_assert!(
            prev.len() <= 2 * m,
            "merged STR group exceeds capacity bound"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::{brute, SpatialIndex};
    use lsdb_geom::{Point, Rect, Segment};

    fn cfg_small() -> IndexConfig {
        IndexConfig {
            page_size: 224,
            pool_pages: 8,
            ..Default::default()
        }
    }

    fn random_ish_map(n: usize) -> PolygonalMap {
        // Deterministic scatter without rand.
        let segs: Vec<Segment> = (0..n)
            .map(|i| {
                let x = ((i * 7919) % 16000) as i32;
                let y = ((i * 104729) % 16000) as i32;
                Segment::new(
                    Point::new(x, y),
                    Point::new(x + 37, y + ((i % 90) as i32) - 45),
                )
            })
            .collect();
        PolygonalMap::new("scatter", segs)
    }

    #[test]
    fn bulk_load_satisfies_invariants() {
        for n in [1usize, 9, 10, 11, 57, 400] {
            let map = random_ish_map(n);
            let mut t = RTree::bulk_load(&map, cfg_small());
            let segs = t.check_invariants();
            assert_eq!(segs.len(), n, "n = {n}");
        }
    }

    #[test]
    fn bulk_load_answers_match_oracle() {
        let map = random_ish_map(300);
        let t = RTree::bulk_load(&map, cfg_small());
        let mut ctx = lsdb_core::QueryCtx::new();
        for i in (0..16000).step_by(2911) {
            let p = Point::new(i, (i * 3) % 16000);
            let got = t.nearest(p, &mut ctx).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
            let w = Rect::new(p.x.saturating_sub(500).max(0), 0, p.x + 500, 15999);
            assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
        }
    }

    #[test]
    fn bulk_load_is_denser_than_insertion() {
        let map = random_ish_map(500);
        let mut packed = RTree::bulk_load(&map, cfg_small());
        let mut grown = RTree::build(&map, cfg_small(), crate::RTreeKind::RStar);
        assert!(
            packed.avg_leaf_occupancy() > grown.avg_leaf_occupancy(),
            "packed {:.1} vs grown {:.1}",
            packed.avg_leaf_occupancy(),
            grown.avg_leaf_occupancy()
        );
        assert!(packed.size_bytes() < grown.size_bytes());
    }

    #[test]
    fn bulk_and_insert_built_trees_answer_identically() {
        // Satellite contract: results identical, counters may differ.
        let map = random_ish_map(250);
        let bulk = RTree::bulk_load(&map, cfg_small());
        let grown = RTree::build(&map, cfg_small(), crate::RTreeKind::RStar);
        let mut cb = lsdb_core::QueryCtx::new();
        let mut cg = lsdb_core::QueryCtx::new();
        for i in (0..16000).step_by(911) {
            let p = Point::new(i, (i * 7) % 16000);
            assert_eq!(
                bulk.nearest(p, &mut cb)
                    .map(|id| map.segments[id.index()].dist2_point(p)),
                grown
                    .nearest(p, &mut cg)
                    .map(|id| map.segments[id.index()].dist2_point(p)),
            );
            let w = Rect::new((i - 700).max(0), 0, i + 700, 15999);
            assert_eq!(
                brute::sorted(bulk.window(w, &mut cb)),
                brute::sorted(grown.window(w, &mut cg)),
            );
            assert_eq!(
                brute::sorted(bulk.find_incident(p, &mut cb)),
                brute::sorted(grown.find_incident(p, &mut cg)),
            );
        }
    }

    #[test]
    fn bulk_loaded_tree_accepts_updates() {
        let map = random_ish_map(200);
        let mut t = RTree::bulk_load(&map, cfg_small());
        for i in (0..200).step_by(2) {
            assert!(t.remove(SegId(i as u32)));
        }
        for i in (0..200).step_by(2) {
            t.insert(SegId(i as u32));
        }
        assert_eq!(t.check_invariants().len(), 200);
    }
}
