//! Paged R-tree family: the R\*-tree the paper evaluates, plus Guttman's
//! quadratic- and linear-split R-trees as ablation baselines.
//!
//! The structure follows the paper's implementation notes exactly:
//!
//! * nodes are pages of (R, O) 2-tuples, 20 bytes each (50 per 1 KB page);
//! * `M ≈ S/k` and `m = 40% · M`, "in accordance with the values reported
//!   to be best by the originators of the R\*-tree";
//! * the R\*-tree uses minimum-overlap-enlargement subtree choice at the
//!   leaf level, the margin/overlap split of Beckmann et al., and forced
//!   reinsertion of 30% of the entries on the first overflow per level
//!   ("the computationally expensive node overflow technique where 30% of
//!   the bounding boxes are reinserted into the structure");
//! * everything sits behind a 16-page LRU buffer pool, and queries count
//!   disk accesses, segment comparisons and bounding-box computations.

mod bulk;
mod split;

pub use split::RTreeKind;

use lsdb_core::rectnode::{
    entries_mbr, order_entries, Entry, EntryOrder, RectNode, RectTreeAccess,
};
use lsdb_core::{
    traverse, IndexConfig, LocId, PolygonalMap, QueryCtx, QueryStats, SegId, SegmentTable,
    SpatialIndex,
};
use lsdb_geom::{Point, Rect};
use lsdb_pager::{MemPool, PageId};
use std::cmp::Reverse;

/// Fraction of entries force-reinserted on the first overflow of a level
/// (R\*-tree only). The paper and Beckmann et al. use 30%.
const REINSERT_FRACTION: f64 = 0.3;

/// A disk-resident R-tree over line segments.
pub struct RTree {
    pool: MemPool,
    table: SegmentTable,
    kind: RTreeKind,
    root: PageId,
    /// Level of the root; leaves are level 1.
    height: u32,
    m_max: usize,
    m_min: usize,
    len: usize,
    /// Intra-node ordering applied whenever a node is rewritten
    /// (splits, reinsertion keeps, bulk packing).
    order: EntryOrder,
}

impl RTree {
    /// Create an empty tree of the given variant. The segment table must
    /// contain (at least) the segments that will be inserted.
    pub fn new(table: SegmentTable, cfg: IndexConfig, kind: RTreeKind) -> Self {
        // Pool-open time is when the scan ISA is decided: warm the cached
        // selection so the first query pays a plain atomic load.
        lsdb_core::scan::active_isa();
        let mut pool = MemPool::in_memory(cfg.page_size, cfg.pool_pages);
        let m_max = RectNode::capacity(cfg.page_size);
        assert!(m_max >= 4, "page too small for an R-tree node");
        let m_min = ((m_max as f64 * 0.4).ceil() as usize).max(2);
        let root = pool.allocate();
        pool.with_page_mut(root, |buf| RectNode::init(buf, true));
        RTree {
            pool,
            table,
            kind,
            root,
            height: 1,
            m_max,
            m_min,
            len: 0,
            order: cfg.entry_order,
        }
    }

    /// Build a tree over a whole map by inserting its segments in order.
    pub fn build(map: &PolygonalMap, cfg: IndexConfig, kind: RTreeKind) -> Self {
        let table = SegmentTable::from_map(map, cfg.page_size, cfg.pool_pages);
        let mut t = RTree::new(table, cfg, kind);
        for id in 0..map.segments.len() {
            t.insert(SegId(id as u32));
        }
        t
    }

    /// Maximum entries per node (the paper's `M`; 50 with 1 KB pages).
    pub fn m_max(&self) -> usize {
        self.m_max
    }

    /// Minimum fill (the paper's `m = 40%·M`).
    pub fn m_min(&self) -> usize {
        self.m_min
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    /// Average number of entries per leaf node — the paper's §7 occupancy
    /// audit found ≈36 for the R\*-tree and ≈32 for the R+-tree.
    pub fn avg_leaf_occupancy(&mut self) -> f64 {
        let root = self.root;
        let height = self.height;
        let (sum, leaves) = self.leaf_occupancy_rec(root, height);
        sum as f64 / leaves as f64
    }

    fn leaf_occupancy_rec(&mut self, pid: PageId, level: u32) -> (u64, u64) {
        if level == 1 {
            let c = self.pool.with_page(pid, RectNode::count);
            return (c as u64, 1);
        }
        let children: Vec<PageId> = self.pool.with_page(pid, |buf| {
            RectNode::entries(buf)
                .iter()
                .map(|e| PageId(e.child))
                .collect()
        });
        let mut sum = 0;
        let mut leaves = 0;
        for ch in children {
            let (s, l) = self.leaf_occupancy_rec(ch, level - 1);
            sum += s;
            leaves += l;
        }
        (sum, leaves)
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    fn insert_entry(&mut self, e: Entry, level: u32, reinserted_levels: &mut u64) {
        let mut pending: Vec<(Entry, u32)> = Vec::new();
        let root = self.root;
        let height = self.height;
        if let Some(sibling) =
            self.insert_rec(root, height, e, level, reinserted_levels, &mut pending)
        {
            // Root split: grow the tree.
            let old_root = self.root;
            let old_mbr = self.pool.with_page(old_root, RectNode::mbr);
            let new_root = self.pool.allocate();
            self.pool.with_page_mut(new_root, |buf| {
                RectNode::init(buf, false);
                RectNode::push(
                    buf,
                    Entry {
                        rect: old_mbr,
                        child: old_root.0,
                    },
                );
                RectNode::push(buf, sibling);
            });
            self.root = new_root;
            self.height += 1;
        }
        // Forced reinsertions run after the main path has unwound, on a
        // structurally consistent tree.
        while let Some((e2, l2)) = pending.pop() {
            self.insert_entry(e2, l2, reinserted_levels);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        &mut self,
        pid: PageId,
        node_level: u32,
        e: Entry,
        target_level: u32,
        reinserted_levels: &mut u64,
        pending: &mut Vec<(Entry, u32)>,
    ) -> Option<Entry> {
        if node_level == target_level {
            let count = self.pool.with_page(pid, RectNode::count);
            if count < self.m_max {
                self.pool.with_page_mut(pid, |buf| RectNode::push(buf, e));
                return None;
            }
            return self.overflow(pid, node_level, e, reinserted_levels, pending);
        }
        let idx = self.choose_subtree(pid, node_level, target_level, e.rect);
        let child = self
            .pool
            .with_page(pid, |buf| PageId(RectNode::entry(buf, idx).child));
        let result = self.insert_rec(
            child,
            node_level - 1,
            e,
            target_level,
            reinserted_levels,
            pending,
        );
        // Refresh the child's MBR from its actual contents: inserts may
        // have grown it and forced reinsertion may have shrunk it.
        let child_mbr = self.pool.with_page(child, RectNode::mbr);
        self.pool.with_page_mut(pid, |buf| {
            let mut ent = RectNode::entry(buf, idx);
            ent.rect = child_mbr;
            RectNode::set_entry(buf, idx, ent);
        });
        match result {
            None => None,
            Some(sibling) => {
                let count = self.pool.with_page(pid, RectNode::count);
                if count < self.m_max {
                    self.pool
                        .with_page_mut(pid, |buf| RectNode::push(buf, sibling));
                    None
                } else {
                    self.overflow(pid, node_level, sibling, reinserted_levels, pending)
                }
            }
        }
    }

    /// Handle an overflowing node (its page holds M entries and `extra`
    /// makes M+1): R\*-trees force-reinsert 30% on the first overflow per
    /// level (except at the root); otherwise the node splits and the new
    /// sibling's entry is returned for the parent.
    fn overflow(
        &mut self,
        pid: PageId,
        level: u32,
        extra: Entry,
        reinserted_levels: &mut u64,
        pending: &mut Vec<(Entry, u32)>,
    ) -> Option<Entry> {
        let mut entries = self.pool.with_page(pid, RectNode::entries);
        entries.push(extra);
        let first_at_level = *reinserted_levels & (1 << level.min(63)) == 0;
        if self.kind == RTreeKind::RStar && level < self.height && first_at_level {
            *reinserted_levels |= 1 << level.min(63);
            // Sort by distance between entry center and node center,
            // descending; the farthest p leave the node ("close reinsert":
            // they are re-inserted nearest-first).
            let node_mbr = entries_mbr(&entries);
            let (ncx, ncy) = node_mbr.center2();
            let dist = |r: &Rect| -> i64 {
                let (cx, cy) = r.center2();
                let dx = cx - ncx;
                let dy = cy - ncy;
                dx * dx + dy * dy
            };
            entries.sort_by_key(|e| Reverse(dist(&e.rect)));
            let p = ((self.m_max as f64 * REINSERT_FRACTION).round() as usize).max(1);
            let mut keep = entries.split_off(p);
            order_entries(&mut keep, self.order);
            self.pool
                .with_page_mut(pid, |buf| RectNode::write_entries(buf, &keep));
            // `pending` is popped from the back; entries[] is sorted
            // farthest-first, so pushing in order pops nearest-first.
            for e in entries {
                pending.push((e, level));
            }
            return None;
        }
        let is_leaf = level == 1;
        let (mut left, mut right) = split::split(self.kind, entries, self.m_min);
        order_entries(&mut left, self.order);
        order_entries(&mut right, self.order);
        let right_pid = self.pool.allocate();
        self.pool.with_page_mut(pid, |buf| {
            RectNode::init(buf, is_leaf);
            RectNode::write_entries(buf, &left);
        });
        self.pool.with_page_mut(right_pid, |buf| {
            RectNode::init(buf, is_leaf);
            RectNode::write_entries(buf, &right);
        });
        Some(Entry {
            rect: entries_mbr(&right),
            child: right_pid.0,
        })
    }

    /// Pick the child of `pid` to descend into for `rect`.
    fn choose_subtree(
        &mut self,
        pid: PageId,
        node_level: u32,
        target_level: u32,
        rect: Rect,
    ) -> usize {
        let entries = self.pool.with_page(pid, RectNode::entries);
        debug_assert!(!entries.is_empty());
        let children_are_targets = node_level == target_level + 1;
        if self.kind == RTreeKind::RStar && children_are_targets {
            // Minimum overlap enlargement, then minimum area enlargement,
            // then minimum area. "This is superior to choosing the node
            // whose bounding rectangle would have to be enlarged the
            // least" (paper §3).
            let mut best = 0;
            let mut best_key = (i64::MAX, i64::MAX, i64::MAX);
            for (i, e) in entries.iter().enumerate() {
                let grown = e.rect.union(&rect);
                let mut overlap_growth = 0;
                for (j, o) in entries.iter().enumerate() {
                    if i != j {
                        overlap_growth +=
                            grown.overlap_area(&o.rect) - e.rect.overlap_area(&o.rect);
                    }
                }
                let key = (overlap_growth, e.rect.enlargement(&rect), e.rect.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            // Classic: least area enlargement, ties by smallest area.
            let mut best = 0;
            let mut best_key = (i64::MAX, i64::MAX);
            for (i, e) in entries.iter().enumerate() {
                let key = (e.rect.enlargement(&rect), e.rect.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    fn delete_rec(
        &mut self,
        pid: PageId,
        level: u32,
        rect: Rect,
        target: u32,
        orphans: &mut Vec<(Entry, u32)>,
    ) -> bool {
        if level == 1 {
            return self.pool.with_page_mut(pid, |buf| {
                for i in 0..RectNode::count(buf) {
                    if RectNode::entry(buf, i).child == target {
                        RectNode::remove_at(buf, i);
                        return true;
                    }
                }
                false
            });
        }
        let candidates: Vec<(usize, PageId)> = self.pool.with_page(pid, |buf| {
            (0..RectNode::count(buf))
                .filter(|&i| RectNode::entry(buf, i).rect.contains_rect(&rect))
                .map(|i| (i, PageId(RectNode::entry(buf, i).child)))
                .collect()
        });
        for (idx, child) in candidates {
            if !self.delete_rec(child, level - 1, rect, target, orphans) {
                continue;
            }
            let child_count = self.pool.with_page(child, RectNode::count);
            if child_count < self.m_min {
                // Dissolve the child: its surviving entries re-enter the
                // tree at their original level (CondenseTree).
                let entries = self.pool.with_page(child, RectNode::entries);
                for e in entries {
                    orphans.push((e, level - 1));
                }
                self.pool.free(child);
                self.pool
                    .with_page_mut(pid, |buf| RectNode::remove_at(buf, idx));
            } else {
                let child_mbr = self.pool.with_page(child, RectNode::mbr);
                self.pool.with_page_mut(pid, |buf| {
                    let mut ent = RectNode::entry(buf, idx);
                    ent.rect = child_mbr;
                    RectNode::set_entry(buf, idx, ent);
                });
            }
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Queries — all traversal lives in the shared engines; this crate
    // contributes only the node layout via [`RectTreeAccess`].
    // ------------------------------------------------------------------

    fn access(&self) -> RectTreeAccess<'_> {
        RectTreeAccess {
            pool: &self.pool,
            table: &self.table,
            root: self.root,
            height: self.height,
        }
    }

    /// Validate structural invariants (tests only): balanced depth, fill
    /// factors, MBR consistency, and that exactly the expected segments
    /// are present. Returns the sorted set of indexed segment ids.
    pub fn check_invariants(&mut self) -> Vec<SegId> {
        let mut segs = Vec::new();
        let root = self.root;
        let height = self.height;
        let leaf_empty_root = height == 1 && self.pool.with_page(root, RectNode::count) == 0;
        if !leaf_empty_root {
            self.check_rec(root, height, true, &mut segs);
        }
        segs.sort_unstable();
        assert_eq!(segs.len(), self.len, "len counter diverged");
        for w in segs.windows(2) {
            assert!(w[0] < w[1], "duplicate segment in R-tree");
        }
        segs
    }

    fn check_rec(&mut self, pid: PageId, level: u32, is_root: bool, segs: &mut Vec<SegId>) -> Rect {
        let (is_leaf, entries) = self
            .pool
            .with_page(pid, |buf| (RectNode::is_leaf(buf), RectNode::entries(buf)));
        assert_eq!(is_leaf, level == 1, "leaf flag inconsistent with depth");
        if !is_root {
            assert!(
                entries.len() >= self.m_min,
                "node under-full: {}",
                entries.len()
            );
        } else if level > 1 {
            assert!(entries.len() >= 2, "internal root must have >= 2 entries");
        }
        assert!(entries.len() <= self.m_max);
        if level == 1 {
            for e in &entries {
                let id = SegId(e.child);
                let seg = self.table.fetch(id);
                assert_eq!(
                    e.rect,
                    seg.bbox(),
                    "leaf entry rect must be the segment MBR"
                );
                segs.push(id);
            }
        } else {
            for e in &entries {
                let child_mbr = self.check_rec(PageId(e.child), level - 1, false, segs);
                assert_eq!(e.rect, child_mbr, "parent entry rect must equal child MBR");
            }
        }
        entries_mbr(&entries)
    }
}

impl SpatialIndex for RTree {
    fn name(&self) -> &'static str {
        self.kind.display_name()
    }

    fn seg_table(&self) -> &SegmentTable {
        &self.table
    }

    fn seg_table_mut(&mut self) -> &mut SegmentTable {
        &mut self.table
    }

    fn insert(&mut self, id: SegId) {
        let rect = self.table.fetch(id).bbox();
        let mut reinserted_levels = 0u64;
        self.insert_entry(Entry { rect, child: id.0 }, 1, &mut reinserted_levels);
        self.len += 1;
    }

    fn remove(&mut self, id: SegId) -> bool {
        let rect = self.table.fetch(id).bbox();
        let mut orphans = Vec::new();
        let root = self.root;
        let height = self.height;
        if !self.delete_rec(root, height, rect, id.0, &mut orphans) {
            return false;
        }
        self.len -= 1;
        // Collapse a root with a single child.
        while self.height > 1 {
            let (count, only_child) = self.pool.with_page(self.root, |buf| {
                (RectNode::count(buf), PageId(RectNode::entry(buf, 0).child))
            });
            if count != 1 {
                break;
            }
            self.pool.free(self.root);
            self.root = only_child;
            self.height -= 1;
        }
        let mut reinserted_levels = u64::MAX; // no forced reinsert during condense
        for (e, level) in orphans {
            self.insert_entry(e, level, &mut reinserted_levels);
        }
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn find_incident(&self, p: Point, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::find_incident(&self.access(), p, ctx)
    }

    fn find_incident_visit(&self, p: Point, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::incident_visit(&self.access(), p, ctx, f);
    }

    fn probe_point(&self, p: Point, ctx: &mut QueryCtx) -> LocId {
        traverse::probe_point(&self.access(), p, ctx)
    }

    fn nearest(&self, p: Point, ctx: &mut QueryCtx) -> Option<SegId> {
        if self.len == 0 {
            return None;
        }
        traverse::best_first_nearest(&self.access(), p, ctx)
    }

    fn nearest_k(&self, p: Point, k: usize, ctx: &mut QueryCtx) -> Vec<SegId> {
        if self.len == 0 {
            return Vec::new();
        }
        traverse::best_first_nearest_k(&self.access(), p, k, ctx)
    }

    fn window(&self, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::window(&self.access(), w, ctx)
    }

    fn window_visit(&self, w: Rect, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::window_visit(&self.access(), w, ctx, f);
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            disk: self.pool.stats(),
            seg_comps: 0,
            bbox_comps: 0,
            seg_disk: self.table.disk_stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pool.reset_stats();
        self.table.reset_stats();
    }

    fn size_bytes(&self) -> u64 {
        self.pool.size_bytes()
    }

    fn clear_cache(&mut self) {
        self.pool.clear();
    }

    fn attach_budget(&mut self, budget: &std::sync::Arc<lsdb_pager::BufferBudget>) {
        self.pool.attach_budget(budget);
        self.table.attach_budget(budget);
    }

    fn shed_cache(&self, target_bytes: u64) -> std::io::Result<u64> {
        let freed = self.pool.shed(target_bytes)?;
        Ok(freed + self.table.shed_cache(target_bytes.saturating_sub(freed))?)
    }

    fn cache_stats(&self) -> lsdb_pager::CacheStats {
        let mut s = self.pool.cache_stats();
        s.add(self.table.cache_stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_geom::Segment;

    fn cfg_small() -> IndexConfig {
        // 224-byte pages -> M = 10, m = 4: splits and reinserts at small n.
        IndexConfig {
            page_size: 224,
            pool_pages: 8,
            ..Default::default()
        }
    }

    fn grid_map(n: i32) -> PolygonalMap {
        // An n×n grid of streets (like an urban county in miniature).
        let mut segs = Vec::new();
        let step = 100;
        for i in 0..=n {
            for j in 0..n {
                segs.push(Segment::new(
                    Point::new(i * step, j * step),
                    Point::new(i * step, (j + 1) * step),
                ));
                segs.push(Segment::new(
                    Point::new(j * step, i * step),
                    Point::new((j + 1) * step, i * step),
                ));
            }
        }
        PolygonalMap::new("grid", segs)
    }

    fn all_kinds() -> [RTreeKind; 3] {
        [RTreeKind::RStar, RTreeKind::Quadratic, RTreeKind::Linear]
    }

    #[test]
    fn build_and_invariants_all_kinds() {
        let map = grid_map(8);
        for kind in all_kinds() {
            let mut t = RTree::build(&map, cfg_small(), kind);
            assert_eq!(t.len(), map.len());
            let segs = t.check_invariants();
            assert_eq!(segs.len(), map.len(), "{kind:?}");
            assert!(t.height() >= 2, "{kind:?} must have split");
        }
    }

    #[test]
    fn m_values_match_paper_at_1k() {
        let map = grid_map(2);
        let t = RTree::build(&map, IndexConfig::default(), RTreeKind::RStar);
        assert_eq!(t.m_max(), 50);
        assert_eq!(t.m_min(), 20);
    }

    #[test]
    fn incident_matches_brute_force() {
        let map = grid_map(6);
        for kind in all_kinds() {
            let t = RTree::build(&map, cfg_small(), kind);
            let mut ctx = QueryCtx::new();
            // Probe every grid vertex plus some non-vertices.
            for x in (0..=600).step_by(50) {
                for y in (0..=600).step_by(50) {
                    let p = Point::new(x, y);
                    let got = lsdb_core::brute::sorted(t.find_incident(p, &mut ctx));
                    let want = lsdb_core::brute::incident(&map, p);
                    assert_eq!(got, want, "{kind:?} at {p:?}");
                }
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force_distance() {
        let map = grid_map(6);
        for kind in all_kinds() {
            let t = RTree::build(&map, cfg_small(), kind);
            let mut ctx = QueryCtx::new();
            for x in (-50..=650).step_by(37) {
                for y in (-50..=650).step_by(41) {
                    let p = Point::new(x, y);
                    let got = t.nearest(p, &mut ctx).expect("non-empty");
                    let want = lsdb_core::brute::nearest(&map, p).unwrap();
                    let got_d = map.segments[got.index()].dist2_point(p);
                    assert_eq!(got_d, want.1, "{kind:?} at {p:?}");
                }
            }
        }
    }

    #[test]
    fn window_matches_brute_force() {
        let map = grid_map(6);
        for kind in all_kinds() {
            let t = RTree::build(&map, cfg_small(), kind);
            let mut ctx = QueryCtx::new();
            let windows = [
                Rect::new(0, 0, 600, 600),
                Rect::new(120, 130, 180, 190),
                Rect::new(100, 100, 100, 100), // degenerate, on a vertex
                Rect::new(601, 601, 700, 700), // empty region
                Rect::new(55, 55, 65, 65),     // inside a block, touches nothing
            ];
            for w in windows {
                let got = lsdb_core::brute::sorted(t.window(w, &mut ctx));
                let want = lsdb_core::brute::window(&map, w);
                assert_eq!(got, want, "{kind:?} window {w:?}");
                let mut visited = Vec::new();
                t.window_visit(w, &mut ctx, &mut |id| visited.push(id));
                assert_eq!(
                    lsdb_core::brute::sorted(visited),
                    want,
                    "{kind:?} visit {w:?}"
                );
            }
        }
    }

    #[test]
    fn empty_tree_queries() {
        let map = PolygonalMap::new("empty", vec![]);
        let mut t = RTree::build(&map, cfg_small(), RTreeKind::RStar);
        let mut ctx = QueryCtx::new();
        assert_eq!(t.nearest(Point::new(5, 5), &mut ctx), None);
        assert!(t.find_incident(Point::new(5, 5), &mut ctx).is_empty());
        assert!(t.window(Rect::new(0, 0, 10, 10), &mut ctx).is_empty());
        t.check_invariants();
    }

    #[test]
    fn delete_then_queries_stay_correct() {
        let map = grid_map(6);
        for kind in all_kinds() {
            let mut t = RTree::build(&map, cfg_small(), kind);
            // Remove every third segment.
            let mut remaining = Vec::new();
            for i in 0..map.len() {
                if i % 3 == 0 {
                    assert!(t.remove(SegId(i as u32)), "{kind:?} remove {i}");
                } else {
                    remaining.push(SegId(i as u32));
                }
            }
            assert_eq!(t.check_invariants(), remaining, "{kind:?}");
            // Windows still agree with a brute force over the survivors.
            let mut ctx = QueryCtx::new();
            let w = Rect::new(90, 90, 310, 310);
            let got = lsdb_core::brute::sorted(t.window(w, &mut ctx));
            let want: Vec<SegId> = lsdb_core::brute::window(&map, w)
                .into_iter()
                .filter(|id| id.index() % 3 != 0)
                .collect();
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn delete_everything_collapses_tree() {
        let map = grid_map(5);
        let mut t = RTree::build(&map, cfg_small(), RTreeKind::RStar);
        for i in 0..map.len() {
            assert!(t.remove(SegId(i as u32)));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        t.check_invariants();
        assert!(!t.remove(SegId(0)), "double delete returns false");
    }

    #[test]
    fn reinsert_and_requery() {
        let map = grid_map(5);
        let mut t = RTree::build(&map, cfg_small(), RTreeKind::RStar);
        for i in (0..map.len()).step_by(2) {
            t.remove(SegId(i as u32));
        }
        for i in (0..map.len()).step_by(2) {
            t.insert(SegId(i as u32));
        }
        assert_eq!(t.len(), map.len());
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        let p = Point::new(250, 250);
        assert_eq!(
            lsdb_core::brute::sorted(t.find_incident(p, &mut ctx)),
            lsdb_core::brute::incident(&map, p)
        );
    }

    #[test]
    fn query_ctx_counts_work_and_reset() {
        let map = grid_map(6);
        let mut t = RTree::build(&map, cfg_small(), RTreeKind::RStar);
        t.clear_cache();
        t.reset_stats();
        assert_eq!(t.stats(), QueryStats::default(), "build counters zeroed");
        let mut ctx = QueryCtx::new();
        let _ = t.nearest(Point::new(111, 222), &mut ctx);
        let s = ctx.stats();
        assert!(s.disk.reads > 0, "cold nearest must read index pages");
        assert!(s.bbox_comps > 0);
        assert!(s.seg_comps > 0);
        assert_eq!(
            t.stats(),
            QueryStats::default(),
            "queries never touch build counters"
        );
        ctx.reset();
        assert_eq!(ctx.stats(), QueryStats::default());
        // Warm query against a big-enough pool costs no disk: all pages
        // stayed resident from the build.
        let big = RTree::build(
            &map,
            IndexConfig {
                page_size: 224,
                pool_pages: 4096,
                ..Default::default()
            },
            RTreeKind::RStar,
        );
        let mut warm = QueryCtx::new();
        let _ = big.nearest(Point::new(111, 222), &mut warm);
        assert_eq!(warm.stats().disk.reads, 0, "warm pool, free reads");
    }

    #[test]
    fn rstar_is_more_compact_than_guttman_on_clustered_data() {
        // Not guaranteed in general, but on a regular grid the R* split
        // quality should never be wildly worse.
        let map = grid_map(10);
        let s: Vec<u64> = all_kinds()
            .iter()
            .map(|&k| RTree::build(&map, cfg_small(), k).size_bytes())
            .collect();
        let rstar = s[0] as f64;
        for (i, &v) in s.iter().enumerate() {
            assert!(
                rstar <= v as f64 * 1.5,
                "R* size {rstar} vs {:?} size {v}",
                all_kinds()[i]
            );
        }
    }

    #[test]
    fn nearest_k_ranks_by_distance() {
        let map = grid_map(5);
        for kind in all_kinds() {
            let t = RTree::build(&map, cfg_small(), kind);
            let mut ctx = QueryCtx::new();
            let p = Point::new(333, 451);
            let got = t.nearest_k(p, 8, &mut ctx);
            assert_eq!(got.len(), 8, "{kind:?}");
            let dists: Vec<_> = got
                .iter()
                .map(|id| map.segments[id.index()].dist2_point(p))
                .collect();
            assert!(
                dists.windows(2).all(|w| w[0] <= w[1]),
                "{kind:?} not ranked"
            );
            // Head agrees with nearest().
            let n1 = t.nearest(p, &mut ctx).unwrap();
            assert_eq!(
                map.segments[n1.index()].dist2_point(p),
                dists[0],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn polygon_query_via_generic_traversal() {
        let map = grid_map(4);
        let t = RTree::build(&map, cfg_small(), RTreeKind::RStar);
        let mut ctx = QueryCtx::new();
        let walk = lsdb_core::queries::enclosing_polygon(&t, Point::new(150, 150), 100, &mut ctx)
            .expect("non-empty");
        assert!(walk.closed);
        // A city block: 4 segments.
        assert_eq!(walk.len(), 4);
        for id in walk.distinct_segments() {
            let s = map.segments[id.index()];
            let b = s.bbox();
            assert!(Rect::new(100, 100, 200, 200).contains_rect(&b), "{s:?}");
        }
    }
}
