//! Node split policies for the R-tree family.
//!
//! The paper's structure is the R\*-tree: "the axis is determined by
//! examining all of the possible vertical and horizontal splits ... and
//! choosing the split for which the sum of the perimeters of the two
//! constituent nodes is minimized. [Then] we choose the split among the
//! M − 2m + 2 possibilities that results in a minimal amount of overlap."
//! Guttman's quadratic and linear splits are provided as baselines for the
//! ablation benchmarks.

#[cfg(test)]
use lsdb_core::rectnode::entries_mbr;
use lsdb_core::rectnode::Entry;
use lsdb_geom::Rect;

/// Which R-tree variant's insertion/split algorithms to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RTreeKind {
    /// Beckmann et al.'s R\*-tree: margin-driven split axis, overlap-driven
    /// split index, forced reinsertion — the structure the paper evaluates.
    RStar,
    /// Guttman's R-tree with the quadratic-cost split.
    Quadratic,
    /// Guttman's R-tree with the linear-cost split.
    Linear,
}

impl RTreeKind {
    pub fn display_name(self) -> &'static str {
        match self {
            RTreeKind::RStar => "R*-tree",
            RTreeKind::Quadratic => "R-tree (quadratic)",
            RTreeKind::Linear => "R-tree (linear)",
        }
    }
}

/// Split `entries` (M+1 of them) into two groups of at least `m_min` each.
pub fn split(kind: RTreeKind, entries: Vec<Entry>, m_min: usize) -> (Vec<Entry>, Vec<Entry>) {
    debug_assert!(entries.len() >= 2 * m_min, "too few entries to split");
    let (a, b) = match kind {
        RTreeKind::RStar => rstar_split(entries, m_min),
        RTreeKind::Quadratic => quadratic_split(entries, m_min),
        RTreeKind::Linear => linear_split(entries, m_min),
    };
    debug_assert!(a.len() >= m_min && b.len() >= m_min);
    (a, b)
}

/// Prefix and suffix MBR arrays for a sorted entry sequence: `pre[i]` is
/// the MBR of `entries[..=i]`, `suf[i]` of `entries[i..]`.
fn prefix_suffix_mbrs(entries: &[Entry]) -> (Vec<Rect>, Vec<Rect>) {
    let n = entries.len();
    let mut pre = Vec::with_capacity(n);
    let mut acc = entries[0].rect;
    for e in entries {
        acc = acc.union(&e.rect);
        pre.push(acc);
    }
    let mut suf = vec![entries[n - 1].rect; n];
    let mut acc = entries[n - 1].rect;
    for i in (0..n).rev() {
        acc = acc.union(&entries[i].rect);
        suf[i] = acc;
    }
    (pre, suf)
}

fn rstar_split(entries: Vec<Entry>, m: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    // For each axis, two sortings: by lower then by upper coordinate.
    let sortings = |axis_x: bool| -> [Vec<Entry>; 2] {
        let mut by_lower = entries.clone();
        let mut by_upper = entries.clone();
        if axis_x {
            by_lower.sort_by_key(|e| (e.rect.min.x, e.rect.max.x));
            by_upper.sort_by_key(|e| (e.rect.max.x, e.rect.min.x));
        } else {
            by_lower.sort_by_key(|e| (e.rect.min.y, e.rect.max.y));
            by_upper.sort_by_key(|e| (e.rect.max.y, e.rect.min.y));
        }
        [by_lower, by_upper]
    };

    // ChooseSplitAxis: minimize the margin sum over all distributions.
    let margin_sum = |sorted: &[Vec<Entry>; 2]| -> i64 {
        let mut s = 0;
        for seq in sorted {
            let (pre, suf) = prefix_suffix_mbrs(seq);
            for k in m..=(n - m) {
                s += pre[k - 1].margin() + suf[k].margin();
            }
        }
        s
    };
    let x_sorts = sortings(true);
    let y_sorts = sortings(false);
    let chosen = if margin_sum(&x_sorts) <= margin_sum(&y_sorts) {
        x_sorts
    } else {
        y_sorts
    };

    // ChooseSplitIndex: minimal overlap, ties by minimal total area.
    let mut best: Option<(i64, i64, usize, usize)> = None; // (overlap, area, seq, k)
    for (si, seq) in chosen.iter().enumerate() {
        let (pre, suf) = prefix_suffix_mbrs(seq);
        for k in m..=(n - m) {
            let overlap = pre[k - 1].overlap_area(&suf[k]);
            let area = pre[k - 1].area() + suf[k].area();
            if best.is_none_or(|(bo, ba, _, _)| (overlap, area) < (bo, ba)) {
                best = Some((overlap, area, si, k));
            }
        }
    }
    let (_, _, si, k) = best.expect("at least one distribution");
    let mut seq = chosen[si].clone();
    let right = seq.split_off(k);
    (seq, right)
}

fn quadratic_split(entries: Vec<Entry>, m: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    // PickSeeds: the pair wasting the most area together.
    let mut seed = (0, 1);
    let mut worst = i64::MIN;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = entries[i].rect.union(&entries[j].rect).area()
                - entries[i].rect.area()
                - entries[j].rect.area();
            if d > worst {
                worst = d;
                seed = (i, j);
            }
        }
    }
    let mut g1 = vec![entries[seed.0]];
    let mut g2 = vec![entries[seed.1]];
    let mut bb1 = entries[seed.0].rect;
    let mut bb2 = entries[seed.1].rect;
    let mut rest: Vec<Entry> = entries
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != seed.0 && *i != seed.1)
        .map(|(_, e)| e)
        .collect();

    while !rest.is_empty() {
        // Force-assign when one group needs all the rest to reach m.
        if g1.len() + rest.len() == m {
            g1.append(&mut rest);
            break;
        }
        if g2.len() + rest.len() == m {
            g2.append(&mut rest);
            break;
        }
        // PickNext: maximize preference difference.
        let mut pick = 0;
        let mut best_diff = -1i64;
        for (i, e) in rest.iter().enumerate() {
            let d1 = bb1.enlargement(&e.rect);
            let d2 = bb2.enlargement(&e.rect);
            let diff = (d1 - d2).abs();
            if diff > best_diff {
                best_diff = diff;
                pick = i;
            }
        }
        let e = rest.swap_remove(pick);
        let d1 = bb1.enlargement(&e.rect);
        let d2 = bb2.enlargement(&e.rect);
        let to_g1 = (d1, bb1.area(), g1.len()) < (d2, bb2.area(), g2.len());
        if to_g1 {
            bb1 = bb1.union(&e.rect);
            g1.push(e);
        } else {
            bb2 = bb2.union(&e.rect);
            g2.push(e);
        }
    }
    (g1, g2)
}

fn linear_split(entries: Vec<Entry>, m: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    // LinearPickSeeds: per axis, the entry with the greatest lower bound
    // and the one with the least upper bound; normalize separation by the
    // total span and take the axis with the greater value.
    let pick = |lo: &dyn Fn(&Entry) -> i32, hi: &dyn Fn(&Entry) -> i32| -> (usize, usize, f64) {
        let mut highest_low = 0;
        let mut lowest_high = 0;
        for i in 1..n {
            if lo(&entries[i]) > lo(&entries[highest_low]) {
                highest_low = i;
            }
            if hi(&entries[i]) < hi(&entries[lowest_high]) {
                lowest_high = i;
            }
        }
        let span_lo = entries.iter().map(lo).min().unwrap();
        let span_hi = entries.iter().map(hi).max().unwrap();
        let span = (span_hi - span_lo).max(1) as f64;
        let sep = (lo(&entries[highest_low]) - hi(&entries[lowest_high])) as f64 / span;
        (highest_low, lowest_high, sep)
    };
    let (xa, xb, xsep) = pick(&|e| e.rect.min.x, &|e| e.rect.max.x);
    let (ya, yb, ysep) = pick(&|e| e.rect.min.y, &|e| e.rect.max.y);
    let (mut s1, mut s2) = if xsep >= ysep { (xa, xb) } else { (ya, yb) };
    if s1 == s2 {
        // Degenerate (e.g. identical rects): any two distinct entries.
        s2 = if s1 == 0 { 1 } else { 0 };
    }
    if s1 > s2 {
        std::mem::swap(&mut s1, &mut s2);
    }
    let mut g1 = vec![entries[s1]];
    let mut g2 = vec![entries[s2]];
    let mut bb1 = entries[s1].rect;
    let mut bb2 = entries[s2].rect;
    let rest: Vec<Entry> = entries
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s1 && *i != s2)
        .map(|(_, e)| e)
        .collect();
    for (i, e) in rest.iter().enumerate() {
        // Force-assign when a group needs every remaining entry to reach m.
        let remaining = rest.len() - i;
        if g1.len() + remaining == m {
            g1.extend_from_slice(&rest[i..]);
            break;
        }
        if g2.len() + remaining == m {
            g2.extend_from_slice(&rest[i..]);
            break;
        }
        let d1 = bb1.enlargement(&e.rect);
        let d2 = bb2.enlargement(&e.rect);
        if (d1, bb1.area(), g1.len()) <= (d2, bb2.area(), g2.len()) {
            bb1 = bb1.union(&e.rect);
            g1.push(*e);
        } else {
            bb2 = bb2.union(&e.rect);
            g2.push(*e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(x0: i32, y0: i32, x1: i32, y1: i32, child: u32) -> Entry {
        Entry {
            rect: Rect::new(x0, y0, x1, y1),
            child,
        }
    }

    fn check_partition(kind: RTreeKind, entries: Vec<Entry>, m: usize) -> (Vec<Entry>, Vec<Entry>) {
        let mut ids: Vec<u32> = entries.iter().map(|x| x.child).collect();
        ids.sort_unstable();
        let (a, b) = split(kind, entries, m);
        assert!(a.len() >= m, "{kind:?}: left {} < m {m}", a.len());
        assert!(b.len() >= m, "{kind:?}: right {} < m {m}", b.len());
        let mut got: Vec<u32> = a.iter().chain(&b).map(|x| x.child).collect();
        got.sort_unstable();
        assert_eq!(got, ids, "{kind:?}: split lost or duplicated entries");
        (a, b)
    }

    fn all_kinds() -> [RTreeKind; 3] {
        [RTreeKind::RStar, RTreeKind::Quadratic, RTreeKind::Linear]
    }

    #[test]
    fn two_clusters_separate_cleanly() {
        // Two well-separated clusters of 4: every policy should cut
        // between them.
        for kind in all_kinds() {
            let mut entries = Vec::new();
            for i in 0..4 {
                entries.push(e(i, i, i + 1, i + 1, i as u32));
            }
            for i in 0..4 {
                entries.push(e(1000 + i, 1000 + i, 1001 + i, 1001 + i, 100 + i as u32));
            }
            let (a, b) = check_partition(kind, entries, 3);
            let (left, right) = if a[0].child < 100 { (a, b) } else { (b, a) };
            assert!(left.iter().all(|x| x.child < 100), "{kind:?}");
            assert!(right.iter().all(|x| x.child >= 100), "{kind:?}");
        }
    }

    #[test]
    fn rstar_split_has_zero_overlap_on_grid() {
        // A 4x2 grid of disjoint unit squares: the best distribution has
        // zero overlap.
        let mut entries = Vec::new();
        for i in 0..4 {
            for j in 0..2 {
                entries.push(e(
                    i * 10,
                    j * 10,
                    i * 10 + 5,
                    j * 10 + 5,
                    (i * 2 + j) as u32,
                ));
            }
        }
        let (a, b) = check_partition(RTreeKind::RStar, entries, 3);
        let ra = entries_mbr(&a);
        let rb = entries_mbr(&b);
        assert_eq!(ra.overlap_area(&rb), 0);
    }

    #[test]
    fn identical_rects_still_split_legally() {
        for kind in all_kinds() {
            let entries = (0..6).map(|i| e(5, 5, 6, 6, i)).collect();
            check_partition(kind, entries, 2);
        }
    }

    #[test]
    fn minimum_size_split() {
        // Exactly 2m entries: both groups get exactly m.
        for kind in all_kinds() {
            let entries = (0..6)
                .map(|i| e(i * 3, 0, i * 3 + 2, 2, i as u32))
                .collect();
            let (a, b) = check_partition(kind, entries, 3);
            assert_eq!(a.len(), 3);
            assert_eq!(b.len(), 3);
        }
    }

    #[test]
    fn degenerate_point_rects() {
        for kind in all_kinds() {
            let entries = (0..8).map(|i| e(i, 2 * i, i, 2 * i, i as u32)).collect();
            check_partition(kind, entries, 3);
        }
    }

    #[test]
    fn split_respects_m_with_skewed_distribution() {
        // One far outlier plus a dense cluster: the outlier's group must
        // still reach m via force-assignment.
        for kind in all_kinds() {
            let mut entries: Vec<Entry> = (0..7).map(|i| e(i, 0, i + 1, 1, i as u32)).collect();
            entries.push(e(10_000, 10_000, 10_001, 10_001, 99));
            check_partition(kind, entries, 3);
        }
    }
}
