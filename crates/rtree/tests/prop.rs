//! Property tests: every R-tree variant must agree with the brute-force
//! oracle on all queries, for arbitrary segment soups (R-trees do not
//! require planar input) and arbitrary delete subsets, while maintaining
//! its structural invariants.

use lsdb_core::{brute, IndexConfig, PolygonalMap, SegId, SpatialIndex};
use lsdb_geom::{Point, Rect, Segment};
use lsdb_rtree::{RTree, RTreeKind};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0..16384i32, 0..16384i32).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point())
        .prop_filter("non-degenerate", |(a, b)| a != b)
        .prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_map(max: usize) -> impl Strategy<Value = PolygonalMap> {
    prop::collection::vec(arb_segment(), 1..max)
        .prop_map(|segs| PolygonalMap::new("prop", segs))
}

fn small_cfg() -> IndexConfig {
    // M = 10: deep trees at small n.
    IndexConfig { page_size: 224, pool_pages: 8 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn queries_match_oracle(
        map in arb_map(120),
        probes in prop::collection::vec(arb_point(), 1..12),
        windows in prop::collection::vec((arb_point(), arb_point()), 1..6),
        kind_ix in 0usize..3,
    ) {
        let kind = [RTreeKind::RStar, RTreeKind::Quadratic, RTreeKind::Linear][kind_ix];
        let mut t = RTree::build(&map, small_cfg(), kind);
        t.check_invariants();
        for &p in &probes {
            prop_assert_eq!(
                brute::sorted(t.find_incident(p)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            prop_assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for &(a, b) in &windows {
            let w = Rect::bounding(a, b);
            prop_assert_eq!(brute::sorted(t.window(w)), brute::window(&map, w));
        }
    }

    #[test]
    fn deletes_preserve_invariants_and_answers(
        map in arb_map(90),
        delete_mask in prop::collection::vec(any::<bool>(), 90),
        probe in arb_point(),
        kind_ix in 0usize..3,
    ) {
        let kind = [RTreeKind::RStar, RTreeKind::Quadratic, RTreeKind::Linear][kind_ix];
        let mut t = RTree::build(&map, small_cfg(), kind);
        let mut kept: Vec<SegId> = Vec::new();
        for i in 0..map.len() {
            if delete_mask[i] {
                prop_assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        prop_assert_eq!(t.check_invariants(), kept.clone());
        // Window answers equal the filtered oracle.
        let w = Rect::new(0, 0, 16383, 16383);
        let want: Vec<SegId> = brute::window(&map, w)
            .into_iter()
            .filter(|id| !delete_mask[id.index()])
            .collect();
        prop_assert_eq!(brute::sorted(t.window(w)), want);
        // Nearest still exact over the survivors.
        if !kept.is_empty() {
            let got = t.nearest(probe).unwrap();
            let best = kept
                .iter()
                .map(|id| map.segments[id.index()].dist2_point(probe))
                .min()
                .unwrap();
            prop_assert_eq!(map.segments[got.index()].dist2_point(probe), best);
        } else {
            prop_assert_eq!(t.nearest(probe), None);
        }
    }

    #[test]
    fn rebuild_after_full_delete(map in arb_map(60)) {
        let mut t = RTree::build(&map, small_cfg(), RTreeKind::RStar);
        for i in 0..map.len() {
            prop_assert!(t.remove(SegId(i as u32)));
        }
        prop_assert_eq!(t.len(), 0);
        for i in 0..map.len() {
            t.insert(SegId(i as u32));
        }
        t.check_invariants();
        let p = Point::new(8000, 8000);
        let got = t.nearest(p).unwrap();
        let want = brute::nearest(&map, p).unwrap();
        prop_assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
    }
}
