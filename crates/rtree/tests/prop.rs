//! Property-style tests: every R-tree variant must agree with the
//! brute-force oracle on all queries, for arbitrary segment soups (R-trees
//! do not require planar input) and arbitrary delete subsets, while
//! maintaining its structural invariants. Cases are drawn from fixed-seed
//! [`lsdb_rng::StdRng`] streams.

use lsdb_core::{brute, IndexConfig, PolygonalMap, QueryCtx, SegId, SpatialIndex};
use lsdb_geom::{Point, Rect, Segment};
use lsdb_rng::StdRng;
use lsdb_rtree::{RTree, RTreeKind};

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0..16384i32), rng.gen_range(0..16384i32))
}

fn rand_segment(rng: &mut StdRng) -> Segment {
    loop {
        let a = rand_point(rng);
        let b = rand_point(rng);
        if a != b {
            return Segment::new(a, b);
        }
    }
}

fn rand_map(rng: &mut StdRng, max: usize) -> PolygonalMap {
    let n = rng.gen_range(1..max);
    PolygonalMap::new("prop", (0..n).map(|_| rand_segment(rng)).collect())
}

fn rand_kind(rng: &mut StdRng) -> RTreeKind {
    [RTreeKind::RStar, RTreeKind::Quadratic, RTreeKind::Linear][rng.gen_range(0usize..3)]
}

fn small_cfg() -> IndexConfig {
    // M = 10: deep trees at small n.
    IndexConfig {
        page_size: 224,
        pool_pages: 8,
        ..Default::default()
    }
}

#[test]
fn queries_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0001);
    for _ in 0..48 {
        let map = rand_map(&mut rng, 120);
        let kind = rand_kind(&mut rng);
        let mut t = RTree::build(&map, small_cfg(), kind);
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        for _ in 0..rng.gen_range(1..12) {
            let p = rand_point(&mut rng);
            assert_eq!(
                brute::sorted(t.find_incident(p, &mut ctx)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p, &mut ctx).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for _ in 0..rng.gen_range(1..6) {
            let w = Rect::bounding(rand_point(&mut rng), rand_point(&mut rng));
            assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
        }
    }
}

#[test]
fn deletes_preserve_invariants_and_answers() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0002);
    for _ in 0..48 {
        let map = rand_map(&mut rng, 90);
        let kind = rand_kind(&mut rng);
        let probe = rand_point(&mut rng);
        let mut t = RTree::build(&map, small_cfg(), kind);
        let mut deleted = vec![false; map.len()];
        let mut kept: Vec<SegId> = Vec::new();
        for (i, gone) in deleted.iter_mut().enumerate() {
            if rng.gen_range(0u32..2) == 0 {
                *gone = true;
                assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        assert_eq!(t.check_invariants(), kept.clone());
        // Window answers equal the filtered oracle.
        let mut ctx = QueryCtx::new();
        let w = Rect::new(0, 0, 16383, 16383);
        let want: Vec<SegId> = brute::window(&map, w)
            .into_iter()
            .filter(|id| !deleted[id.index()])
            .collect();
        assert_eq!(brute::sorted(t.window(w, &mut ctx)), want);
        // Nearest still exact over the survivors.
        if !kept.is_empty() {
            let got = t.nearest(probe, &mut ctx).unwrap();
            let best = kept
                .iter()
                .map(|id| map.segments[id.index()].dist2_point(probe))
                .min()
                .unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(probe), best);
        } else {
            assert_eq!(t.nearest(probe, &mut ctx), None);
        }
    }
}

#[test]
fn rebuild_after_full_delete() {
    let mut rng = StdRng::seed_from_u64(0x47EE_0003);
    for _ in 0..48 {
        let map = rand_map(&mut rng, 60);
        let mut t = RTree::build(&map, small_cfg(), RTreeKind::RStar);
        for i in 0..map.len() {
            assert!(t.remove(SegId(i as u32)));
        }
        assert_eq!(t.len(), 0);
        for i in 0..map.len() {
            t.insert(SegId(i as u32));
        }
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        let p = Point::new(8000, 8000);
        let got = t.nearest(p, &mut ctx).unwrap();
        let want = brute::nearest(&map, p).unwrap();
        assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
    }
}

#[test]
fn parallel_batch_matches_sequential() {
    // The cross-thread determinism contract at the single-structure level:
    // running the same probe batch on 4 threads yields byte-identical
    // results and identical summed counters vs the sequential run.
    let mut rng = StdRng::seed_from_u64(0x47EE_0004);
    let map = rand_map(&mut rng, 100);
    let mut t = RTree::build(&map, small_cfg(), RTreeKind::RStar);
    t.clear_cache();
    let probes: Vec<Point> = (0..64).map(|_| rand_point(&mut rng)).collect();

    let run_one = |t: &RTree, p: Point| {
        let mut ctx = QueryCtx::new();
        let inc = t.find_incident(p, &mut ctx);
        let near = t.nearest(p, &mut ctx);
        (inc, near, ctx.stats())
    };

    let sequential: Vec<_> = probes.iter().map(|&p| run_one(&t, p)).collect();
    let t = &t;
    let parallel: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = probes
            .chunks(16)
            .map(|chunk| {
                scope.spawn(move || chunk.iter().map(|&p| run_one(t, p)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(
        sequential, parallel,
        "per-query results and counters must not depend on threading"
    );
}
