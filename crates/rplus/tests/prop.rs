//! Property-style tests for the hybrid R+-tree: oracle equivalence and the
//! structural invariants specific to disjoint decompositions (region
//! tiling, multi-leaf completeness). Cases are drawn from fixed-seed
//! [`lsdb_rng::StdRng`] streams.
//!
//! Maps use the full 1 KB node size (M = 50), so random segment soups
//! cannot hit the documented >M-per-unit-cell limit.

use lsdb_core::{brute, IndexConfig, PolygonalMap, QueryCtx, SegId, SpatialIndex};
use lsdb_geom::{Point, Rect, Segment};
use lsdb_rng::StdRng;
use lsdb_rplus::RPlusTree;

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0..16384i32), rng.gen_range(0..16384i32))
}

fn rand_segment(rng: &mut StdRng) -> Segment {
    loop {
        let a = rand_point(rng);
        let b = rand_point(rng);
        if a != b {
            return Segment::new(a, b);
        }
    }
}

fn rand_map(rng: &mut StdRng, max: usize) -> PolygonalMap {
    let n = rng.gen_range(1..max);
    PolygonalMap::new("prop", (0..n).map(|_| rand_segment(rng)).collect())
}

#[test]
fn queries_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0x4B15_0001);
    for _ in 0..32 {
        let map = rand_map(&mut rng, 220);
        let mut t = RPlusTree::build(&map, IndexConfig::default());
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        for _ in 0..rng.gen_range(1..10) {
            let p = rand_point(&mut rng);
            assert_eq!(
                brute::sorted(t.find_incident(p, &mut ctx)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p, &mut ctx).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for _ in 0..rng.gen_range(1..5) {
            let w = Rect::bounding(rand_point(&mut rng), rand_point(&mut rng));
            assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
        }
    }
}

#[test]
fn deletes_then_queries() {
    let mut rng = StdRng::seed_from_u64(0x4B15_0002);
    for _ in 0..32 {
        let map = rand_map(&mut rng, 160);
        let probe = rand_point(&mut rng);
        let mut t = RPlusTree::build(&map, IndexConfig::default());
        let mut first_deleted = false;
        let mut kept = Vec::new();
        for i in 0..map.len() {
            if rng.gen_range(0u32..2) == 0 {
                assert!(t.remove(SegId(i as u32)));
                if i == 0 {
                    first_deleted = true;
                }
            } else {
                kept.push(SegId(i as u32));
            }
        }
        if first_deleted {
            assert!(!t.remove(SegId(0)), "double remove must fail");
        }
        assert_eq!(t.len(), kept.len());
        let mut ctx = QueryCtx::new();
        let w = Rect::new(0, 0, 16383, 16383);
        assert_eq!(brute::sorted(t.window(w, &mut ctx)), kept);
        if !kept.is_empty() {
            let got = t.nearest(probe, &mut ctx).unwrap();
            let best = kept
                .iter()
                .map(|id| map.segments[id.index()].dist2_point(probe))
                .min()
                .unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(probe), best);
        }
    }
}

#[test]
fn duplicate_heavy_geometry_is_handled() {
    // Long, parallel, closely spaced segments maximize region-boundary
    // crossings and multi-leaf redundancy.
    let mut rng = StdRng::seed_from_u64(0x4B15_0003);
    for _ in 0..8 {
        let n = rng.gen_range(30..120);
        let segs: Vec<Segment> = (0..n)
            .map(|_| {
                let y = rng.gen_range(0..16384i32);
                Segment::new(Point::new(0, y), Point::new(16383, y))
            })
            .collect();
        let map = PolygonalMap::new("hlines", segs);
        let mut t = RPlusTree::build(&map, IndexConfig::default());
        t.check_invariants();
        let mut ctx = QueryCtx::new();
        let w = Rect::new(5000, 0, 5100, 16383);
        assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
    }
}
