//! Property tests for the hybrid R+-tree: oracle equivalence and the
//! structural invariants specific to disjoint decompositions (region
//! tiling, multi-leaf completeness).
//!
//! Maps use the full 1 KB node size (M = 50), so random segment soups
//! cannot hit the documented >M-per-unit-cell limit.

use lsdb_core::{brute, IndexConfig, PolygonalMap, SegId, SpatialIndex};
use lsdb_geom::{Point, Rect, Segment};
use lsdb_rplus::RPlusTree;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0..16384i32, 0..16384i32).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point())
        .prop_filter("non-degenerate", |(a, b)| a != b)
        .prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_map(max: usize) -> impl Strategy<Value = PolygonalMap> {
    prop::collection::vec(arb_segment(), 1..max)
        .prop_map(|segs| PolygonalMap::new("prop", segs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queries_match_oracle(
        map in arb_map(220),
        probes in prop::collection::vec(arb_point(), 1..10),
        windows in prop::collection::vec((arb_point(), arb_point()), 1..5),
    ) {
        let mut t = RPlusTree::build(&map, IndexConfig::default());
        t.check_invariants();
        for &p in &probes {
            prop_assert_eq!(
                brute::sorted(t.find_incident(p)),
                brute::incident(&map, p)
            );
            let got = t.nearest(p).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            prop_assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
        }
        for &(a, b) in &windows {
            let w = Rect::bounding(a, b);
            prop_assert_eq!(brute::sorted(t.window(w)), brute::window(&map, w));
        }
    }

    #[test]
    fn deletes_then_queries(
        map in arb_map(160),
        delete_mask in prop::collection::vec(any::<bool>(), 160),
        probe in arb_point(),
    ) {
        let mut t = RPlusTree::build(&map, IndexConfig::default());
        let mut kept = Vec::new();
        for i in 0..map.len() {
            if delete_mask[i] {
                prop_assert!(t.remove(SegId(i as u32)));
            } else {
                kept.push(SegId(i as u32));
            }
        }
        if delete_mask[0] {
            prop_assert!(!t.remove(SegId(0)), "double remove must fail");
        }
        prop_assert_eq!(t.len(), kept.len());
        let w = Rect::new(0, 0, 16383, 16383);
        let want: Vec<SegId> = kept.clone();
        prop_assert_eq!(brute::sorted(t.window(w)), want);
        if !kept.is_empty() {
            let got = t.nearest(probe).unwrap();
            let best = kept
                .iter()
                .map(|id| map.segments[id.index()].dist2_point(probe))
                .min()
                .unwrap();
            prop_assert_eq!(map.segments[got.index()].dist2_point(probe), best);
        }
    }

    #[test]
    fn duplicate_heavy_geometry_is_handled(
        // Long, parallel, closely spaced segments maximize region-boundary
        // crossings and multi-leaf redundancy.
        ys in prop::collection::vec(0..16384i32, 30..120),
    ) {
        let segs: Vec<Segment> = ys
            .iter()
            .map(|&y| Segment::new(Point::new(0, y), Point::new(16383, y)))
            .collect();
        let map = PolygonalMap::new("hlines", segs);
        let mut t = RPlusTree::build(&map, IndexConfig::default());
        t.check_invariants();
        let w = Rect::new(5000, 0, 5100, 16383);
        prop_assert_eq!(brute::sorted(t.window(w)), brute::window(&map, w));
    }
}
