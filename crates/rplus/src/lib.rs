//! The paper's hybrid R+-tree (between a k-d-B-tree and the literature
//! R+-tree).
//!
//! Structure, following §3 of the paper:
//!
//! * Non-leaf entries hold **disjoint partition regions**, not minimum
//!   bounding rectangles ("we use minimum bounding rectangles for the line
//!   segments in the leaf nodes while we don't do so in the nonleaf
//!   nodes") — exactly the simplification the paper adopts from Greene.
//! * A line segment is inserted into **every leaf whose region it
//!   intersects**, so there may be several root-to-segment paths and the
//!   structure uses more space than the R\*-tree.
//! * Node split: "a node should be split in a way that minimizes the total
//!   number of resulting portions of line segments (bounding rectangles
//!   when the node is not a leaf node) ... we try all possible vertical and
//!   horizontal split lines ... in case of a tie, we choose the split line
//!   that yields the most even distribution."
//! * Splitting a non-leaf region can force recursive **downward splits** of
//!   straddling children (the k-d-B cascade).
//!
//! Region convention: sibling regions tile their parent's region with
//! shared boundaries (`[a, c]` and `[c, b]`). Interiors are disjoint;
//! geometry lying exactly on a split line belongs to both sides, mirroring
//! the paper's footnote that leaf-level disjointness "may be impossible
//! when many line segments intersect at a point". This keeps every
//! distance lower bound exact (no dead strips between regions).
//!
//! Deletion removes the segment from every leaf it occupies but does not
//! re-merge regions — the paper: "the price paid for the disjointness ...
//! is also paid when we want to delete an object. Fortunately, deletion is
//! not so common."
//!
//! Known structural limit (shared with published R+-trees): more than `M`
//! segments meeting inside a unit cell cannot be separated by any split
//! line and will panic; the paper's road networks have vertex degrees far
//! below `M = 50`.

mod bulk;

use lsdb_core::rectnode::{order_entries, Entry, EntryOrder, RectNode, RectTreeAccess};
use lsdb_core::{
    traverse, IndexConfig, LocId, PolygonalMap, QueryCtx, QueryStats, SegId, SegmentTable,
    SpatialIndex,
};
use lsdb_geom::{world_rect, Point, Rect, Segment};
use lsdb_pager::{MemPool, PageId};
use std::cmp::Reverse;

/// Which axis a region is cut along.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Axis {
    X,
    Y,
}

/// A disk-resident hybrid R+-tree over line segments.
pub struct RPlusTree {
    pool: MemPool,
    table: SegmentTable,
    root: PageId,
    /// Level of the root; leaves are level 1. The root region is the world.
    height: u32,
    m_max: usize,
    len: usize,
    /// Intra-node ordering applied whenever a node is rewritten.
    order: EntryOrder,
}

impl RPlusTree {
    pub fn new(table: SegmentTable, cfg: IndexConfig) -> Self {
        // Pool-open time is when the scan ISA is decided: warm the cached
        // selection so the first query pays a plain atomic load.
        lsdb_core::scan::active_isa();
        let mut pool = MemPool::in_memory(cfg.page_size, cfg.pool_pages);
        let m_max = RectNode::capacity(cfg.page_size);
        assert!(m_max >= 4, "page too small for an R+-tree node");
        let root = pool.allocate();
        pool.with_page_mut(root, |buf| RectNode::init(buf, true));
        RPlusTree {
            pool,
            table,
            root,
            height: 1,
            m_max,
            len: 0,
            order: cfg.entry_order,
        }
    }

    /// Build over a whole map by inserting its segments in order.
    pub fn build(map: &PolygonalMap, cfg: IndexConfig) -> Self {
        let table = SegmentTable::from_map(map, cfg.page_size, cfg.pool_pages);
        let mut t = RPlusTree::new(table, cfg);
        for id in 0..map.segments.len() {
            t.insert(SegId(id as u32));
        }
        t
    }

    pub fn m_max(&self) -> usize {
        self.m_max
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    /// Average entries per leaf (the paper's §7 audit found ≈32).
    pub fn avg_leaf_occupancy(&mut self) -> f64 {
        let root = self.root;
        let height = self.height;
        let (sum, leaves) = self.occupancy_rec(root, height);
        sum as f64 / leaves as f64
    }

    /// Per-leaf entry counts (diagnostics/ablation).
    pub fn leaf_occupancies(&mut self) -> Vec<usize> {
        let root = self.root;
        let height = self.height;
        let mut out = Vec::new();
        self.leaf_occ_rec(root, height, &mut out);
        out
    }

    fn leaf_occ_rec(&mut self, pid: PageId, level: u32, out: &mut Vec<usize>) {
        if level == 1 {
            out.push(self.pool.with_page(pid, RectNode::count));
            return;
        }
        let children: Vec<PageId> = self.pool.with_page(pid, |buf| {
            RectNode::entries(buf)
                .iter()
                .map(|e| PageId(e.child))
                .collect()
        });
        for ch in children {
            self.leaf_occ_rec(ch, level - 1, out);
        }
    }

    fn occupancy_rec(&mut self, pid: PageId, level: u32) -> (u64, u64) {
        if level == 1 {
            return (self.pool.with_page(pid, RectNode::count) as u64, 1);
        }
        let children: Vec<PageId> = self.pool.with_page(pid, |buf| {
            RectNode::entries(buf)
                .iter()
                .map(|e| PageId(e.child))
                .collect()
        });
        let mut sum = 0;
        let mut leaves = 0;
        for ch in children {
            let (s, l) = self.occupancy_rec(ch, level - 1);
            sum += s;
            leaves += l;
        }
        (sum, leaves)
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Recursive top-down insertion "that places it in every leaf node that
    /// it intersects". Returns replacement entries if the node was
    /// partitioned (the caller replaces its entry for this node with them).
    fn insert_rec(
        &mut self,
        pid: PageId,
        level: u32,
        region: Rect,
        seg: Segment,
        id: SegId,
    ) -> Option<Vec<Entry>> {
        if level == 1 {
            let count = self.pool.with_page(pid, RectNode::count);
            let entry = Entry {
                rect: seg.bbox(),
                child: id.0,
            };
            if count < self.m_max {
                self.pool
                    .with_page_mut(pid, |buf| RectNode::push(buf, entry));
                return None;
            }
            // Overflow: partition the M+1 entries into new leaves.
            let mut items = self.pool.with_page(pid, RectNode::entries);
            items.push(entry);
            let parts = self.partition_leaf(items, region);
            return Some(self.emit_parts(Some(pid), parts, true));
        }
        // Descend into every child whose region the segment touches.
        let snapshot = self.pool.with_page(pid, RectNode::entries);
        let mut replacements: Vec<(usize, Vec<Entry>)> = Vec::new();
        for (idx, e) in snapshot.iter().enumerate() {
            if e.rect.intersects_segment(&seg) {
                if let Some(repl) = self.insert_rec(PageId(e.child), level - 1, e.rect, seg, id) {
                    replacements.push((idx, repl));
                }
            }
        }
        if replacements.is_empty() {
            return None;
        }
        // Apply replacements in memory, then write back or partition.
        let mut entries = snapshot;
        // Replace from the highest index down so indices stay valid.
        replacements.sort_by_key(|(idx, _)| Reverse(*idx));
        for (idx, repl) in replacements {
            entries.splice(idx..=idx, repl);
        }
        if entries.len() <= self.m_max {
            self.pool.with_page_mut(pid, |buf| {
                RectNode::init(buf, false);
                RectNode::write_entries(buf, &entries);
            });
            return None;
        }
        let parts = self.partition_internal(entries, region);
        Some(self.emit_parts(Some(pid), parts, false))
    }

    /// Write partitioned groups to pages (reusing `reuse` for the first)
    /// and return the parent-level entries describing them.
    fn emit_parts(
        &mut self,
        reuse: Option<PageId>,
        parts: Vec<(Rect, Vec<Entry>)>,
        leaf: bool,
    ) -> Vec<Entry> {
        let mut out = Vec::with_capacity(parts.len());
        let mut reuse = reuse;
        for (region, mut entries) in parts {
            debug_assert!(entries.len() <= self.m_max);
            order_entries(&mut entries, self.order);
            let pid = match reuse.take() {
                Some(p) => p,
                None => self.pool.allocate(),
            };
            self.pool.with_page_mut(pid, |buf| {
                RectNode::init(buf, leaf);
                RectNode::write_entries(buf, &entries);
            });
            out.push(Entry {
                rect: region,
                child: pid.0,
            });
        }
        out
    }

    /// Partition an over-full leaf's items into region-tagged groups, each
    /// within capacity, by recursively applying the minimal-cut split rule.
    fn partition_leaf(&mut self, items: Vec<Entry>, region: Rect) -> Vec<(Rect, Vec<Entry>)> {
        if items.len() <= self.m_max {
            return vec![(region, items)];
        }
        let (axis, c) = self.choose_leaf_split(&items, region).unwrap_or_else(|| {
            panic!(
                "R+-tree leaf over region {region:?} cannot be split: \
                 {} segments share an unsplittable region (> M = {})",
                items.len(),
                self.m_max
            )
        });
        let (lr, rr) = cut_region(region, axis, c);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in items {
            let seg = self.table.fetch(SegId(e.child));
            let in_l = lr.intersects_segment(&seg);
            let in_r = rr.intersects_segment(&seg);
            debug_assert!(in_l || in_r, "segment lost by split");
            if in_l {
                left.push(e);
            }
            if in_r {
                right.push(e);
            }
        }
        let mut parts = self.partition_leaf(left, lr);
        parts.extend(self.partition_leaf(right, rr));
        parts
    }

    /// Partition an over-full internal node's child entries, recursively
    /// splitting straddling children downward.
    fn partition_internal(&mut self, entries: Vec<Entry>, region: Rect) -> Vec<(Rect, Vec<Entry>)> {
        if entries.len() <= self.m_max {
            return vec![(region, entries)];
        }
        let (axis, c) = choose_internal_split(&entries, region)
            .expect("internal region with >= 2 children always has a valid cut");
        let (lr, rr) = cut_region(region, axis, c);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in entries {
            let (emin, emax) = match axis {
                Axis::X => (e.rect.min.x, e.rect.max.x),
                Axis::Y => (e.rect.min.y, e.rect.max.y),
            };
            if emax <= c {
                left.push(e);
            } else if emin >= c {
                right.push(e);
            } else {
                // Straddling child: split its whole subtree at the cut.
                let (le, re) = self.split_subtree(PageId(e.child), e.rect, axis, c);
                left.push(le);
                right.push(re);
            }
        }
        debug_assert!(!left.is_empty() && !right.is_empty());
        let mut parts = self.partition_internal(left, lr);
        parts.extend(self.partition_internal(right, rr));
        parts
    }

    /// Downward split (the k-d-B cascade): cut the subtree rooted at `pid`
    /// (covering `region`) along `axis` at `c`; `pid` is reused for the
    /// left part. Neither side can overflow: a node's side receives at most
    /// all of its current entries.
    fn split_subtree(&mut self, pid: PageId, region: Rect, axis: Axis, c: i32) -> (Entry, Entry) {
        let (lr, rr) = cut_region(region, axis, c);
        let (is_leaf, entries) = self
            .pool
            .with_page(pid, |buf| (RectNode::is_leaf(buf), RectNode::entries(buf)));
        let mut left = Vec::new();
        let mut right = Vec::new();
        if is_leaf {
            for e in entries {
                let seg = self.table.fetch(SegId(e.child));
                if lr.intersects_segment(&seg) {
                    left.push(e);
                }
                if rr.intersects_segment(&seg) {
                    right.push(e);
                }
            }
        } else {
            for e in entries {
                let (emin, emax) = match axis {
                    Axis::X => (e.rect.min.x, e.rect.max.x),
                    Axis::Y => (e.rect.min.y, e.rect.max.y),
                };
                if emax <= c {
                    left.push(e);
                } else if emin >= c {
                    right.push(e);
                } else {
                    let (le, re) = self.split_subtree(PageId(e.child), e.rect, axis, c);
                    left.push(le);
                    right.push(re);
                }
            }
            debug_assert!(
                !left.is_empty() && !right.is_empty(),
                "children tile the region, so a strict interior cut leaves both sides non-empty"
            );
        }
        let rpid = self.pool.allocate();
        order_entries(&mut left, self.order);
        order_entries(&mut right, self.order);
        self.pool.with_page_mut(pid, |buf| {
            RectNode::init(buf, is_leaf);
            RectNode::write_entries(buf, &left);
        });
        self.pool.with_page_mut(rpid, |buf| {
            RectNode::init(buf, is_leaf);
            RectNode::write_entries(buf, &right);
        });
        (
            Entry {
                rect: lr,
                child: pid.0,
            },
            Entry {
                rect: rr,
                child: rpid.0,
            },
        )
    }

    /// The paper's split rule for leaves: try all candidate vertical and
    /// horizontal cut lines, minimize the number of segments cut (counted
    /// on their MBRs), break ties by the most even distribution.
    ///
    /// Returns `None` only when the region is too small to admit any
    /// interior cut line.
    fn choose_leaf_split(&mut self, items: &[Entry], region: Rect) -> Option<(Axis, i32)> {
        let mut best: Option<(u64, u64, Axis, i32)> = None;
        let mut consider = |axis: Axis, c: i32| {
            let (mut l, mut r, mut cut) = (0u64, 0u64, 0u64);
            for e in items {
                let (emin, emax) = match axis {
                    Axis::X => (e.rect.min.x, e.rect.max.x),
                    Axis::Y => (e.rect.min.y, e.rect.max.y),
                };
                // Shared-boundary semantics: touching the cut line means
                // living on both sides.
                if emax < c {
                    l += 1;
                } else if emin > c {
                    r += 1;
                } else {
                    cut += 1;
                }
            }
            // A cut that sends everything to one side makes no progress.
            if l + cut == items.len() as u64 && r == 0 && cut == 0 {
                return;
            }
            let imbalance = (l + cut).abs_diff(r + cut);
            if best.is_none_or(|(bc, bi, _, _)| (cut, imbalance) < (bc, bi)) {
                best = Some((cut, imbalance, axis, c));
            }
        };
        for e in items {
            // Candidates at entry boundaries and one unit off them: under
            // shared-boundary region semantics a segment *ending* on the
            // cut line lives on both sides, so lines through road
            // junctions (where many segments terminate) are expensive and
            // the off-by-one lines right next to them are often far
            // cheaper. Both are offered; min-cut decides.
            for c in [
                e.rect.min.x - 1,
                e.rect.min.x,
                e.rect.max.x,
                e.rect.max.x + 1,
            ] {
                if region.min.x < c && c < region.max.x {
                    consider(Axis::X, c);
                }
            }
            for c in [
                e.rect.min.y - 1,
                e.rect.min.y,
                e.rect.max.y,
                e.rect.max.y + 1,
            ] {
                if region.min.y < c && c < region.max.y {
                    consider(Axis::Y, c);
                }
            }
        }
        // Fallback: midpoints (covers e.g. all items spanning the region).
        if let Some(c) = midpoint(region.min.x, region.max.x) {
            consider(Axis::X, c);
        }
        if let Some(c) = midpoint(region.min.y, region.max.y) {
            consider(Axis::Y, c);
        }
        best.map(|(_, _, axis, c)| (axis, c))
    }

    // ------------------------------------------------------------------
    // Queries — all traversal lives in the shared engines. The R+-tree
    // shares the R-tree family's [`RectTreeAccess`] cursor: a point on a
    // shared region boundary lives in several leaves, the descent visits
    // all of them (so access counts match a real point query), and the
    // engines' dedup reports each segment once.
    // ------------------------------------------------------------------

    fn access(&self) -> RectTreeAccess<'_> {
        RectTreeAccess {
            pool: &self.pool,
            table: &self.table,
            root: self.root,
            height: self.height,
        }
    }

    /// Validate structural invariants (tests only). Returns the sorted
    /// distinct segment ids present.
    pub fn check_invariants(&mut self) -> Vec<SegId> {
        let root = self.root;
        let height = self.height;
        let mut leaves: Vec<(Rect, Vec<SegId>)> = Vec::new();
        self.collect_leaves(root, height, world_rect(), &mut leaves);
        let mut all: Vec<SegId> = leaves.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), self.len, "len counter diverged");
        // Completeness: every segment is present in *every* leaf whose
        // region its geometry touches.
        for &id in &all {
            let seg = self.table.fetch(id);
            for (region, segs) in &leaves {
                let touches = region.intersects_segment(&seg);
                let stored = segs.contains(&id);
                assert_eq!(
                    touches, stored,
                    "segment {id:?} vs leaf region {region:?}: touches={touches}, stored={stored}"
                );
            }
        }
        all
    }

    fn collect_leaves(
        &mut self,
        pid: PageId,
        level: u32,
        region: Rect,
        out: &mut Vec<(Rect, Vec<SegId>)>,
    ) {
        let (is_leaf, entries) = self
            .pool
            .with_page(pid, |buf| (RectNode::is_leaf(buf), RectNode::entries(buf)));
        assert_eq!(is_leaf, level == 1);
        assert!(entries.len() <= self.m_max);
        if level == 1 {
            for e in &entries {
                let seg = self.table.fetch(SegId(e.child));
                assert_eq!(e.rect, seg.bbox(), "leaf entry must carry the segment MBR");
            }
            out.push((region, entries.iter().map(|e| SegId(e.child)).collect()));
            return;
        }
        assert!(!entries.is_empty(), "internal node with no children");
        // Children must tile `region`: disjoint interiors, full coverage.
        let mut area = 0i128;
        for (i, e) in entries.iter().enumerate() {
            assert!(region.contains_rect(&e.rect), "child region escapes parent");
            assert!(
                e.rect.width() > 0 && e.rect.height() > 0,
                "degenerate region"
            );
            area += continuous_area(&e.rect);
            for o in &entries[i + 1..] {
                if let Some(ix) = e.rect.intersection(&o.rect) {
                    assert_eq!(
                        ix.area(),
                        0,
                        "sibling regions overlap with interior: {:?} vs {:?}",
                        e.rect,
                        o.rect
                    );
                }
            }
        }
        assert_eq!(
            area,
            continuous_area(&region),
            "children must tile the region"
        );
        for e in entries {
            self.collect_leaves(PageId(e.child), level - 1, e.rect, out);
        }
    }

    fn remove_rec(&mut self, pid: PageId, level: u32, seg: Segment, id: SegId) -> bool {
        if level == 1 {
            return self.pool.with_page_mut(pid, |buf| {
                let mut i = 0;
                let mut removed = false;
                while i < RectNode::count(buf) {
                    if RectNode::entry(buf, i).child == id.0 {
                        RectNode::remove_at(buf, i);
                        removed = true;
                    } else {
                        i += 1;
                    }
                }
                removed
            });
        }
        let children: Vec<PageId> = self.pool.with_page(pid, |buf| {
            RectNode::entries(buf)
                .iter()
                .filter(|e| e.rect.intersects_segment(&seg))
                .map(|e| PageId(e.child))
                .collect()
        });
        let mut removed = false;
        for child in children {
            removed |= self.remove_rec(child, level - 1, seg, id);
        }
        removed
    }
}

/// Area of a region rect under the shared-boundary (continuous-space)
/// convention, as `width * height`.
fn continuous_area(r: &Rect) -> i128 {
    r.width() as i128 * r.height() as i128
}

/// Cut `region` along `axis` at `c` into two shared-boundary halves.
fn cut_region(region: Rect, axis: Axis, c: i32) -> (Rect, Rect) {
    match axis {
        Axis::X => {
            debug_assert!(region.min.x < c && c < region.max.x);
            (
                Rect::new(region.min.x, region.min.y, c, region.max.y),
                Rect::new(c, region.min.y, region.max.x, region.max.y),
            )
        }
        Axis::Y => {
            debug_assert!(region.min.y < c && c < region.max.y);
            (
                Rect::new(region.min.x, region.min.y, region.max.x, c),
                Rect::new(region.min.x, c, region.max.x, region.max.y),
            )
        }
    }
}

fn midpoint(lo: i32, hi: i32) -> Option<i32> {
    let c = lo + (hi - lo) / 2;
    (lo < c && c < hi).then_some(c)
}

/// Split rule for internal nodes: candidate cuts are the children's region
/// boundaries; minimize the number of children cut, tie-break on evenness.
fn choose_internal_split(entries: &[Entry], region: Rect) -> Option<(Axis, i32)> {
    let mut best: Option<(u64, u64, Axis, i32)> = None;
    let mut consider = |axis: Axis, c: i32| {
        let (mut l, mut r, mut cut) = (0u64, 0u64, 0u64);
        for e in entries {
            let (emin, emax) = match axis {
                Axis::X => (e.rect.min.x, e.rect.max.x),
                Axis::Y => (e.rect.min.y, e.rect.max.y),
            };
            if emax <= c {
                l += 1;
            } else if emin >= c {
                r += 1;
            } else {
                cut += 1;
            }
        }
        // Reject cuts that leave a side without any child.
        if l + cut == 0 || r + cut == 0 {
            return;
        }
        let imbalance = (l + cut).abs_diff(r + cut);
        if best.is_none_or(|(bc, bi, _, _)| (cut, imbalance) < (bc, bi)) {
            best = Some((cut, imbalance, axis, c));
        }
    };
    for e in entries {
        for c in [e.rect.min.x, e.rect.max.x] {
            if region.min.x < c && c < region.max.x {
                consider(Axis::X, c);
            }
        }
        for c in [e.rect.min.y, e.rect.max.y] {
            if region.min.y < c && c < region.max.y {
                consider(Axis::Y, c);
            }
        }
    }
    best.map(|(_, _, axis, c)| (axis, c))
}

impl SpatialIndex for RPlusTree {
    fn name(&self) -> &'static str {
        "R+-tree"
    }

    fn seg_table(&self) -> &SegmentTable {
        &self.table
    }

    fn seg_table_mut(&mut self) -> &mut SegmentTable {
        &mut self.table
    }

    fn insert(&mut self, id: SegId) {
        let seg = self.table.fetch(id);
        let root = self.root;
        let height = self.height;
        if let Some(mut repl) = self.insert_rec(root, height, world_rect(), seg, id) {
            if repl.len() == 1 {
                // Rewritten in place under the same region.
                debug_assert_eq!(PageId(repl[0].child), root);
            } else {
                // The root partitioned. Wrap the parts in internal layers
                // until they fit one node — each wrap adds a tree level —
                // then grow the new root over them.
                while repl.len() > self.m_max {
                    let parts = self.partition_internal(repl, world_rect());
                    repl = self.emit_parts(None, parts, false);
                    self.height += 1;
                }
                let new_root = self.pool.allocate();
                self.pool.with_page_mut(new_root, |buf| {
                    RectNode::init(buf, false);
                    RectNode::write_entries(buf, &repl);
                });
                self.root = new_root;
                self.height += 1;
            }
        }
        self.len += 1;
    }

    fn remove(&mut self, id: SegId) -> bool {
        let seg = self.table.fetch(id);
        let root = self.root;
        let height = self.height;
        let removed = self.remove_rec(root, height, seg, id);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn len(&self) -> usize {
        self.len
    }

    fn find_incident(&self, p: Point, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::find_incident(&self.access(), p, ctx)
    }

    fn find_incident_visit(&self, p: Point, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::incident_visit(&self.access(), p, ctx, f);
    }

    fn probe_point(&self, p: Point, ctx: &mut QueryCtx) -> LocId {
        traverse::probe_point(&self.access(), p, ctx)
    }

    fn nearest(&self, p: Point, ctx: &mut QueryCtx) -> Option<SegId> {
        if self.len == 0 {
            return None;
        }
        traverse::best_first_nearest(&self.access(), p, ctx)
    }

    fn nearest_k(&self, p: Point, k: usize, ctx: &mut QueryCtx) -> Vec<SegId> {
        if self.len == 0 {
            return Vec::new();
        }
        traverse::best_first_nearest_k(&self.access(), p, k, ctx)
    }

    fn window(&self, w: Rect, ctx: &mut QueryCtx) -> Vec<SegId> {
        traverse::window(&self.access(), w, ctx)
    }

    fn window_visit(&self, w: Rect, ctx: &mut QueryCtx, f: &mut dyn FnMut(SegId)) {
        traverse::window_visit(&self.access(), w, ctx, f);
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            disk: self.pool.stats(),
            seg_comps: 0,
            bbox_comps: 0,
            seg_disk: self.table.disk_stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pool.reset_stats();
        self.table.reset_stats();
    }

    fn size_bytes(&self) -> u64 {
        self.pool.size_bytes()
    }

    fn clear_cache(&mut self) {
        self.pool.clear();
    }

    fn attach_budget(&mut self, budget: &std::sync::Arc<lsdb_pager::BufferBudget>) {
        self.pool.attach_budget(budget);
        self.table.attach_budget(budget);
    }

    fn shed_cache(&self, target_bytes: u64) -> std::io::Result<u64> {
        let freed = self.pool.shed(target_bytes)?;
        Ok(freed + self.table.shed_cache(target_bytes.saturating_sub(freed))?)
    }

    fn cache_stats(&self) -> lsdb_pager::CacheStats {
        let mut s = self.pool.cache_stats();
        s.add(self.table.cache_stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdb_core::brute;

    fn cfg_small() -> IndexConfig {
        IndexConfig {
            page_size: 224,
            pool_pages: 8,
            ..Default::default()
        }
    }

    fn grid_map(n: i32) -> PolygonalMap {
        let mut segs = Vec::new();
        let step = 400;
        for i in 0..=n {
            for j in 0..n {
                segs.push(Segment::new(
                    Point::new(i * step, j * step),
                    Point::new(i * step, (j + 1) * step),
                ));
                segs.push(Segment::new(
                    Point::new(j * step, i * step),
                    Point::new((j + 1) * step, i * step),
                ));
            }
        }
        PolygonalMap::new("grid", segs)
    }

    fn diagonal_map() -> PolygonalMap {
        // Long diagonals that cross many region boundaries, plus short
        // spurs — exercises multi-leaf storage and downward splits.
        let mut segs = Vec::new();
        for i in 0..40 {
            let x = i * 150;
            segs.push(Segment::new(Point::new(x, 0), Point::new(x + 140, 900)));
            segs.push(Segment::new(Point::new(x, 1000), Point::new(x + 10, 1100)));
            segs.push(Segment::new(
                Point::new(0, 2000 + i * 7),
                Point::new(6000, 2100 + i * 7),
            ));
        }
        PolygonalMap::new("diag", segs)
    }

    #[test]
    fn build_and_invariants() {
        for map in [grid_map(7), diagonal_map()] {
            let mut t = RPlusTree::build(&map, cfg_small());
            assert_eq!(t.len(), map.len());
            let segs = t.check_invariants();
            assert_eq!(segs.len(), map.len());
            assert!(t.height() >= 2);
        }
    }

    #[test]
    fn incident_matches_brute_force() {
        let map = grid_map(6);
        let t = RPlusTree::build(&map, cfg_small());
        let mut ctx = QueryCtx::new();
        for x in (0..=2400).step_by(200) {
            for y in (0..=2400).step_by(200) {
                let p = Point::new(x, y);
                let got = brute::sorted(t.find_incident(p, &mut ctx));
                assert_eq!(got, brute::incident(&map, p), "at {p:?}");
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force_distance() {
        for map in [grid_map(6), diagonal_map()] {
            let t = RPlusTree::build(&map, cfg_small());
            let mut ctx = QueryCtx::new();
            for x in (-100..=4000).step_by(331) {
                for y in (-100..=4000).step_by(373) {
                    let p = Point::new(x, y);
                    let got = t.nearest(p, &mut ctx).expect("non-empty");
                    let want = brute::nearest(&map, p).unwrap();
                    assert_eq!(
                        map.segments[got.index()].dist2_point(p),
                        want.1,
                        "at {p:?} in {}",
                        map.name
                    );
                }
            }
        }
    }

    #[test]
    fn window_matches_brute_force() {
        for map in [grid_map(6), diagonal_map()] {
            let t = RPlusTree::build(&map, cfg_small());
            let mut ctx = QueryCtx::new();
            let windows = [
                Rect::new(0, 0, 2400, 2400),
                Rect::new(350, 390, 820, 410),
                Rect::new(400, 400, 400, 400),
                Rect::new(9000, 9000, 9100, 9100),
            ];
            for w in windows {
                let got = brute::sorted(t.window(w, &mut ctx));
                assert_eq!(got, brute::window(&map, w), "window {w:?} in {}", map.name);
                // The streaming variant must visit exactly the same ids.
                let mut streamed = Vec::new();
                t.window_visit(w, &mut ctx, &mut |id| streamed.push(id));
                assert_eq!(brute::sorted(streamed), got);
            }
        }
    }

    #[test]
    fn segments_live_in_multiple_leaves() {
        // The R+-tree stores boundary-crossing segments redundantly: its
        // total entry count exceeds the segment count once splits happen.
        let map = diagonal_map();
        let mut t = RPlusTree::build(&map, cfg_small());
        let mut leaves = Vec::new();
        let root = t.root;
        let height = t.height;
        t.collect_leaves(root, height, world_rect(), &mut leaves);
        let total_entries: usize = leaves.iter().map(|(_, s)| s.len()).sum();
        assert!(
            total_entries > map.len(),
            "expected redundancy: {total_entries} entries for {} segments",
            map.len()
        );
    }

    #[test]
    fn point_query_descends_single_path_in_interior() {
        // Disjointness: a point strictly inside one region visits one
        // root-to-leaf path; bbox comps stay near M * height. The counters
        // land in the per-query context, not the structure.
        let map = grid_map(7);
        let t = RPlusTree::build(&map, cfg_small());
        let mut ctx = QueryCtx::new();
        let _ = t.find_incident(Point::new(1201, 1201), &mut ctx);
        let s = ctx.stats();
        assert!(
            s.bbox_comps <= (t.m_max() as u64) * (t.height() as u64 + 1),
            "bbox comps {} too high for a single-path descent",
            s.bbox_comps
        );
    }

    #[test]
    fn probe_point_returns_the_containing_leaf() {
        let map = grid_map(7);
        let t = RPlusTree::build(&map, cfg_small());
        let mut ctx = QueryCtx::new();
        let p = Point::new(1201, 1201);
        let loc = t.probe_point(p, &mut ctx);
        assert_ne!(loc, LocId::NONE);
        // Stable: the same probe always lands in the same leaf, and probing
        // charges bbox comps but never a segment comparison.
        assert_eq!(t.probe_point(p, &mut ctx), loc);
        assert!(ctx.stats().bbox_comps > 0);
        assert_eq!(ctx.stats().seg_comps, 0);
    }

    #[test]
    fn parallel_queries_share_the_tree() {
        let map = diagonal_map();
        let t = RPlusTree::build(&map, cfg_small());
        let probes: Vec<Point> = (0..32)
            .map(|i| Point::new((i * 181) % 6000, (i * 257) % 2300))
            .collect();
        let run_one = |t: &RPlusTree, p: Point| {
            let mut ctx = QueryCtx::new();
            let inc = t.find_incident(p, &mut ctx);
            let near = t.nearest(p, &mut ctx);
            (inc, near, ctx.stats())
        };
        let sequential: Vec<_> = probes.iter().map(|&p| run_one(&t, p)).collect();
        let t = &t;
        let parallel: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = probes
                .chunks(8)
                .map(|chunk| {
                    scope.spawn(move || chunk.iter().map(|&p| run_one(t, p)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn remove_segments() {
        let map = grid_map(5);
        let mut t = RPlusTree::build(&map, cfg_small());
        for i in (0..map.len()).step_by(2) {
            assert!(t.remove(SegId(i as u32)), "remove {i}");
        }
        assert!(!t.remove(SegId(0)), "double remove");
        // Structure remains sound; only odd segments remain.
        let mut ctx = QueryCtx::new();
        let w = Rect::new(300, 300, 1300, 1300);
        let got = brute::sorted(t.window(w, &mut ctx));
        let want: Vec<SegId> = brute::window(&map, w)
            .into_iter()
            .filter(|id| id.index() % 2 == 1)
            .collect();
        assert_eq!(got, want);
        assert_eq!(t.len(), map.len() / 2);
    }

    #[test]
    fn empty_tree_queries() {
        let map = PolygonalMap::new("empty", vec![]);
        let t = RPlusTree::build(&map, cfg_small());
        let mut ctx = QueryCtx::new();
        assert_eq!(t.nearest(Point::new(5, 5), &mut ctx), None);
        assert!(t.find_incident(Point::new(5, 5), &mut ctx).is_empty());
        assert!(t.window(Rect::new(0, 0, 10, 10), &mut ctx).is_empty());
    }

    #[test]
    fn polygon_query_via_generic_traversal() {
        let map = grid_map(4);
        let t = RPlusTree::build(&map, cfg_small());
        let mut ctx = QueryCtx::new();
        let walk = lsdb_core::queries::enclosing_polygon(&t, Point::new(600, 600), 100, &mut ctx)
            .expect("non-empty");
        assert!(walk.closed);
        assert_eq!(walk.len(), 4, "a city block has 4 segments");
    }

    #[test]
    #[should_panic(expected = "cannot be split")]
    fn more_than_m_segments_through_one_point_panics() {
        // M = 10 at this page size; 11 segments share an endpoint, so some
        // unit region is intersected by all of them and no split line can
        // separate them — the documented structural limit.
        let center = Point::new(1000, 1000);
        let segs: Vec<Segment> = (0..11)
            .map(|i| Segment::new(center, Point::new(3000 + 100 * i, 2000 + 70 * i)))
            .collect();
        let map = PolygonalMap::new("star", segs);
        let _ = RPlusTree::build(&map, cfg_small());
    }

    #[test]
    fn uses_more_space_than_rstar() {
        // Paper Table 1: the R+-tree used 26-43% more space than R*.
        // Direction (not magnitude) must hold on crossing-heavy data.
        let map = diagonal_map();
        let rplus = RPlusTree::build(&map, cfg_small()).size_bytes();
        let rstar =
            lsdb_rtree::RTree::build(&map, cfg_small(), lsdb_rtree::RTreeKind::RStar).size_bytes();
        assert!(
            rplus > rstar,
            "R+ ({rplus}) should out-size R* ({rstar}) on boundary-crossing data"
        );
    }
}
