//! Bulk loading for the hybrid R+-tree.
//!
//! The R-tree's STR packing cannot be applied directly here: R+-tree
//! internal entries are disjoint *partition regions*, not MBRs, so bulk
//! construction must produce a recursive tiling of the world with every
//! leaf at the same depth. The loader works in two phases:
//!
//! 1. **Partition**: recursively cut the world into leaf regions with
//!    median-of-centers cuts on the longer region axis (falling back to
//!    the paper's exhaustive min-cut rule when a median cut makes no
//!    progress), duplicating a segment into every region its geometry
//!    intersects — the same completeness rule one-by-one insertion
//!    maintains.
//! 2. **Pack**: write the leaves, then repeatedly contract the cut tree
//!    bottom-up: each round turns every maximal cut subtree holding at
//!    most `M` built nodes into one internal node whose entries are its
//!    children's regions (a lone node is wrapped in a singleton parent).
//!    Every built node gains exactly one level per round, so all leaves
//!    stay at one depth and sibling regions tile their parent exactly.
//!
//! Unlike insertion — whose split rule is O(n) per candidate over all
//! resident entries and cascades downward splits — the bulk path is
//! O(n log n) in the common case, which is what makes a continental
//! build (hundreds of counties) feasible.

use crate::{cut_region, midpoint, Axis, RPlusTree};
use lsdb_core::rectnode::{order_entries, Entry, RectNode};
use lsdb_core::{IndexConfig, PolygonalMap, SegmentTable};
use lsdb_geom::{world_rect, Rect, Segment};
use lsdb_pager::PageId;

/// The recursive region partition: a binary cut tree whose leaves carry
/// the (duplicated) segment entries of one future leaf node.
enum Part {
    Leaf {
        region: Rect,
        items: Vec<Entry>,
    },
    Split {
        region: Rect,
        left: Box<Part>,
        right: Box<Part>,
    },
}

/// The cut tree during packing: built nodes replace grouped subtrees.
enum Packed {
    /// A written node; `entry.rect` is the *region* it covers.
    Node { entry: Entry },
    Split {
        region: Rect,
        /// Number of built nodes in this subtree.
        built: usize,
        left: Box<Packed>,
        right: Box<Packed>,
    },
}

fn built_count(p: &Packed) -> usize {
    match p {
        Packed::Node { .. } => 1,
        Packed::Split { built, .. } => *built,
    }
}

fn region_of(p: &Packed) -> Rect {
    match p {
        Packed::Node { entry } => entry.rect,
        Packed::Split { region, .. } => *region,
    }
}

fn collect_entries(p: Packed, out: &mut Vec<Entry>) {
    match p {
        Packed::Node { entry } => out.push(entry),
        Packed::Split { left, right, .. } => {
            collect_entries(*left, out);
            collect_entries(*right, out);
        }
    }
}

impl RPlusTree {
    /// Bulk-load a tree over `map` by recursive region partitioning.
    ///
    /// The result satisfies every R+-tree invariant (uniform leaf depth,
    /// sibling regions tiling their parent, every segment present in
    /// every leaf whose region it touches) and answers queries
    /// identically to an insertion-built tree; only the tree *shape* —
    /// and therefore per-query disk/comparison metrics — differs.
    pub fn bulk_load(map: &PolygonalMap, cfg: IndexConfig) -> RPlusTree {
        let table = SegmentTable::from_map(map, cfg.page_size, cfg.pool_pages);
        let mut tree = RPlusTree::new(table, cfg);
        if map.is_empty() {
            return tree;
        }
        // The empty placeholder root from `new` is recycled below.
        let placeholder = tree.root;
        tree.pool.free(placeholder);
        let items: Vec<Entry> = map
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| Entry {
                rect: s.bbox(),
                child: i as u32,
            })
            .collect();
        let part = partition(&map.segments, items, world_rect(), tree.m_max);
        let mut packed = tree.write_leaves(part);
        let mut level = 1u32;
        loop {
            match packed {
                Packed::Node { entry } => {
                    tree.root = PageId(entry.child);
                    tree.height = level;
                    break;
                }
                split => {
                    packed = tree.pack_round(split);
                    level += 1;
                }
            }
        }
        tree.len = map.len();
        tree
    }

    fn write_leaves(&mut self, part: Part) -> Packed {
        match part {
            Part::Leaf { region, mut items } => {
                debug_assert!(items.len() <= self.m_max);
                order_entries(&mut items, self.order);
                let pid = self.pool.allocate();
                self.pool.with_page_mut(pid, |buf| {
                    RectNode::init(buf, true);
                    RectNode::write_entries(buf, &items);
                });
                Packed::Node {
                    entry: Entry {
                        rect: region,
                        child: pid.0,
                    },
                }
            }
            Part::Split {
                region,
                left,
                right,
            } => {
                let l = self.write_leaves(*left);
                let r = self.write_leaves(*right);
                let built = built_count(&l) + built_count(&r);
                Packed::Split {
                    region,
                    built,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }
    }

    /// One packing round: group every maximal cut subtree with at most
    /// `M` built nodes into a freshly written internal node.
    fn pack_round(&mut self, packed: Packed) -> Packed {
        match packed {
            Packed::Split {
                region,
                built,
                left,
                right,
            } if built > self.m_max => {
                let l = self.pack_round(*left);
                let r = self.pack_round(*right);
                let built = built_count(&l) + built_count(&r);
                Packed::Split {
                    region,
                    built,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
            subtree => {
                let region = region_of(&subtree);
                let mut entries = Vec::new();
                collect_entries(subtree, &mut entries);
                debug_assert!(!entries.is_empty() && entries.len() <= self.m_max);
                order_entries(&mut entries, self.order);
                let pid = self.pool.allocate();
                self.pool.with_page_mut(pid, |buf| {
                    RectNode::init(buf, false);
                    RectNode::write_entries(buf, &entries);
                });
                Packed::Node {
                    entry: Entry {
                        rect: region,
                        child: pid.0,
                    },
                }
            }
        }
    }
}

/// Recursively partition `region` (and the entries whose segments touch
/// it) into leaf-sized region groups, duplicating straddlers.
fn partition(segs: &[Segment], items: Vec<Entry>, region: Rect, cap: usize) -> Part {
    if items.len() <= cap {
        return Part::Leaf { region, items };
    }
    let (axis, c) = choose_bulk_cut(segs, &items, region).unwrap_or_else(|| {
        panic!(
            "R+-tree bulk region {region:?} cannot be split: {} segments \
             share an unsplittable region (> M = {cap})",
            items.len(),
        )
    });
    let (lr, rr) = cut_region(region, axis, c);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for e in items {
        let seg = &segs[e.child as usize];
        let in_l = lr.intersects_segment(seg);
        let in_r = rr.intersects_segment(seg);
        debug_assert!(in_l || in_r, "segment lost by bulk split");
        if in_l {
            left.push(e);
        }
        if in_r {
            right.push(e);
        }
    }
    Part::Split {
        region,
        left: Box::new(partition(segs, left, lr, cap)),
        right: Box::new(partition(segs, right, rr, cap)),
    }
}

/// Pick a cut for an over-full bulk region. Cheap median/midpoint
/// candidates are validated for strict progress (each side must receive
/// strictly fewer segments than the whole); if none of them works, fall
/// back to the paper's exhaustive boundary scan.
fn choose_bulk_cut(segs: &[Segment], items: &[Entry], region: Rect) -> Option<(Axis, i32)> {
    let n = items.len();
    let interior = |axis: Axis, c: i32| match axis {
        Axis::X => region.min.x < c && c < region.max.x,
        Axis::Y => region.min.y < c && c < region.max.y,
    };
    let progress = |axis: Axis, c: i32| {
        let (lr, rr) = cut_region(region, axis, c);
        let (mut l, mut r) = (0usize, 0usize);
        for e in items {
            let seg = &segs[e.child as usize];
            if lr.intersects_segment(seg) {
                l += 1;
            }
            if rr.intersects_segment(seg) {
                r += 1;
            }
        }
        l < n && r < n
    };
    let mut axes = [Axis::X, Axis::Y];
    if region.height() > region.width() {
        axes.reverse();
    }
    for &axis in &axes {
        if let Some(c) = median_cut(items, axis) {
            if interior(axis, c) && progress(axis, c) {
                return Some((axis, c));
            }
        }
    }
    for &axis in &axes {
        let c = match axis {
            Axis::X => midpoint(region.min.x, region.max.x),
            Axis::Y => midpoint(region.min.y, region.max.y),
        };
        if let Some(c) = c {
            if progress(axis, c) {
                return Some((axis, c));
            }
        }
    }
    exhaustive_cut(items, region)
}

/// Median of the entries' doubled bbox centers along `axis`.
fn median_cut(items: &[Entry], axis: Axis) -> Option<i32> {
    let mut centers: Vec<i64> = items
        .iter()
        .map(|e| match axis {
            Axis::X => e.rect.min.x as i64 + e.rect.max.x as i64,
            Axis::Y => e.rect.min.y as i64 + e.rect.max.y as i64,
        })
        .collect();
    let mid = centers.len() / 2;
    let (_, &mut m, _) = centers.select_nth_unstable(mid);
    i32::try_from(m.div_euclid(2)).ok()
}

/// The paper's exhaustive rule, restricted to cuts that classify at
/// least one bbox strictly on each side (which guarantees both halves
/// receive strictly fewer segments): minimize bboxes cut, tie-break on
/// evenness. O(n²) — only reached when the cheap candidates all fail.
fn exhaustive_cut(items: &[Entry], region: Rect) -> Option<(Axis, i32)> {
    let mut best: Option<(u64, u64, Axis, i32)> = None;
    let mut consider = |axis: Axis, c: i32| {
        let (mut l, mut r, mut cut) = (0u64, 0u64, 0u64);
        for e in items {
            let (emin, emax) = match axis {
                Axis::X => (e.rect.min.x, e.rect.max.x),
                Axis::Y => (e.rect.min.y, e.rect.max.y),
            };
            if emax < c {
                l += 1;
            } else if emin > c {
                r += 1;
            } else {
                cut += 1;
            }
        }
        if l == 0 || r == 0 {
            return;
        }
        let imbalance = (l + cut).abs_diff(r + cut);
        if best.is_none_or(|(bc, bi, _, _)| (cut, imbalance) < (bc, bi)) {
            best = Some((cut, imbalance, axis, c));
        }
    };
    for e in items {
        for c in [
            e.rect.min.x - 1,
            e.rect.min.x,
            e.rect.max.x,
            e.rect.max.x + 1,
        ] {
            if region.min.x < c && c < region.max.x {
                consider(Axis::X, c);
            }
        }
        for c in [
            e.rect.min.y - 1,
            e.rect.min.y,
            e.rect.max.y,
            e.rect.max.y + 1,
        ] {
            if region.min.y < c && c < region.max.y {
                consider(Axis::Y, c);
            }
        }
    }
    best.map(|(_, _, axis, c)| (axis, c))
}

#[cfg(test)]
mod tests {
    use lsdb_core::{brute, IndexConfig, PolygonalMap, QueryCtx, SegId, SpatialIndex};
    use lsdb_geom::{Point, Rect, Segment};

    use crate::RPlusTree;

    fn cfg_small() -> IndexConfig {
        IndexConfig {
            page_size: 224,
            pool_pages: 8,
            ..Default::default()
        }
    }

    fn random_ish_map(n: usize) -> PolygonalMap {
        let segs: Vec<Segment> = (0..n)
            .map(|i| {
                let x = ((i * 7919) % 16000) as i32;
                let y = ((i * 104729) % 16000) as i32;
                Segment::new(
                    Point::new(x, y),
                    Point::new(x + 37, y + ((i % 90) as i32) - 45),
                )
            })
            .collect();
        PolygonalMap::new("scatter", segs)
    }

    #[test]
    fn bulk_load_satisfies_invariants() {
        for n in [1usize, 9, 10, 11, 57, 400] {
            let map = random_ish_map(n);
            let mut t = RPlusTree::bulk_load(&map, cfg_small());
            let segs = t.check_invariants();
            assert_eq!(segs.len(), n, "n = {n}");
        }
    }

    #[test]
    fn bulk_load_answers_match_oracle() {
        let map = random_ish_map(300);
        let t = RPlusTree::bulk_load(&map, cfg_small());
        let mut ctx = QueryCtx::new();
        for i in (0..16000).step_by(2911) {
            let p = Point::new(i, (i * 3) % 16000);
            let got = t.nearest(p, &mut ctx).unwrap();
            let want = brute::nearest(&map, p).unwrap();
            assert_eq!(map.segments[got.index()].dist2_point(p), want.1);
            let w = Rect::new(p.x.saturating_sub(500).max(0), 0, p.x + 500, 15999);
            assert_eq!(brute::sorted(t.window(w, &mut ctx)), brute::window(&map, w));
        }
    }

    #[test]
    fn bulk_and_insert_built_trees_answer_identically() {
        // Satellite contract: results identical, counters may differ.
        let map = random_ish_map(250);
        let bulk = RPlusTree::bulk_load(&map, cfg_small());
        let grown = RPlusTree::build(&map, cfg_small());
        let mut cb = QueryCtx::new();
        let mut cg = QueryCtx::new();
        for i in (0..16000).step_by(911) {
            let p = Point::new(i, (i * 7) % 16000);
            assert_eq!(
                bulk.nearest(p, &mut cb).map(|id| {
                    let s = &map.segments[id.index()];
                    s.dist2_point(p)
                }),
                grown.nearest(p, &mut cg).map(|id| {
                    let s = &map.segments[id.index()];
                    s.dist2_point(p)
                }),
            );
            let w = Rect::new((i - 700).max(0), 0, i + 700, 15999);
            assert_eq!(
                brute::sorted(bulk.window(w, &mut cb)),
                brute::sorted(grown.window(w, &mut cg)),
            );
            assert_eq!(
                brute::sorted(bulk.find_incident(p, &mut cb)),
                brute::sorted(grown.find_incident(p, &mut cg)),
            );
        }
    }

    #[test]
    fn bulk_loaded_tree_accepts_updates() {
        let map = random_ish_map(200);
        let mut t = RPlusTree::bulk_load(&map, cfg_small());
        for i in (0..200).step_by(2) {
            assert!(t.remove(SegId(i as u32)));
        }
        for i in (0..200).step_by(2) {
            t.insert(SegId(i as u32));
        }
        assert_eq!(t.check_invariants().len(), 200);
    }
}
