//! Self-contained deterministic PRNG used by the map generators, the query
//! point streams, and the randomized tests.
//!
//! The workspace builds in fully offline environments, so we cannot depend
//! on the `rand` crate; this is a SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA 2014) with a call surface mirroring the subset of `rand`
//! the repo uses: `seed_from_u64`, `gen_range` over integer and float
//! ranges, and `gen_bool`. Streams are stable across platforms and
//! releases — cached maps and test expectations depend on that.

use std::ops::{Range, RangeInclusive};

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seed the generator. Identical seeds yield identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `bound` (> 0), bias-free via rejection.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform sample from `range` (mirrors `rand::Rng::gen_range`).
    /// Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        self.next_f64() < p
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let x = rng.gen_range(10i64..11);
            assert_eq!(x, 10);
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean} far from 3.0");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference output of SplitMix64 for seed 1234567, computed from
        // the published C reference implementation.
        let mut rng = StdRng::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 0x599e_d017_fb08_fc85);
    }
}
