//! Binary map file I/O.
//!
//! A tiny, versioned, endian-fixed format so generated counties can be
//! cached on disk and shared between the benchmark binaries and examples:
//!
//! ```text
//! magic   8 bytes  "LSDBMAP1"
//! namelen u16 LE
//! name    namelen bytes (UTF-8)
//! count   u32 LE
//! records count × 16 bytes (x1, y1, x2, y2 as i32 LE)
//! ```

use lsdb_core::PolygonalMap;
use lsdb_geom::{Point, Segment};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LSDBMAP1";

/// Write `map` to `path`, overwriting.
pub fn save(map: &PolygonalMap, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(MAGIC)?;
    let name = map.name.as_bytes();
    assert!(name.len() <= u16::MAX as usize, "map name too long");
    f.write_all(&(name.len() as u16).to_le_bytes())?;
    f.write_all(name)?;
    f.write_all(&(map.segments.len() as u32).to_le_bytes())?;
    for s in &map.segments {
        for v in [s.a.x, s.a.y, s.b.x, s.b.y] {
            f.write_all(&v.to_le_bytes())?;
        }
    }
    f.into_inner()?.sync_all()
}

/// Read a map from `path`.
pub fn load(path: &Path) -> std::io::Result<PolygonalMap> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not an LSDBMAP1 file",
        ));
    }
    let mut b2 = [0u8; 2];
    f.read_exact(&mut b2)?;
    let name_len = u16::from_le_bytes(b2) as usize;
    let mut name = vec![0u8; name_len];
    f.read_exact(&mut name)?;
    let name = String::from_utf8(name)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut b4 = [0u8; 4];
    f.read_exact(&mut b4)?;
    let count = u32::from_le_bytes(b4) as usize;
    let mut segments = Vec::with_capacity(count);
    let mut rec = [0u8; 16];
    for _ in 0..count {
        f.read_exact(&mut rec)?;
        let rd = |o: usize| i32::from_le_bytes(rec[o..o + 4].try_into().unwrap());
        segments.push(Segment::new(
            Point::new(rd(0), rd(4)),
            Point::new(rd(8), rd(12)),
        ));
    }
    Ok(PolygonalMap::new(name, segments))
}

/// Load `name` from the cache directory, generating and caching it first
/// if absent. This is what the benchmark harness uses so repeated runs
/// skip generation.
pub fn load_or_generate(spec: &crate::CountySpec, cache_dir: &Path) -> PolygonalMap {
    std::fs::create_dir_all(cache_dir).expect("create map cache dir");
    let file = cache_dir.join(format!(
        "{}-{}.lsdbmap",
        spec.name.to_lowercase().replace(' ', "-"),
        spec.target_segments
    ));
    if let Ok(map) = load(&file) {
        if map.name == spec.name {
            return map;
        }
    }
    let map = crate::generate(spec);
    save(&map, &file).expect("cache generated map");
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountyClass, CountySpec};

    fn tmp() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("lsdb-tiger-io-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip() {
        let spec = CountySpec::new("Tiny Town", CountyClass::Urban, 500, 5);
        let map = crate::generate(&spec);
        let path = tmp().join("tiny.lsdbmap");
        save(&map, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.name, map.name);
        assert_eq!(loaded.segments, map.segments);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp().join("junk.lsdbmap");
        std::fs::write(&path, b"NOTAMAP!....").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_or_generate_caches() {
        let dir = tmp().join("cache");
        let spec = CountySpec::new("Cache County", CountyClass::Urban, 400, 6);
        let a = load_or_generate(&spec, &dir);
        let b = load_or_generate(&spec, &dir);
        assert_eq!(a.segments, b.segments);
        std::fs::remove_dir_all(dir).ok();
    }
}
