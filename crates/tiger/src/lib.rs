//! Synthetic TIGER/Line-style county road maps.
//!
//! The paper's datasets are six Maryland county road networks from the
//! Bureau of the Census TIGER/Line files, each holding ≈50,000 line
//! segments, normalized to a 16K×16K world:
//!
//! | county       | segments | character            |
//! |--------------|---------:|----------------------|
//! | Anne Arundel |   46,335 | suburban             |
//! | Baltimore    |   48,068 | urban                |
//! | Cecil        |   46,900 | rural                |
//! | Charles      |   50,998 | rural                |
//! | Garrett      |   49,895 | rural                |
//! | Washington   |   49,575 | rural                |
//!
//! TIGER/Line itself is not redistributable here, so this crate generates
//! *synthetic counties* that preserve the properties the paper's
//! experiments depend on (see DESIGN.md):
//!
//! * segment counts near 50k, normalized integer coordinates,
//! * urban maps: fine jittered street grids whose polygons (city blocks)
//!   have ~4-6 segments,
//! * rural maps: coarse grids of *meandering* roads — each road is a
//!   many-segment polyline, so polygons have >100 segments (the paper
//!   measured an average of 132 for Charles county versus 19 for
//!   Baltimore),
//! * suburban maps: a mixture,
//! * strict vertex-noded planarity (validated by
//!   [`lsdb_core::PolygonalMap::validate_planar`]), guaranteed by
//!   construction: every road stays inside a "diamond" envelope around its
//!   grid edge, so distinct roads can only meet at shared grid vertices.
//!
//! Generation is deterministic per (spec, seed).

mod gen;
pub mod io;

pub use gen::{generate, CountyClass, CountySpec};

/// The paper's six counties as synthetic specs (deterministic seeds).
pub fn the_six_counties() -> Vec<CountySpec> {
    vec![
        CountySpec::new("Anne Arundel", CountyClass::Suburban, 46_335, 0xA22A),
        CountySpec::new("Baltimore", CountyClass::Urban, 48_068, 0xBA17),
        CountySpec::new("Cecil", CountyClass::Rural { meander: 20 }, 46_900, 0xCEC1),
        CountySpec::new(
            "Charles",
            CountyClass::Rural { meander: 26 },
            50_998,
            0xC4A5,
        ),
        CountySpec::new(
            "Garrett",
            CountyClass::Rural { meander: 24 },
            49_895,
            0x6A44,
        ),
        CountySpec::new(
            "Washington",
            CountyClass::Rural { meander: 22 },
            49_575,
            0x3A54,
        ),
    ]
}

/// Look up one of the six counties by (case-insensitive) name.
pub fn county(name: &str) -> Option<CountySpec> {
    the_six_counties()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_counties_exist_with_paper_counts() {
        let cs = the_six_counties();
        assert_eq!(cs.len(), 6);
        assert_eq!(county("charles").unwrap().target_segments, 50_998);
        assert_eq!(county("Baltimore").unwrap().target_segments, 48_068);
        assert!(county("nowhere").is_none());
    }
}
