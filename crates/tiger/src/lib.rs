//! Synthetic TIGER/Line-style county road maps.
//!
//! The paper's datasets are six Maryland county road networks from the
//! Bureau of the Census TIGER/Line files, each holding ≈50,000 line
//! segments, normalized to a 16K×16K world:
//!
//! | county       | segments | character            |
//! |--------------|---------:|----------------------|
//! | Anne Arundel |   46,335 | suburban             |
//! | Baltimore    |   48,068 | urban                |
//! | Cecil        |   46,900 | rural                |
//! | Charles      |   50,998 | rural                |
//! | Garrett      |   49,895 | rural                |
//! | Washington   |   49,575 | rural                |
//!
//! TIGER/Line itself is not redistributable here, so this crate generates
//! *synthetic counties* that preserve the properties the paper's
//! experiments depend on (see DESIGN.md):
//!
//! * segment counts near 50k, normalized integer coordinates,
//! * urban maps: fine jittered street grids whose polygons (city blocks)
//!   have ~4-6 segments,
//! * rural maps: coarse grids of *meandering* roads — each road is a
//!   many-segment polyline, so polygons have >100 segments (the paper
//!   measured an average of 132 for Charles county versus 19 for
//!   Baltimore),
//! * suburban maps: a mixture,
//! * strict vertex-noded planarity (validated by
//!   [`lsdb_core::PolygonalMap::validate_planar`]), guaranteed by
//!   construction: every road stays inside a "diamond" envelope around its
//!   grid edge, so distinct roads can only meet at shared grid vertices.
//!
//! Generation is deterministic per (spec, seed).

mod gen;
pub mod io;

pub use gen::{generate, CountyClass, CountySpec};

/// The paper's six counties as synthetic specs (deterministic seeds).
pub fn the_six_counties() -> Vec<CountySpec> {
    vec![
        CountySpec::new("Anne Arundel", CountyClass::Suburban, 46_335, 0xA22A),
        CountySpec::new("Baltimore", CountyClass::Urban, 48_068, 0xBA17),
        CountySpec::new("Cecil", CountyClass::Rural { meander: 20 }, 46_900, 0xCEC1),
        CountySpec::new(
            "Charles",
            CountyClass::Rural { meander: 26 },
            50_998,
            0xC4A5,
        ),
        CountySpec::new(
            "Garrett",
            CountyClass::Rural { meander: 24 },
            49_895,
            0x6A44,
        ),
        CountySpec::new(
            "Washington",
            CountyClass::Rural { meander: 22 },
            49_575,
            0x3A54,
        ),
    ]
}

/// Look up one of the six counties by (case-insensitive) name.
pub fn county(name: &str) -> Option<CountySpec> {
    the_six_counties()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

/// A deterministic synthetic continent: `counties` county specs laid out
/// on a square grid of seeds. County `i` sits at grid cell
/// `(i / side, i % side)` (`side = ceil(sqrt(counties))`), is named
/// `c<row>-<col>`, cycles through the urban/suburban/rural classes, and
/// derives its seed only from `seed` and its grid cell — so any county
/// can be regenerated independently, identically, and in any order
/// (which is what lets a multi-map server lazily rebuild a closed map
/// byte-for-byte). At the paper's ~50k segments per county, 100 counties
/// is a five-million-segment dataset.
pub fn continent(counties: usize, segments_per_county: usize, seed: u64) -> Vec<CountySpec> {
    let side = (counties as f64).sqrt().ceil() as usize;
    (0..counties)
        .map(|i| continent_county(i / side.max(1), i % side.max(1), segments_per_county, seed))
        .collect()
}

/// One continent county by grid cell (see [`continent`]).
pub fn continent_county(
    row: usize,
    col: usize,
    segments_per_county: usize,
    seed: u64,
) -> CountySpec {
    // SplitMix64-style mix of the base seed and the grid cell, so
    // neighbouring cells get uncorrelated generator streams.
    let mut s = seed
        ^ (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (col as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 30;
    s = s.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 27;
    let class = match (row + col) % 4 {
        0 => CountyClass::Urban,
        1 => CountyClass::Suburban,
        2 => CountyClass::Rural {
            meander: 20 + 2 * (col % 4),
        },
        _ => CountyClass::Rural {
            meander: 26 - 2 * (row % 3),
        },
    };
    CountySpec::new(&format!("c{row}-{col}"), class, segments_per_county, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_counties_exist_with_paper_counts() {
        let cs = the_six_counties();
        assert_eq!(cs.len(), 6);
        assert_eq!(county("charles").unwrap().target_segments, 50_998);
        assert_eq!(county("Baltimore").unwrap().target_segments, 48_068);
        assert!(county("nowhere").is_none());
    }

    #[test]
    fn continent_is_deterministic_with_distinct_seeds_and_mixed_classes() {
        let a = continent(20, 3000, 7);
        let b = continent(20, 3000, 7);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.target_segments, 3000);
        }
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 20, "every county gets its own seed");
        assert!(a.iter().any(|c| matches!(c.class, CountyClass::Urban)));
        assert!(a
            .iter()
            .any(|c| matches!(c.class, CountyClass::Rural { .. })));
        // A different base seed reshuffles every county.
        let c = continent(20, 3000, 8);
        assert!(a.iter().zip(&c).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn continent_counties_regenerate_independently() {
        // The property the multi-map server's lazy reopen relies on:
        // rebuilding one county in isolation yields the same map as
        // building it as part of the whole continent.
        let all = continent(9, 400, 42);
        let lone = continent_county(1, 2, 400, 42);
        assert_eq!(all[5].name, lone.name, "cell (1,2) is county 5 of 9");
        let a = generate(&all[5]);
        let b = generate(&lone);
        assert_eq!(a.segments, b.segments);
    }
}
