use lsdb_core::PolygonalMap;
use lsdb_geom::{Point, WORLD_SIZE};
use lsdb_rng::StdRng;

/// Character of a synthetic county.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountyClass {
    /// Fine jittered street grid; polygons are small city blocks.
    Urban,
    /// Mixture of straight streets and moderately meandering roads.
    Suburban,
    /// Coarse grid of meandering roads; every road is a `meander`-segment
    /// polyline, so polygons are large.
    Rural {
        /// Sub-segments per road.
        meander: usize,
    },
}

/// Specification of a synthetic county map.
#[derive(Clone, Debug)]
pub struct CountySpec {
    pub name: String,
    pub class: CountyClass,
    /// Desired segment count; the generator lands at or slightly below it.
    pub target_segments: usize,
    pub seed: u64,
}

impl CountySpec {
    pub fn new(name: &str, class: CountyClass, target_segments: usize, seed: u64) -> Self {
        CountySpec {
            name: name.to_string(),
            class,
            target_segments,
            seed,
        }
    }

    /// The same county scaled to a different size (for tests and quick
    /// examples).
    pub fn with_target(mut self, target_segments: usize) -> Self {
        self.target_segments = target_segments;
        self
    }
}

/// One road: the polyline of points from one grid vertex to a neighbour.
struct Road {
    points: Vec<Point>,
}

impl Road {
    fn segment_count(&self) -> usize {
        self.points.len() - 1
    }
}

/// Generate the synthetic county map. Deterministic in the spec.
///
/// Planarity by construction: every road stays strictly inside the
/// "diamond" around its grid edge — the convex region
/// `|offset(t)| <= 0.7 · L · min(t, 1-t) - 1` (capped by the channel
/// amplitude) — so roads of different edges can only meet at shared grid
/// vertices, where all offsets are zero.
pub fn generate(spec: &CountySpec) -> PolygonalMap {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let avg_k = match spec.class {
        CountyClass::Urban => 1.0,
        CountyClass::Suburban => 4.0,
        CountyClass::Rural { meander } => meander as f64,
    };
    // County boundary: an ellipse inscribed in the world. Real counties do
    // not fill their minimum bounding square — the paper notes that
    // uniformly random query points often fall "outside the boundaries of
    // the maps of interest, or in large empty areas", which drives its
    // 1-stage vs 2-stage contrast. Roads whose grid edge lies outside the
    // boundary are dropped.
    let fa: f64 = rng.gen_range(0.46..0.50);
    let fb: f64 = rng.gen_range(0.46..0.50);
    // Superellipse (exponent 4): a squarish county with rounded-off
    // corners and margins, covering ~85% of its bounding square. The
    // Gamma-function constant 3.7081 is 4·(Γ(5/4))²/Γ(3/2) for exponent 4.
    let fill = 3.7081_f64 / 4.0 * (2.0 * fa) * (2.0 * fb);
    let inside_county = |p: Point| -> bool {
        let half = (WORLD_SIZE / 2) as f64;
        let dx = (p.x as f64 - half) / (fa * WORLD_SIZE as f64);
        let dy = (p.y as f64 - half) / (fb * WORLD_SIZE as f64);
        dx.powi(4) + dy.powi(4) <= 1.0
    };
    // edges ≈ 2·n·(n+1) of which `fill` survive; solve 2n²·avg_k·fill ≈ target.
    let n = ((spec.target_segments as f64 / (2.0 * avg_k * fill))
        .sqrt()
        .floor() as i32)
        .max(2);
    let cell = (WORLD_SIZE - 1) / n;
    assert!(cell >= 8, "target too large for the world resolution");

    // Grid vertex positions. Urban maps jitter whole rows and columns
    // (streets stay perfectly straight and axis-parallel, but block sizes
    // vary — the shape of a planned city in TIGER/Line, where urban
    // streets are dominated by exactly horizontal/vertical segments).
    // Jitter below cell/4 trivially preserves planarity.
    let jitter = match spec.class {
        CountyClass::Urban => cell / 5,
        _ => 0,
    };
    let axis_offsets = |rng: &mut StdRng| -> Vec<i32> {
        (0..=n)
            .map(|_| {
                if jitter > 0 {
                    rng.gen_range(-jitter..=jitter)
                } else {
                    0
                }
            })
            .collect()
    };
    let col_off = axis_offsets(&mut rng);
    let row_off = axis_offsets(&mut rng);
    let mut vertex = vec![Point::new(0, 0); ((n + 1) * (n + 1)) as usize];
    for j in 0..=n {
        for i in 0..=n {
            vertex[(j * (n + 1) + i) as usize] = Point::new(
                (i * cell + col_off[i as usize]).clamp(0, WORLD_SIZE - 1),
                (j * cell + row_off[j as usize]).clamp(0, WORLD_SIZE - 1),
            );
        }
    }

    // Per-road sub-segment count.
    let road_k = |rng: &mut StdRng| -> usize {
        match spec.class {
            CountyClass::Urban => 1,
            CountyClass::Suburban => {
                if rng.gen_bool(0.5) {
                    1
                } else {
                    rng.gen_range(4..=10)
                }
            }
            CountyClass::Rural { meander } => {
                let lo = (meander * 3 / 4).max(2);
                rng.gen_range(lo..=meander + meander / 4)
            }
        }
    };
    let drop_prob = match spec.class {
        CountyClass::Urban => 0.04,
        CountyClass::Suburban => 0.03,
        CountyClass::Rural { .. } => 0.02,
    };

    let mut roads: Vec<Road> = Vec::new();
    let vid = |i: i32, j: i32| ((j * (n + 1)) + i) as usize;
    for j in 0..=n {
        for i in 0..=n {
            // Horizontal edge (i,j)-(i+1,j) and vertical edge (i,j)-(i,j+1).
            for (di, dj) in [(1, 0), (0, 1)] {
                let (i2, j2) = (i + di, j + dj);
                if i2 > n || j2 > n {
                    continue;
                }
                if rng.gen_bool(drop_prob) {
                    continue;
                }
                let k = road_k(&mut rng);
                let from = vertex[vid(i, j)];
                let to = vertex[vid(i2, j2)];
                // Roads outside the county boundary do not exist; the RNG
                // draws above keep the stream aligned either way.
                let mid = Point::new((from.x + to.x) / 2, (from.y + to.y) / 2);
                if !inside_county(mid) {
                    continue;
                }
                roads.push(meander_road(&mut rng, from, to, k, cell, jitter > 0));
            }
        }
    }

    // Trim whole roads at random until at or below the target count.
    let mut total: usize = roads.iter().map(Road::segment_count).sum();
    while total > spec.target_segments && roads.len() > 1 {
        let victim = rng.gen_range(0..roads.len());
        total -= roads[victim].segment_count();
        roads.swap_remove(victim);
    }

    let mut segments = Vec::with_capacity(total);
    for r in &roads {
        for w in r.points.windows(2) {
            segments.push(lsdb_geom::Segment::new(w[0], w[1]));
        }
    }
    prune_dangling_chains(&mut segments);
    PolygonalMap::new(spec.name.clone(), segments)
}

/// Iteratively remove segments with a free (degree-1) endpoint. County
/// clipping leaves road stubs dangling over the boundary; without pruning
/// the map's outer face detours into every stub and the paper's
/// enclosing-polygon walks from outside points become pathologically long.
fn prune_dangling_chains(segments: &mut Vec<lsdb_geom::Segment>) {
    use std::collections::HashMap;
    let mut degree: HashMap<Point, u32> = HashMap::new();
    for s in segments.iter() {
        *degree.entry(s.a).or_default() += 1;
        *degree.entry(s.b).or_default() += 1;
    }
    loop {
        let before = segments.len();
        segments.retain(|s| {
            if degree[&s.a] == 1 || degree[&s.b] == 1 {
                *degree.get_mut(&s.a).unwrap() -= 1;
                *degree.get_mut(&s.b).unwrap() -= 1;
                false
            } else {
                true
            }
        });
        if segments.len() == before {
            return;
        }
    }
}

/// Build one road from `from` to `to` as a `k`-segment polyline meandering
/// inside the edge's diamond envelope. `from`/`to` are endpoints of an
/// (unjittered: rural/suburban, or jittered: urban with k = 1) grid edge.
fn meander_road(
    rng: &mut StdRng,
    from: Point,
    to: Point,
    k: usize,
    cell: i32,
    jittered: bool,
) -> Road {
    if k <= 1 || jittered {
        return Road {
            points: vec![from, to],
        };
    }
    let horizontal = (to.y - from.y).abs() < (to.x - from.x).abs();
    let len = if horizontal {
        to.x - from.x
    } else {
        to.y - from.y
    };
    debug_assert!(len > 0, "grid edges point in +x/+y");
    let k = k.min((len / 2).max(1) as usize);
    if k <= 1 {
        return Road {
            points: vec![from, to],
        };
    }
    // Smooth bounded noise: two random sinusoids, normalized to [-1, 1].
    let a1: f64 = rng.gen_range(0.4..1.0);
    let a2: f64 = rng.gen_range(0.2..0.8);
    let f1: f64 = rng.gen_range(0.8..2.0);
    let f2: f64 = rng.gen_range(2.5..5.5);
    let p1: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let p2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let amp = 0.3 * cell as f64;
    let mut points = Vec::with_capacity(k + 1);
    points.push(from);
    for i in 1..k {
        let t = i as f64 / k as f64;
        let along = ((len as f64) * t).round() as i32;
        // Diamond envelope: strictly inside the 45° cones at both ends.
        let env = (0.7 * len as f64 * t.min(1.0 - t) - 1.0).min(amp).max(0.0);
        let noise = (a1 * (std::f64::consts::TAU * (f1 * t) + p1).sin()
            + a2 * (std::f64::consts::TAU * (f2 * t) + p2).sin())
            / (a1 + a2);
        let off = (env * noise).round() as i32;
        let mut off = off.clamp(-(env as i32), env as i32);
        // Boundary edges fold their meander inward so the road stays in
        // the world; the folded offset respects the same envelope, so the
        // planarity argument is unchanged.
        let base = if horizontal { from.y } else { from.x };
        if base + off < 0 || base + off > WORLD_SIZE - 1 {
            off = -off;
        }
        let p = if horizontal {
            Point::new(from.x + along, from.y + off)
        } else {
            Point::new(from.x + off, from.y + along)
        };
        points.push(p);
    }
    points.push(to);
    points.dedup();
    Road { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(class: CountyClass, target: usize, seed: u64) -> PolygonalMap {
        generate(&CountySpec::new("test", class, target, seed))
    }

    #[test]
    fn urban_is_planar_and_normalized() {
        let m = small(CountyClass::Urban, 3000, 1);
        assert!(m.len() > 2000, "got {}", m.len());
        assert!(m.len() <= 3000);
        assert!(m.is_normalized());
        m.validate_planar().expect("urban map must be planar");
    }

    #[test]
    fn rural_is_planar_and_normalized() {
        let m = small(CountyClass::Rural { meander: 30 }, 4000, 2);
        // Meandering + planarity enforcement rejects many candidates; the
        // generator must still achieve at least half the requested yield.
        assert!(m.len() > 2000, "got {}", m.len());
        assert!(m.is_normalized());
        m.validate_planar().expect("rural map must be planar");
    }

    #[test]
    fn suburban_is_planar_and_normalized() {
        let m = small(CountyClass::Suburban, 4000, 3);
        assert!(m.len() > 2500, "got {}", m.len());
        assert!(m.is_normalized());
        m.validate_planar().expect("suburban map must be planar");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small(CountyClass::Rural { meander: 20 }, 2000, 42);
        let b = small(CountyClass::Rural { meander: 20 }, 2000, 42);
        assert_eq!(a.segments, b.segments);
        let c = small(CountyClass::Rural { meander: 20 }, 2000, 43);
        assert_ne!(a.segments, c.segments, "different seeds differ");
    }

    #[test]
    fn rural_segments_are_shorter_than_urban() {
        // Meandering chops roads into many short pieces: mean segment
        // length must be far below the urban street length.
        let avg_len = |m: &PolygonalMap| {
            m.segments
                .iter()
                .map(|s| (s.len2() as f64).sqrt())
                .sum::<f64>()
                / m.len() as f64
        };
        let urban = small(CountyClass::Urban, 4000, 7);
        let rural = small(CountyClass::Rural { meander: 30 }, 4000, 7);
        assert!(
            avg_len(&rural) * 3.0 < avg_len(&urban),
            "urban {:.0} vs rural {:.0}",
            avg_len(&urban),
            avg_len(&rural)
        );
    }

    #[test]
    fn rural_roads_have_high_vertex_count_polygons() {
        // Proxy for the paper's polygon sizes: degree-2 "chain" vertices
        // dominate rural maps (meander joints), while urban maps are
        // dominated by degree-3/4 intersections.
        let chain_fraction = |m: &PolygonalMap| {
            let inc = m.vertex_incidence();
            let chains = inc.values().filter(|v| v.len() == 2).count();
            chains as f64 / inc.len() as f64
        };
        let urban = small(CountyClass::Urban, 4000, 9);
        let rural = small(CountyClass::Rural { meander: 30 }, 4000, 9);
        assert!(
            chain_fraction(&rural) > 0.85,
            "rural {}",
            chain_fraction(&rural)
        );
        assert!(
            chain_fraction(&urban) < 0.30,
            "urban {}",
            chain_fraction(&urban)
        );
    }

    #[test]
    fn no_dangling_chains_after_pruning() {
        for (class, seed) in [
            (CountyClass::Urban, 21u64),
            (CountyClass::Rural { meander: 20 }, 22),
        ] {
            let m = small(class, 4000, seed);
            let inc = m.vertex_incidence();
            let dangling = inc.values().filter(|v| v.len() == 1).count();
            assert_eq!(dangling, 0, "{class:?} left {dangling} degree-1 vertices");
        }
    }

    #[test]
    fn county_leaves_empty_margins() {
        // The superellipse boundary leaves the bounding-square corners
        // empty — the paper's "query points outside the boundaries".
        let m = small(CountyClass::Urban, 4000, 23);
        let b = m.bbox().unwrap();
        assert!(
            b.width() > (WORLD_SIZE as i64) * 8 / 10,
            "county spans the world"
        );
        let corner = lsdb_geom::Rect::new(0, 0, WORLD_SIZE / 16, WORLD_SIZE / 16);
        let in_corner = m
            .segments
            .iter()
            .filter(|s| corner.intersects(&s.bbox()))
            .count();
        assert_eq!(in_corner, 0, "the extreme corner must be empty");
    }

    #[test]
    fn hits_target_from_below() {
        for (class, target) in [
            (CountyClass::Urban, 5000),
            (CountyClass::Suburban, 5000),
            (CountyClass::Rural { meander: 24 }, 5000),
        ] {
            let m = small(class, target, 11);
            assert!(m.len() <= target, "{class:?}: {} > {target}", m.len());
            assert!(
                m.len() as f64 >= target as f64 * 0.7,
                "{class:?}: {} too far below {target}",
                m.len()
            );
        }
    }

    #[test]
    fn full_scale_counties_are_planar() {
        // Full 50k-segment generation + planarity validation. Kept in the
        // default suite — the bucketed validator is near-linear.
        for spec in crate::the_six_counties() {
            let m = generate(&spec);
            assert!(
                m.len() as f64 >= spec.target_segments as f64 * 0.85,
                "{}: {} segments for target {}",
                spec.name,
                m.len(),
                spec.target_segments
            );
            assert!(m.is_normalized());
            m.validate_planar()
                .unwrap_or_else(|e| panic!("{} not planar: {e:?}", spec.name));
        }
    }
}
