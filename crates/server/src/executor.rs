//! The fixed executor pool: spatial work decoded by the event loop runs
//! here, one job per worker at a time, each worker owning a warm
//! [`QueryCtx`].
//!
//! Every job carries the catalog id of the map it is routed to (v1/v2
//! frames land on map `0`). The worker resolves the slot through
//! [`crate::catalog::Catalog::with_live`], which opens cold maps lazily
//! and enforces the buffer budget after the query's read guard is gone.
//! Singleton requests reset the context per query exactly as the PR-2
//! worker pool did. Batch requests run through
//! [`lsdb_core::execute_batch`], which Morton-sorts the batch so the
//! context's page pins and segment mini-cache stay warm across
//! neighboring queries — while charging counters per item byte-identically
//! to singleton execution. Catalog admin ops (`OPEN_MAP`, `CLOSE_MAP`,
//! v3 `STATS`) also run here: opening a map may build it, which must
//! never stall the I/O thread. Completed replies are already encoded for
//! their connection's protocol version when they travel back to the
//! event loop, which only moves bytes.

use crate::catalog::Catalog;
use crate::protocol::{ErrorCode, Reply, Request, MAX_BATCH_ITEMS};
use crate::server::Shared;
use crate::sys::WakePipe;
use lsdb_core::{execute_batch, queries, BatchAnswer, BatchRequest, QueryCtx};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a finished reply rejoins its connection's outbound stream: v1
/// replies release in arrival order, v2/v3 replies release on completion
/// under their correlation id (the variant picks the reply envelope's
/// version marker).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Token {
    V1 { seq: u64 },
    V2 { corr: u32 },
    V3 { corr: u32 },
}

/// The work itself (inline service ops never reach the executor).
pub(crate) enum Work {
    Single(Request),
    Batch(BatchRequest),
    /// A catalog admin op (`OPEN_MAP`/`LIST_MAPS`/`CLOSE_MAP`, v3
    /// `STATS`) — routed here because opening a map can build it.
    Admin(Request),
}

/// One decoded request handed from the event loop to the pool.
pub(crate) struct Job {
    pub conn: u64,
    pub token: Token,
    /// Catalog id the request is routed to (0 for v1/v2 frames).
    pub map: u32,
    pub work: Work,
}

/// One encoded reply handed back from the pool to the event loop.
pub(crate) struct Completion {
    pub conn: u64,
    pub token: Token,
    pub payload: Vec<u8>,
}

/// What executing a job produced: a freshly computed [`Reply`], or the
/// stored v1 body of a reply-cache hit. A cached body is already the
/// exact bytes [`Reply::encode`] would produce, so serving it only
/// needs the connection's envelope prepended — no re-execution, no
/// re-encoding.
enum Outcome {
    Fresh(Reply),
    Cached(Arc<[u8]>),
}

impl Outcome {
    fn into_payload(self, token: Token) -> Vec<u8> {
        match self {
            Outcome::Fresh(reply) => match token {
                Token::V1 { .. } => reply.encode(),
                Token::V2 { corr } => reply.encode_v2(corr),
                Token::V3 { corr } => reply.encode_v3(corr),
            },
            Outcome::Cached(body) => match token {
                Token::V1 { .. } => body.to_vec(),
                Token::V2 { corr } => Reply::envelope_v2(corr, &body),
                Token::V3 { corr } => Reply::envelope_v3(corr, &body),
            },
        }
    }
}

/// Worker body: dequeue, execute, encode, post the completion, wake the
/// poller. Exits when the job channel disconnects (the event loop drops
/// its sender on drain).
pub(crate) fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    shared: &Shared,
    done: &Sender<Completion>,
    wake: &WakePipe,
) {
    let mut ctx = QueryCtx::new();
    loop {
        // Hold the lock only for the dequeue, never while executing.
        let job = {
            let rx = rx.lock().unwrap();
            rx.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => {
                let outcome = match &job.work {
                    Work::Single(req) => run_single(job.map, req, shared, &mut ctx),
                    Work::Batch(req) => Outcome::Fresh(run_batch(job.map, req, shared, &mut ctx)),
                    Work::Admin(req) => Outcome::Fresh(run_admin(req, shared.catalog)),
                };
                let payload = outcome.into_payload(job.token);
                if done
                    .send(Completion {
                        conn: job.conn,
                        token: job.token,
                        payload,
                    })
                    .is_err()
                {
                    return; // event loop is gone
                }
                wake.wake();
            }
            // Timeouts just re-poll: the event loop owns the only sender
            // and drops it when it exits, which lands here as
            // `Disconnected` — the one (and race-free) exit signal.
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// A mutation the live index refused (WAL append/commit failure). The op
/// was not applied and nothing was acknowledged.
fn wal_failed(what: &str, e: &std::io::Error) -> Reply {
    Reply::Error {
        code: ErrorCode::Internal,
        message: format!("{what} not applied: {e}"),
    }
}

/// Execute one spatial query or mutation against map `map`; query
/// counters fold into the map's slot *and* the catalog aggregate,
/// exactly as the PR-2 blocking server folded its single map. Mutations
/// route through the [`lsdb_core::LiveIndex`] write path (durable
/// commit, then apply), pin the slot open (auto-close would lose the
/// mutation), and are *not* counted as spatial queries — the paper's
/// aggregates stay comparable under mixed workloads.
///
/// Queries probe the slot's reply cache first: a hit returns the stored
/// v1 body (bit-for-bit what execution would encode) and folds the
/// stored counter snapshot exactly as a cold execution folds its
/// context, so `STATS` aggregates cannot tell the difference. A miss
/// executes under the read guard and offers the encoded reply for
/// caching under the epoch observed *inside* the guard — mutations bump
/// the epoch while holding the write guard, so that epoch exactly
/// identifies the index state the reply was computed from.
fn run_single(map: u32, req: &Request, shared: &Shared, ctx: &mut QueryCtx) -> Outcome {
    let result = shared.catalog.with_live(map, |slot, live| {
        match *req {
            Request::Insert(seg) => {
                return match live.insert(seg) {
                    Ok((id, lsn)) => {
                        slot.mark_mutated();
                        Outcome::Fresh(Reply::Inserted { id, lsn: lsn.0 })
                    }
                    Err(e) => Outcome::Fresh(wal_failed("insert", &e)),
                }
            }
            Request::Delete { id } => {
                return match live.remove(id) {
                    Ok((removed, lsn)) => {
                        slot.mark_mutated();
                        Outcome::Fresh(Reply::Deleted {
                            removed,
                            lsn: lsn.0,
                        })
                    }
                    Err(e) => Outcome::Fresh(wal_failed("delete", &e)),
                }
            }
            Request::Flush => {
                return match live.flush() {
                    Ok(lsn) => Outcome::Fresh(Reply::Flushed { lsn: lsn.0 }),
                    Err(e) => Outcome::Fresh(wal_failed("flush", &e)),
                }
            }
            _ => {}
        }
        // The cache key is the canonical v1 request encoding — identical
        // queries arriving over v1, v2, or v3 envelopes share one entry.
        let cache = slot.reply_cache();
        let key = cache.on().then(|| req.encode());
        if let Some(key_bytes) = key.as_deref() {
            if let Some((body, stats)) = cache.probe(live.epoch(), key_bytes) {
                slot.stats().add(stats);
                shared.catalog.aggregate().add(stats);
                return Outcome::Cached(body);
            }
        }
        live.with_read(|index| {
            let epoch = live.epoch();
            ctx.reset();
            let reply = match *req {
                Request::Incident(p) => Reply::Segs {
                    ids: index.find_incident(p, ctx),
                    stats: ctx.stats(),
                },
                Request::Second { id, at } => {
                    if id.index() >= index.len() {
                        return Outcome::Fresh(Reply::Error {
                            code: ErrorCode::BadArgument,
                            message: format!(
                                "segment id {} out of range (map has {} segments)",
                                id.0,
                                index.len()
                            ),
                        });
                    }
                    Reply::Segs {
                        ids: queries::second_endpoint(index, id, at, ctx),
                        stats: ctx.stats(),
                    }
                }
                Request::Nearest(p) => Reply::Nearest {
                    id: index.nearest(p, ctx),
                    stats: ctx.stats(),
                },
                Request::Knn { at, k } => Reply::Segs {
                    ids: index.nearest_k(at, k as usize, ctx),
                    stats: ctx.stats(),
                },
                Request::Window(w) => Reply::Segs {
                    ids: index.window(w, ctx),
                    stats: ctx.stats(),
                },
                Request::Polygon { at, max_steps } => {
                    let walk = queries::enclosing_polygon(index, at, max_steps as usize, ctx);
                    Reply::Polygon {
                        walk: walk.map(|w| (w.boundary, w.closed)),
                        stats: ctx.stats(),
                    }
                }
                // Service and admin ops are answered elsewhere and never
                // enqueued as Single; mutations returned above.
                _ => {
                    return Outcome::Fresh(Reply::Error {
                        code: ErrorCode::Malformed,
                        message: "service op routed to executor".into(),
                    })
                }
            };
            slot.stats().add(ctx.stats());
            shared.catalog.aggregate().add(ctx.stats());
            if let Some(key_bytes) = key.as_deref() {
                cache.insert(epoch, key_bytes, reply.encode().into(), ctx.stats());
            }
            Outcome::Fresh(reply)
        })
    });
    result.unwrap_or_else(|e| Outcome::Fresh(e.to_reply()))
}

/// Execute one batch against map `map`: validate, run Morton-sorted,
/// fold each item's counters into the slot and the aggregate (so
/// `STATS` sees one entry per query, not per batch), and nest the
/// per-item replies in submission order.
///
/// Each item probes the reply cache individually (under the batch's one
/// read guard, so the epoch is exact): hits decode their stored bodies
/// straight into the nested reply, and only the *misses* travel through
/// [`execute_batch`]'s Morton sort. `execute_batch` charges each item's
/// counters byte-identically to executing it alone on a freshly reset
/// context, so carving misses out of a batch changes no item's stats —
/// the property the cache-parity suite pins across mixed hit/miss
/// batches.
fn run_batch(map: u32, req: &BatchRequest, shared: &Shared, ctx: &mut QueryCtx) -> Reply {
    if req.len() > MAX_BATCH_ITEMS {
        return Reply::Error {
            code: ErrorCode::BadArgument,
            message: format!(
                "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item limit",
                req.len()
            ),
        };
    }
    let result = shared.catalog.with_live(map, |slot, live| {
        // The whole batch runs under one read guard: a concurrent writer
        // lands either before or after it, never in the middle.
        live.with_read(|index| {
            if let Some(max) = req.max_seg_id() {
                if max.index() >= index.len() {
                    return Reply::Error {
                        code: ErrorCode::BadArgument,
                        message: format!(
                            "segment id {} out of range (map has {} segments)",
                            max.0,
                            index.len()
                        ),
                    };
                }
            }
            let cache = slot.reply_cache();
            let epoch = live.epoch();
            let n = req.len();
            let mut replies: Vec<Option<Reply>> = (0..n).map(|_| None).collect();
            let mut miss_keys: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
            let mut misses: Vec<usize> = Vec::with_capacity(n);
            for i in 0..n {
                if cache.on() {
                    // Items share the singleton key space: a batch item
                    // hits what a lone query cached, and vice versa.
                    let key_bytes = item_request(req, i).encode();
                    if let Some((body, stats)) = cache.probe(epoch, &key_bytes) {
                        slot.stats().add(stats);
                        shared.catalog.aggregate().add(stats);
                        let inner = Reply::decode(&body)
                            .expect("cached bodies are valid singleton replies");
                        replies[i] = Some(inner);
                        continue;
                    }
                    miss_keys[i] = Some(key_bytes);
                }
                misses.push(i);
            }
            if !misses.is_empty() {
                let sub = sub_batch(req, &misses);
                let items = execute_batch(index, &sub, ctx);
                for (item, &i) in items.into_iter().zip(&misses) {
                    slot.stats().add(item.stats);
                    shared.catalog.aggregate().add(item.stats);
                    let reply = match item.answer {
                        BatchAnswer::Segs(ids) => Reply::Segs {
                            ids,
                            stats: item.stats,
                        },
                        BatchAnswer::Nearest(id) => Reply::Nearest {
                            id,
                            stats: item.stats,
                        },
                        BatchAnswer::Polygon(walk) => Reply::Polygon {
                            walk,
                            stats: item.stats,
                        },
                    };
                    if let Some(key_bytes) = &miss_keys[i] {
                        cache.insert(epoch, key_bytes, reply.encode().into(), item.stats);
                    }
                    replies[i] = Some(reply);
                }
            }
            Reply::Batch(
                replies
                    .into_iter()
                    .map(|r| r.expect("every batch item answered"))
                    .collect(),
            )
        })
    });
    result.unwrap_or_else(|e| e.to_reply())
}

/// The singleton [`Request`] equivalent of batch item `i` — the reply
/// cache's key, shared with the singleton execution path (mirrors the
/// client's batch unrolling fallback).
fn item_request(req: &BatchRequest, i: usize) -> Request {
    match req {
        BatchRequest::Incident(v) => Request::Incident(v[i]),
        BatchRequest::Second(v) => {
            let (id, at) = v[i];
            Request::Second { id, at }
        }
        BatchRequest::Nearest(v) => Request::Nearest(v[i]),
        BatchRequest::Knn(v) => {
            let (at, k) = v[i];
            Request::Knn { at, k }
        }
        BatchRequest::Window(v) => Request::Window(v[i]),
        BatchRequest::Polygon { points, max_steps } => Request::Polygon {
            at: points[i],
            max_steps: *max_steps,
        },
    }
}

/// The sub-batch holding exactly the items at `keep` (in order) — what
/// a mixed hit/miss batch actually executes and Morton-sorts.
fn sub_batch(req: &BatchRequest, keep: &[usize]) -> BatchRequest {
    match req {
        BatchRequest::Incident(v) => BatchRequest::Incident(keep.iter().map(|&i| v[i]).collect()),
        BatchRequest::Second(v) => BatchRequest::Second(keep.iter().map(|&i| v[i]).collect()),
        BatchRequest::Nearest(v) => BatchRequest::Nearest(keep.iter().map(|&i| v[i]).collect()),
        BatchRequest::Knn(v) => BatchRequest::Knn(keep.iter().map(|&i| v[i]).collect()),
        BatchRequest::Window(v) => BatchRequest::Window(keep.iter().map(|&i| v[i]).collect()),
        BatchRequest::Polygon { points, max_steps } => BatchRequest::Polygon {
            points: keep.iter().map(|&i| points[i]).collect(),
            max_steps: *max_steps,
        },
    }
}

/// Execute one catalog admin op.
fn run_admin(req: &Request, catalog: &Catalog) -> Reply {
    match req {
        Request::OpenMap { name } => match catalog.open_by_name(name) {
            Ok((id, len)) => Reply::MapOpened { id, len },
            Err(e) => e.to_reply(),
        },
        Request::ListMaps => Reply::MapList(catalog.list()),
        Request::CloseMap { name } => match catalog.close_by_name(name) {
            Ok(was_open) => Reply::MapClosed { was_open },
            Err(e) => e.to_reply(),
        },
        Request::Stats => catalog.stats_v3(),
        _ => Reply::Error {
            code: ErrorCode::Malformed,
            message: "non-admin op routed as admin".into(),
        },
    }
}
