//! The fixed executor pool: spatial work decoded by the event loop runs
//! here, one job per worker at a time, each worker owning a warm
//! [`QueryCtx`].
//!
//! Every job carries the catalog id of the map it is routed to (v1/v2
//! frames land on map `0`). The worker resolves the slot through
//! [`crate::catalog::Catalog::with_live`], which opens cold maps lazily
//! and enforces the buffer budget after the query's read guard is gone.
//! Singleton requests reset the context per query exactly as the PR-2
//! worker pool did. Batch requests run through
//! [`lsdb_core::execute_batch`], which Morton-sorts the batch so the
//! context's page pins and segment mini-cache stay warm across
//! neighboring queries — while charging counters per item byte-identically
//! to singleton execution. Catalog admin ops (`OPEN_MAP`, `CLOSE_MAP`,
//! v3 `STATS`) also run here: opening a map may build it, which must
//! never stall the I/O thread. Completed replies are already encoded for
//! their connection's protocol version when they travel back to the
//! event loop, which only moves bytes.

use crate::catalog::Catalog;
use crate::protocol::{ErrorCode, Reply, Request, MAX_BATCH_ITEMS};
use crate::server::Shared;
use crate::sys::WakePipe;
use lsdb_core::{execute_batch, queries, BatchAnswer, BatchRequest, QueryCtx};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

/// How a finished reply rejoins its connection's outbound stream: v1
/// replies release in arrival order, v2/v3 replies release on completion
/// under their correlation id (the variant picks the reply envelope's
/// version marker).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Token {
    V1 { seq: u64 },
    V2 { corr: u32 },
    V3 { corr: u32 },
}

/// The work itself (inline service ops never reach the executor).
pub(crate) enum Work {
    Single(Request),
    Batch(BatchRequest),
    /// A catalog admin op (`OPEN_MAP`/`LIST_MAPS`/`CLOSE_MAP`, v3
    /// `STATS`) — routed here because opening a map can build it.
    Admin(Request),
}

/// One decoded request handed from the event loop to the pool.
pub(crate) struct Job {
    pub conn: u64,
    pub token: Token,
    /// Catalog id the request is routed to (0 for v1/v2 frames).
    pub map: u32,
    pub work: Work,
}

/// One encoded reply handed back from the pool to the event loop.
pub(crate) struct Completion {
    pub conn: u64,
    pub token: Token,
    pub payload: Vec<u8>,
}

/// Worker body: dequeue, execute, encode, post the completion, wake the
/// poller. Exits when the job channel disconnects (the event loop drops
/// its sender on drain).
pub(crate) fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    shared: &Shared,
    done: &Sender<Completion>,
    wake: &WakePipe,
) {
    let mut ctx = QueryCtx::new();
    loop {
        // Hold the lock only for the dequeue, never while executing.
        let job = {
            let rx = rx.lock().unwrap();
            rx.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => {
                let reply = match &job.work {
                    Work::Single(req) => run_single(job.map, req, shared, &mut ctx),
                    Work::Batch(req) => run_batch(job.map, req, shared, &mut ctx),
                    Work::Admin(req) => run_admin(req, shared.catalog),
                };
                let payload = match job.token {
                    Token::V1 { .. } => reply.encode(),
                    Token::V2 { corr } => reply.encode_v2(corr),
                    Token::V3 { corr } => reply.encode_v3(corr),
                };
                if done
                    .send(Completion {
                        conn: job.conn,
                        token: job.token,
                        payload,
                    })
                    .is_err()
                {
                    return; // event loop is gone
                }
                wake.wake();
            }
            // Timeouts just re-poll: the event loop owns the only sender
            // and drops it when it exits, which lands here as
            // `Disconnected` — the one (and race-free) exit signal.
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// A mutation the live index refused (WAL append/commit failure). The op
/// was not applied and nothing was acknowledged.
fn wal_failed(what: &str, e: &std::io::Error) -> Reply {
    Reply::Error {
        code: ErrorCode::Internal,
        message: format!("{what} not applied: {e}"),
    }
}

/// Execute one spatial query or mutation against map `map`; query
/// counters fold into the map's slot *and* the catalog aggregate,
/// exactly as the PR-2 blocking server folded its single map. Mutations
/// route through the [`lsdb_core::LiveIndex`] write path (durable
/// commit, then apply), pin the slot open (auto-close would lose the
/// mutation), and are *not* counted as spatial queries — the paper's
/// aggregates stay comparable under mixed workloads.
fn run_single(map: u32, req: &Request, shared: &Shared, ctx: &mut QueryCtx) -> Reply {
    let result = shared.catalog.with_live(map, |slot, live| {
        match *req {
            Request::Insert(seg) => {
                return match live.insert(seg) {
                    Ok((id, lsn)) => {
                        slot.mark_mutated();
                        Reply::Inserted { id, lsn: lsn.0 }
                    }
                    Err(e) => wal_failed("insert", &e),
                }
            }
            Request::Delete { id } => {
                return match live.remove(id) {
                    Ok((removed, lsn)) => {
                        slot.mark_mutated();
                        Reply::Deleted {
                            removed,
                            lsn: lsn.0,
                        }
                    }
                    Err(e) => wal_failed("delete", &e),
                }
            }
            Request::Flush => {
                return match live.flush() {
                    Ok(lsn) => Reply::Flushed { lsn: lsn.0 },
                    Err(e) => wal_failed("flush", &e),
                }
            }
            _ => {}
        }
        live.with_read(|index| {
            ctx.reset();
            let reply = match *req {
                Request::Incident(p) => Reply::Segs {
                    ids: index.find_incident(p, ctx),
                    stats: ctx.stats(),
                },
                Request::Second { id, at } => {
                    if id.index() >= index.len() {
                        return Reply::Error {
                            code: ErrorCode::BadArgument,
                            message: format!(
                                "segment id {} out of range (map has {} segments)",
                                id.0,
                                index.len()
                            ),
                        };
                    }
                    Reply::Segs {
                        ids: queries::second_endpoint(index, id, at, ctx),
                        stats: ctx.stats(),
                    }
                }
                Request::Nearest(p) => Reply::Nearest {
                    id: index.nearest(p, ctx),
                    stats: ctx.stats(),
                },
                Request::Knn { at, k } => Reply::Segs {
                    ids: index.nearest_k(at, k as usize, ctx),
                    stats: ctx.stats(),
                },
                Request::Window(w) => Reply::Segs {
                    ids: index.window(w, ctx),
                    stats: ctx.stats(),
                },
                Request::Polygon { at, max_steps } => {
                    let walk = queries::enclosing_polygon(index, at, max_steps as usize, ctx);
                    Reply::Polygon {
                        walk: walk.map(|w| (w.boundary, w.closed)),
                        stats: ctx.stats(),
                    }
                }
                // Service and admin ops are answered elsewhere and never
                // enqueued as Single; mutations returned above.
                _ => {
                    return Reply::Error {
                        code: ErrorCode::Malformed,
                        message: "service op routed to executor".into(),
                    }
                }
            };
            slot.stats().add(ctx.stats());
            shared.catalog.aggregate().add(ctx.stats());
            reply
        })
    });
    result.unwrap_or_else(|e| e.to_reply())
}

/// Execute one batch against map `map`: validate, run Morton-sorted,
/// fold each item's counters into the slot and the aggregate (so
/// `STATS` sees one entry per query, not per batch), and nest the
/// per-item replies in submission order.
fn run_batch(map: u32, req: &BatchRequest, shared: &Shared, ctx: &mut QueryCtx) -> Reply {
    if req.len() > MAX_BATCH_ITEMS {
        return Reply::Error {
            code: ErrorCode::BadArgument,
            message: format!(
                "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item limit",
                req.len()
            ),
        };
    }
    let result = shared.catalog.with_live(map, |slot, live| {
        // The whole batch runs under one read guard: a concurrent writer
        // lands either before or after it, never in the middle.
        live.with_read(|index| {
            if let Some(max) = req.max_seg_id() {
                if max.index() >= index.len() {
                    return Reply::Error {
                        code: ErrorCode::BadArgument,
                        message: format!(
                            "segment id {} out of range (map has {} segments)",
                            max.0,
                            index.len()
                        ),
                    };
                }
            }
            let items = execute_batch(index, req, ctx);
            let mut replies = Vec::with_capacity(items.len());
            for item in items {
                slot.stats().add(item.stats);
                shared.catalog.aggregate().add(item.stats);
                replies.push(match item.answer {
                    BatchAnswer::Segs(ids) => Reply::Segs {
                        ids,
                        stats: item.stats,
                    },
                    BatchAnswer::Nearest(id) => Reply::Nearest {
                        id,
                        stats: item.stats,
                    },
                    BatchAnswer::Polygon(walk) => Reply::Polygon {
                        walk,
                        stats: item.stats,
                    },
                });
            }
            Reply::Batch(replies)
        })
    });
    result.unwrap_or_else(|e| e.to_reply())
}

/// Execute one catalog admin op.
fn run_admin(req: &Request, catalog: &Catalog) -> Reply {
    match req {
        Request::OpenMap { name } => match catalog.open_by_name(name) {
            Ok((id, len)) => Reply::MapOpened { id, len },
            Err(e) => e.to_reply(),
        },
        Request::ListMaps => Reply::MapList(catalog.list()),
        Request::CloseMap { name } => match catalog.close_by_name(name) {
            Ok(was_open) => Reply::MapClosed { was_open },
            Err(e) => e.to_reply(),
        },
        Request::Stats => catalog.stats_v3(),
        _ => Reply::Error {
            code: ErrorCode::Malformed,
            message: "non-admin op routed as admin".into(),
        },
    }
}
