//! The readiness-driven I/O loop: one thread multiplexes the listener,
//! the worker wake pipe, and every client connection through `poll(2)`.
//!
//! The loop never executes a spatial query itself. It accepts, reads,
//! peels frames, answers service ops inline, and forwards spatial work
//! to the executor pool over a channel; completed replies come back over
//! a second channel (the workers nudge the self-pipe so a blocked `poll`
//! returns immediately). Because frame decode and byte shuffling are
//! cheap next to query execution, one I/O thread keeps thousands of
//! pipelined connections busy against a handful of executor workers.
//!
//! # Drain protocol
//!
//! `SHUTDOWN` (wire) or [`crate::ShutdownHandle`] flips the shared flag.
//! The loop then drops the listener (new connects are refused by the
//! OS), closes idle connections outright, answers any *further* frames
//! with `ShuttingDown`, and exits once every connection has flushed its
//! owed replies and closed. Dropping the job sender on exit is what
//! terminates the executor workers.

use crate::conn::Conn;
use crate::executor::{Completion, Job, Token, Work};
use crate::protocol::{decode_request, ErrorCode, Reply, Request, PROTOCOL_VERSION};
use crate::server::Shared;
use crate::sys::{poll_fds, PollFd, WakePipe, POLLIN, POLLOUT};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

/// Cadence of the `--verbose` one-line serving summary.
const VERBOSE_PERIOD: Duration = Duration::from_secs(2);

pub(crate) fn run(
    listener: TcpListener,
    shared: &Shared,
    job_tx: Sender<Job>,
    done_rx: Receiver<Completion>,
    wake: &WakePipe,
    connections: &AtomicU64,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut lp = Loop {
        listener: Some(listener),
        conns: HashMap::new(),
        next_id: 0,
        shared,
        job_tx,
        draining: false,
    };
    // Bound the poll so the loop notices an out-of-band ShutdownHandle
    // flip even with no I/O traffic; read_timeout doubles as that
    // cadence exactly as it did for the blocking server's workers.
    let poll_ms = shared.config.read_timeout.as_millis().clamp(10, 1_000) as i32;
    let mut last_summary = Instant::now();

    loop {
        // Periodic serving telemetry, off unless `--verbose`: one stderr
        // line with budget residency, evictions, and cache activity.
        if shared.config.verbose && last_summary.elapsed() >= VERBOSE_PERIOD {
            last_summary = Instant::now();
            eprintln!(
                "[serve] conns {} · {}",
                lp.conns.len(),
                shared.catalog.activity_line()
            );
        }
        // Route completed work before sleeping: replies queued here also
        // register write interest for this round's poll.
        for done in done_rx.try_iter() {
            lp.complete(done);
        }
        if shared.shutdown.load(Ordering::SeqCst) && !lp.draining {
            lp.begin_drain();
        }
        if lp.draining && lp.conns.is_empty() {
            return Ok(());
        }

        // fds[0] = wake pipe, fds[1] = listener (while accepting), then
        // one slot per connection (ids carried alongside).
        let mut fds = Vec::with_capacity(2 + lp.conns.len());
        fds.push(PollFd::new(wake.poll_fd(), POLLIN));
        if let Some(l) = &lp.listener {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
        }
        let conn_base = fds.len();
        let mut ids = Vec::with_capacity(lp.conns.len());
        for (&id, conn) in &lp.conns {
            let mut events = 0i16;
            if !conn.read_closed {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            ids.push(id);
            fds.push(PollFd::new(conn.raw_fd(), events));
        }

        poll_fds(&mut fds, poll_ms)?;

        if fds[0].readable() {
            wake.drain();
        }
        if lp.listener.is_some() && fds[conn_base - 1].readable() {
            lp.accept_ready(connections);
        }
        for (slot, &id) in ids.iter().enumerate() {
            let pfd = fds[conn_base + slot];
            if pfd.revents == 0 {
                continue;
            }
            lp.service(id, pfd.readable(), pfd.writable());
        }
        lp.reap_stalled();
    }
}

struct Loop<'a> {
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    shared: &'a Shared<'a>,
    job_tx: Sender<Job>,
    draining: bool,
}

impl Conn {
    fn raw_fd(&self) -> i32 {
        self.stream.as_raw_fd()
    }
}

impl Loop<'_> {
    fn begin_drain(&mut self) {
        self.draining = true;
        self.listener = None; // close: further connects are refused
        self.conns.retain(|_, c| !c.is_idle());
    }

    fn accept_ready(&mut self, connections: &AtomicU64) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    connections.fetch_add(1, Ordering::Relaxed);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_id;
                    self.next_id += 1;
                    self.conns.insert(id, Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Listener broke: stop accepting, keep serving.
                    self.listener = None;
                    return;
                }
            }
        }
    }

    /// Handle one connection's readiness. Any transport error drops the
    /// connection (and orphans its in-flight completions, which
    /// [`Loop::complete`] discards).
    fn service(&mut self, id: u64, readable: bool, writable: bool) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if readable && !conn.read_closed {
            match conn.fill() {
                Ok(eof) => {
                    if eof {
                        conn.read_closed = true;
                    }
                }
                Err(_) => {
                    self.conns.remove(&id);
                    return;
                }
            }
            if self.parse_frames(id).is_err() {
                self.conns.remove(&id);
                return;
            }
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if (writable || conn.wants_write()) && conn.flush().is_err() {
            self.conns.remove(&id);
            return;
        }
        let conn = &self.conns[&id];
        let done_writing = !conn.wants_write();
        let close = (conn.close_after_flush && done_writing && conn.inflight == 0)
            || (conn.read_closed && conn.fully_flushed());
        if close {
            self.conns.remove(&id);
        }
    }

    /// Peel and dispatch every complete frame. `Err(())` means the
    /// connection is already gone.
    fn parse_frames(&mut self, id: u64) -> Result<(), ()> {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return Err(());
            };
            if conn.close_after_flush {
                // Nothing past a fatal frame (or an acknowledged BYE) is
                // served; leftover buffered bytes are discarded.
                return Ok(());
            }
            match conn.rbuf.next_frame(self.shared.config.max_request_frame) {
                Ok(Some(payload)) => self.dispatch(id, &payload),
                Ok(None) => return Ok(()),
                Err(n) => {
                    // Unrecoverable framing: answer, stop reading, hang
                    // up once the error (and any owed replies already
                    // queued ahead of it) has flushed.
                    let seq = conn.assign_v1_seq();
                    let reply = Reply::Error {
                        code: ErrorCode::Oversized,
                        message: format!(
                            "frame of {n} bytes exceeds the {}-byte request limit",
                            self.shared.config.max_request_frame
                        ),
                    };
                    conn.queue_v1(seq, reply.encode());
                    conn.read_closed = true;
                    conn.close_after_flush = true;
                    // Best-effort discard of whatever the peer already
                    // sent: closing with unread bytes would raise a TCP
                    // reset that destroys the error frame in flight.
                    let mut scratch = [0u8; 4096];
                    let mut budget = 1 << 20;
                    while budget > 0 {
                        match io::Read::read(&mut conn.stream, &mut scratch) {
                            Ok(n) if n > 0 => budget -= n.min(budget),
                            _ => break,
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Decode one frame and either answer it inline (service ops,
    /// errors, drain refusals) or enqueue it for the executor.
    fn dispatch(&mut self, id: u64, payload: &[u8]) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let frame = match decode_request(payload) {
            Ok(frame) => frame,
            Err(fail) => {
                let reply = Reply::Error {
                    code: fail.error.code(),
                    message: fail.error.to_string(),
                };
                // A recovered corr means an enveloped frame; v2 and v3
                // reply envelopes decode interchangeably client-side, so
                // the v2 envelope is the safe answer for both.
                let version = if fail.corr.is_some() { 2 } else { 1 };
                queue_reply(conn, fail.corr, version, reply);
                return;
            }
        };
        if self.draining {
            queue_reply(
                conn,
                frame.corr,
                frame.version,
                Reply::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".into(),
                },
            );
            conn.close_after_flush = true;
            return;
        }
        match frame.request {
            Request::Ping => queue_reply(conn, frame.corr, frame.version, Reply::Pong),
            Request::Hello { version } => {
                let version = version.clamp(1, PROTOCOL_VERSION);
                queue_reply(conn, frame.corr, frame.version, Reply::Hello { version });
            }
            // v1/v2 STATS keep their aggregate shape and stay inline
            // (two atomic loads); v3 STATS walks the whole catalog and
            // runs on the executor like the other admin ops.
            Request::Stats if frame.version < 3 => {
                let aggregate = self.shared.catalog.aggregate();
                let reply = Reply::Stats {
                    queries: aggregate.queries(),
                    totals: aggregate.snapshot(),
                };
                queue_reply(conn, frame.corr, frame.version, reply);
            }
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                queue_reply(conn, frame.corr, frame.version, Reply::Bye);
                conn.close_after_flush = true;
                // The next loop iteration observes the flag and drains.
            }
            req => {
                let token = match (frame.version, frame.corr) {
                    (3, Some(corr)) => Token::V3 { corr },
                    (_, Some(corr)) => Token::V2 { corr },
                    _ => Token::V1 {
                        seq: conn.assign_v1_seq(),
                    },
                };
                let work = match req {
                    Request::Batch(b) => Work::Batch(b),
                    Request::OpenMap { .. }
                    | Request::ListMaps
                    | Request::CloseMap { .. }
                    | Request::Stats => Work::Admin(req),
                    other => Work::Single(other),
                };
                conn.inflight += 1;
                if self
                    .job_tx
                    .send(Job {
                        conn: id,
                        token,
                        map: frame.map,
                        work,
                    })
                    .is_err()
                {
                    // Executor gone (only during teardown): refuse.
                    conn.inflight -= 1;
                    let reply = Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".into(),
                    };
                    queue_reply(conn, frame.corr, frame.version, reply);
                }
            }
        }
    }

    /// Route one executor completion back onto its connection (dropped
    /// silently if the connection died while the query ran).
    fn complete(&mut self, done: Completion) {
        let Some(conn) = self.conns.get_mut(&done.conn) else {
            return;
        };
        conn.inflight -= 1;
        match done.token {
            Token::V1 { seq } => conn.queue_v1(seq, done.payload),
            Token::V2 { .. } | Token::V3 { .. } => conn.queue_v2(done.payload),
        }
    }

    /// Drop connections whose peer has not accepted a byte of a pending
    /// reply for longer than `write_timeout`.
    fn reap_stalled(&mut self) {
        let timeout = self.shared.config.write_timeout;
        self.conns
            .retain(|_, c| !c.wants_write() || c.last_write_progress.elapsed() < timeout);
    }
}

/// Queue `reply` on `conn` in the envelope matching the request that
/// provoked it: enveloped frames echo their correlation id under their
/// own version marker, v1 frames join the arrival-order release queue.
fn queue_reply(conn: &mut Conn, corr: Option<u32>, version: u8, reply: Reply) {
    match corr {
        Some(corr) if version >= 3 => conn.queue_v2(reply.encode_v3(corr)),
        Some(corr) => conn.queue_v2(reply.encode_v2(corr)),
        None => {
            let seq = conn.assign_v1_seq();
            conn.queue_v1(seq, reply.encode());
        }
    }
}
