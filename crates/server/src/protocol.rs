//! The `lsdb` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or reply — is one *frame*:
//!
//! ```text
//! +-------------+---------------------+
//! | len: u32 LE | payload (len bytes) |
//! +-------------+---------------------+
//! ```
//!
//! `len` counts only the payload and must be in `1..=max`, where the
//! maximum is direction-specific ([`MAX_REQUEST_FRAME_V2`] for requests,
//! [`MAX_REPLY_FRAME`] for replies). All integers are little-endian,
//! coordinates are `i32` (the geometry's native type), counters are `u64`.
//!
//! ## Payload layouts: v1, v2 and v3
//!
//! Three payload layouts coexist, distinguished by the first payload byte:
//!
//! ```text
//! | version | first byte | request payload layout                                |
//! |---------|------------|-------------------------------------------------------|
//! | v1      | opcode     | opcode: u8 | body                                     |
//! | v2      | 0xB2       | 0xB2 | corr: u32 LE | opcode: u8 | body               |
//! | v3      | 0xB3       | 0xB3 | corr: u32 LE | map: u32 LE | opcode: u8 | body |
//! ```
//!
//! Any first byte in `0xB0..=0xBF` is a *version marker* (low nibble =
//! protocol version); no v1 opcode falls in that range, so the
//! layouts never collide. A marker with an unsupported version draws a
//! structured [`ErrorCode::UnsupportedVersion`] error frame, not a
//! hangup. The v2/v3 correlation id is echoed verbatim in the reply
//! envelope, which is what allows **pipelining**: a client may send many
//! enveloped frames before reading replies, and replies may complete out
//! of order. Replies to v1 frames carry no envelope and are delivered in
//! request order. Clients negotiate with [`Request::Hello`] (legal in
//! any layout): the server answers [`Reply::Hello`] with the version
//! it will speak, and a pre-v2 server answers `UnknownOp` — the cue to
//! stay on v1.
//!
//! The opcode + body layer is identical in every version. v2 adds two
//! ops: `HELLO` and `BATCH` ([`Request::Batch`] carries a homogeneous
//! query vector, answered by [`Reply::Batch`] with one nested reply per
//! item in submission order); both also decode in v1 framing for
//! compatibility tooling.
//!
//! ## v3: multi-map addressing
//!
//! v3 serves a whole *catalog* of maps from one process. Every v3
//! request envelope carries a `map: u32` — the catalog id the request is
//! routed to. v1 and v2 frames carry no map field and are routed to map
//! `0`, the catalog's default map, so old clients keep working
//! unchanged. A request naming an id the catalog does not have draws
//! [`ErrorCode::UnknownMap`]. Reply envelopes are unchanged from v2
//! (marker + correlation id): the correlation id already identifies the
//! request, so replies need no map field.
//!
//! Three catalog ops ride along: `OPEN_MAP` resolves a map *name* to its
//! id (building or reopening its store if cold; answered by
//! [`Reply::MapOpened`]), `LIST_MAPS` enumerates the catalog
//! ([`Reply::MapList`]), and `CLOSE_MAP` drops a map's in-memory store
//! ([`Reply::MapClosed`]; the map stays in the catalog and reopens
//! lazily on its next query). On a v3 connection `STATS` is answered by
//! [`Reply::StatsV3`]: per-map counters plus the aggregate and the
//! process-wide buffer-budget accounting.
//!
//! Requests cover the paper's query set — incident (query 1), second
//! endpoint (query 2), nearest (query 3), k-nearest (its ranked extension),
//! enclosing polygon (query 4), window (query 5) — plus three service ops:
//! `PING`, `STATS` (the paper's three counters aggregated server-wide) and
//! `SHUTDOWN`. Every query reply carries a per-query [`QueryStats`] block,
//! so a remote caller sees exactly the metrics an in-process
//! [`lsdb_core::QueryCtx`] would have reported.
//!
//! Three mutation ops round out the protocol: `INSERT` (a segment,
//! answered with its assigned id and WAL commit LSN), `DELETE` (an id,
//! answered with whether it was indexed) and `FLUSH` (checkpoint the op
//! log). Mutations are acknowledged only after the op is durable; see
//! [`lsdb_core::LiveIndex`].
//!
//! Decoding never panics: malformed bytes produce a [`ProtoError`], which
//! the server answers with a structured [`Reply::Error`] frame instead of
//! dropping the connection.

use lsdb_core::{BatchRequest, DiskStats, QueryStats, SegId};
use lsdb_geom::{Point, Rect, Segment};
use std::io::{self, Read, Write};

/// Largest *singleton* request payload (v1 or v2 envelope included).
/// Singleton requests are tiny (the biggest is a v2 `WINDOW`: marker +
/// correlation id + opcode + four `i32`s); anything bigger is garbage.
pub const MAX_REQUEST_FRAME: u32 = 64;

/// Largest request payload a v2 server will read — sized for `BATCH`
/// frames carrying tens of thousands of queries. (The server reads all
/// requests under this cap; [`MAX_REQUEST_FRAME`] documents the singleton
/// bound and caps what v1-only tooling need buffer.)
pub const MAX_REQUEST_FRAME_V2: u32 = 4 * 1024 * 1024;

/// Most queries one `BATCH` request may carry; bigger batches draw
/// [`ErrorCode::BadArgument`]. Keeps the worst-case reply under
/// [`MAX_REPLY_FRAME`].
pub const MAX_BATCH_ITEMS: usize = 65_536;

/// The protocol version this build speaks natively.
pub const PROTOCOL_VERSION: u8 = 3;

/// The v2 version marker: first payload byte of every v2 frame.
pub const V2_MARKER: u8 = 0xB2;

/// The v3 version marker: first payload byte of every v3 frame.
pub const V3_MARKER: u8 = 0xB0 | PROTOCOL_VERSION;

/// Whether a first payload byte is a version marker (`0xB0..=0xBF`, low
/// nibble = version). No v1 opcode falls in this range.
pub const fn is_version_marker(b: u8) -> bool {
    b & 0xF0 == 0xB0
}

/// Largest reply payload a client will read. Bounds a window query over an
/// entire county (hundreds of thousands of `u32` segment ids) with room to
/// spare.
pub const MAX_REPLY_FRAME: u32 = 16 * 1024 * 1024;

/// Request opcodes (first payload byte).
mod op {
    pub const PING: u8 = 0x01;
    pub const INCIDENT: u8 = 0x02;
    pub const SECOND: u8 = 0x03;
    pub const NEAREST: u8 = 0x04;
    pub const KNN: u8 = 0x05;
    pub const WINDOW: u8 = 0x06;
    pub const POLYGON: u8 = 0x07;
    pub const STATS: u8 = 0x08;
    pub const SHUTDOWN: u8 = 0x09;
    pub const HELLO: u8 = 0x0A;
    pub const BATCH: u8 = 0x0B;
    pub const INSERT: u8 = 0x0C;
    pub const DELETE: u8 = 0x0D;
    pub const FLUSH: u8 = 0x0E;
    pub const OPEN_MAP: u8 = 0x0F;
    pub const LIST_MAPS: u8 = 0x10;
    pub const CLOSE_MAP: u8 = 0x11;
}

/// Batch kind bytes (second byte of a `BATCH` request).
mod bk {
    pub const INCIDENT: u8 = 1;
    pub const SECOND: u8 = 2;
    pub const NEAREST: u8 = 3;
    pub const KNN: u8 = 4;
    pub const WINDOW: u8 = 5;
    pub const POLYGON: u8 = 6;
}

/// Reply opcodes (first payload byte).
mod rop {
    pub const PONG: u8 = 0x80;
    pub const SEGS: u8 = 0x81;
    pub const NEAREST: u8 = 0x82;
    pub const POLYGON: u8 = 0x83;
    pub const STATS: u8 = 0x84;
    pub const BYE: u8 = 0x85;
    pub const HELLO: u8 = 0x86;
    pub const BATCH: u8 = 0x87;
    pub const INSERTED: u8 = 0x88;
    pub const DELETED: u8 = 0x89;
    pub const FLUSHED: u8 = 0x8A;
    pub const MAP_OPENED: u8 = 0x8B;
    pub const MAP_LIST: u8 = 0x8C;
    pub const MAP_CLOSED: u8 = 0x8D;
    pub const STATS_V3: u8 = 0x8E;
    pub const ERROR: u8 = 0xEE;
}

/// One client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Version negotiation: the highest protocol version the client
    /// speaks. Answered with [`Reply::Hello`].
    Hello { version: u8 },
    /// A homogeneous vector of spatial queries, executed Morton-sorted
    /// against the structure and answered by [`Reply::Batch`] in
    /// submission order.
    Batch(BatchRequest),
    /// Liveness probe; answered with [`Reply::Pong`].
    Ping,
    /// Query 1: all segments incident at the point.
    Incident(Point),
    /// Query 2: all segments at the *other* endpoint of segment `id`,
    /// given that `at` is one of its endpoints.
    Second { id: SegId, at: Point },
    /// Query 3: the nearest segment.
    Nearest(Point),
    /// Ranked query 3: the `k` nearest segments, closest first.
    Knn { at: Point, k: u32 },
    /// Query 5: all segments intersecting the window.
    Window(Rect),
    /// Query 4: the minimal enclosing polygon, traversed for at most
    /// `max_steps` boundary edges (the cap the in-process drivers use).
    Polygon { at: Point, max_steps: u32 },
    /// Server-wide totals of the paper's counters.
    Stats,
    /// Graceful shutdown: drain in-flight requests, refuse new
    /// connections, exit.
    Shutdown,
    /// Durably insert a segment into the live index; answered with
    /// [`Reply::Inserted`] once the op has committed to the write-ahead
    /// log *and* been applied.
    Insert(Segment),
    /// Durably delete the segment with this id; answered with
    /// [`Reply::Deleted`].
    Delete { id: SegId },
    /// Checkpoint the op log: fold the WAL into its base store and
    /// truncate it. Answered with [`Reply::Flushed`].
    Flush,
    /// Resolve a catalog map name to its id, opening (building or
    /// recovering) its store if cold. Answered with [`Reply::MapOpened`],
    /// or [`ErrorCode::UnknownMap`] if the catalog has no such name.
    OpenMap { name: String },
    /// Enumerate the catalog; answered with [`Reply::MapList`].
    ListMaps,
    /// Drop a map's in-memory store (it reopens lazily on its next
    /// query). Answered with [`Reply::MapClosed`]. Closing the default
    /// map or an unknown name draws an error.
    CloseMap { name: String },
}

/// One server reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Reply {
    Pong,
    /// Version negotiation answer: the protocol version the server will
    /// speak on this connection.
    Hello {
        version: u8,
    },
    /// Batched answers, one nested (non-`Batch`) reply per batch item, in
    /// the batch's submission order.
    Batch(Vec<Reply>),
    /// Segment-set answer (incident / second / knn / window). For `KNN`
    /// the ids are ordered closest-first; otherwise order is
    /// structure-defined but deterministic.
    Segs {
        ids: Vec<SegId>,
        stats: QueryStats,
    },
    /// Nearest-segment answer; `id` is `None` only for an empty index.
    Nearest {
        id: Option<SegId>,
        stats: QueryStats,
    },
    /// Enclosing-polygon answer: boundary edges in traversal order, or
    /// `None` for an empty index. `closed` is false if the walk hit the
    /// step cap.
    Polygon {
        walk: Option<(Vec<SegId>, bool)>,
        stats: QueryStats,
    },
    /// Server-wide aggregates: queries served and summed counters.
    Stats {
        queries: u64,
        totals: QueryStats,
    },
    /// Shutdown acknowledged.
    Bye,
    /// Insert applied: the id the segment received and the WAL commit
    /// LSN that made it durable.
    Inserted {
        id: SegId,
        lsn: u64,
    },
    /// Delete applied (`removed` is false if the id was valid but not
    /// currently indexed) and its WAL commit LSN.
    Deleted {
        removed: bool,
        lsn: u64,
    },
    /// Checkpoint completed; `lsn` is the last LSN the checkpoint
    /// covered.
    Flushed {
        lsn: u64,
    },
    /// A map name resolved: its catalog id (usable as the v3 envelope's
    /// map field) and its segment count.
    MapOpened {
        id: u32,
        len: u64,
    },
    /// The catalog, in id order.
    MapList(Vec<MapInfo>),
    /// Close acknowledged; `was_open` is false if the map was already
    /// cold.
    MapClosed {
        was_open: bool,
    },
    /// Multi-map statistics: the aggregate the v2 `STATS` reported, plus
    /// per-map counters and the process-wide buffer-budget accounting.
    StatsV3 {
        queries: u64,
        totals: QueryStats,
        budget: BudgetWire,
        maps: Vec<MapStatsWire>,
    },
    /// Structured error frame.
    Error {
        code: ErrorCode,
        message: String,
    },
}

/// One catalog entry in a [`Reply::MapList`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapInfo {
    /// Catalog id — what a v3 request envelope's map field names.
    pub id: u32,
    /// Whether the map's store is currently open (resident).
    pub open: bool,
    pub name: String,
}

/// Process-wide buffer-budget accounting in a [`Reply::StatsV3`]
/// (mirrors `lsdb_pager::BufferBudget`). `total == u64::MAX` means
/// unlimited.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BudgetWire {
    pub total: u64,
    pub used: u64,
    pub admissions: u64,
    pub denials: u64,
}

/// Buffer-cache counters for one map in a [`Reply::StatsV3`] (mirrors
/// `lsdb_pager::CacheStats`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheWire {
    pub resident_pages: u64,
    pub cached_pages: u64,
    pub capacity_pages: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// Reply-cache counters for one map in a [`Reply::StatsV3`] (mirrors
/// the server's `ReplyCache`). All-zero with caching disabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReplyCacheWire {
    /// Whether this map's reply cache is live right now (per-map enable
    /// bit AND a nonzero pool cap).
    pub enabled: bool,
    pub entries: u64,
    pub bytes: u64,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Stale-epoch entries reclaimed by the eviction clock.
    pub invalidations: u64,
    /// Inserts declined (oversized, victim hotter, or budget full).
    pub rejections: u64,
}

/// Per-map block of a [`Reply::StatsV3`]. Counters persist across
/// close/reopen cycles; `cache` is all-zero for a cold map.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapStatsWire {
    pub id: u32,
    pub open: bool,
    pub name: String,
    pub queries: u64,
    pub totals: QueryStats,
    pub cache: CacheWire,
    pub reply_cache: ReplyCacheWire,
}

/// Error codes carried by [`Reply::Error`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ErrorCode {
    /// Payload bytes do not decode as any request.
    Malformed = 1,
    /// First byte is not a known opcode.
    UnknownOp = 2,
    /// Frame length exceeds the direction's maximum.
    Oversized = 3,
    /// Request decoded but refers to something the server does not have
    /// (e.g. a segment id beyond the map).
    BadArgument = 4,
    /// Server is draining; no further requests are served.
    ShuttingDown = 5,
    /// The frame's version marker names a protocol version this server
    /// does not speak.
    UnsupportedVersion = 6,
    /// A server-side failure executing a valid request (e.g. the
    /// write-ahead log refused a mutation). The request had no effect.
    Internal = 7,
    /// The v3 envelope's map id (or an `OPEN_MAP`/`CLOSE_MAP` name)
    /// names no map in the catalog.
    UnknownMap = 8,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownOp,
            3 => ErrorCode::Oversized,
            4 => ErrorCode::BadArgument,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::UnsupportedVersion,
            7 => ErrorCode::Internal,
            8 => ErrorCode::UnknownMap,
            _ => return None,
        })
    }
}

/// Why a payload failed to decode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtoError {
    /// Payload ended before the fields its opcode promises.
    Truncated { expected: usize, got: usize },
    /// Payload has bytes beyond its opcode's fixed layout.
    Trailing { expected: usize, got: usize },
    /// Unknown opcode byte.
    UnknownOp(u8),
    /// Empty payload.
    Empty,
    /// A field holds an impossible value (reply decoding).
    BadField(&'static str),
    /// A version marker named a protocol version this build cannot speak.
    UnsupportedVersion(u8),
}

impl ProtoError {
    /// The wire error code a server reports for this decode failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtoError::UnknownOp(_) => ErrorCode::UnknownOp,
            ProtoError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
            _ => ErrorCode::Malformed,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { expected, got } => {
                write!(f, "payload truncated: need {expected} bytes, got {got}")
            }
            ProtoError::Trailing { expected, got } => {
                write!(f, "trailing bytes: layout is {expected} bytes, got {got}")
            }
            ProtoError::UnknownOp(b) => write!(f, "unknown opcode {b:#04x}"),
            ProtoError::Empty => write!(f, "empty payload"),
            ProtoError::BadField(what) => write!(f, "bad field: {what}"),
            ProtoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this server speaks v1 through v{PROTOCOL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- encoding

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        if self.pos + N > self.buf.len() {
            return Err(ProtoError::Truncated {
                expected: self.pos + N,
                got: self.buf.len(),
            });
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take::<1>()?[0])
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Truncated {
                expected: self.pos + n,
                got: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn point(&mut self) -> Result<Point, ProtoError> {
        Ok(Point::new(self.i32()?, self.i32()?))
    }

    /// A `u16`-length-prefixed UTF-8 string (map names).
    fn string16(&mut self) -> Result<String, ProtoError> {
        let len = u16::from_le_bytes(self.take::<2>()?) as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadField("name utf-8"))
    }

    /// Every request has a fixed layout, so decoding must consume the
    /// whole payload.
    fn finish(self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Trailing {
                expected: self.pos,
                got: self.buf.len(),
            });
        }
        Ok(())
    }
}

fn put_point(buf: &mut Vec<u8>, p: Point) {
    buf.extend_from_slice(&p.x.to_le_bytes());
    buf.extend_from_slice(&p.y.to_le_bytes());
}

fn put_string16(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.extend_from_slice(&(len as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..len]);
}

fn put_stats(buf: &mut Vec<u8>, s: QueryStats) {
    for v in [
        s.disk.reads,
        s.disk.writes,
        s.seg_comps,
        s.bbox_comps,
        s.seg_disk.reads,
        s.seg_disk.writes,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_stats(c: &mut Cursor) -> Result<QueryStats, ProtoError> {
    Ok(QueryStats {
        disk: DiskStats {
            reads: c.u64()?,
            writes: c.u64()?,
        },
        seg_comps: c.u64()?,
        bbox_comps: c.u64()?,
        seg_disk: DiskStats {
            reads: c.u64()?,
            writes: c.u64()?,
        },
    })
}

fn put_ids(buf: &mut Vec<u8>, ids: &[SegId]) {
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for id in ids {
        buf.extend_from_slice(&id.0.to_le_bytes());
    }
}

fn get_ids(c: &mut Cursor) -> Result<Vec<SegId>, ProtoError> {
    let n = c.u32()? as usize;
    let mut ids = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ids.push(SegId(c.u32()?));
    }
    Ok(ids)
}

fn put_batch(buf: &mut Vec<u8>, batch: &BatchRequest) {
    buf.push(op::BATCH);
    match batch {
        BatchRequest::Incident(points) => {
            buf.push(bk::INCIDENT);
            buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for &p in points {
                put_point(buf, p);
            }
        }
        BatchRequest::Second(items) => {
            buf.push(bk::SECOND);
            buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for &(id, at) in items {
                buf.extend_from_slice(&id.0.to_le_bytes());
                put_point(buf, at);
            }
        }
        BatchRequest::Nearest(points) => {
            buf.push(bk::NEAREST);
            buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for &p in points {
                put_point(buf, p);
            }
        }
        BatchRequest::Knn(items) => {
            buf.push(bk::KNN);
            buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for &(at, k) in items {
                put_point(buf, at);
                buf.extend_from_slice(&k.to_le_bytes());
            }
        }
        BatchRequest::Window(windows) => {
            buf.push(bk::WINDOW);
            buf.extend_from_slice(&(windows.len() as u32).to_le_bytes());
            for w in windows {
                put_point(buf, w.min);
                put_point(buf, w.max);
            }
        }
        BatchRequest::Polygon { points, max_steps } => {
            buf.push(bk::POLYGON);
            buf.extend_from_slice(&max_steps.to_le_bytes());
            buf.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for &p in points {
                put_point(buf, p);
            }
        }
    }
}

fn get_batch(c: &mut Cursor) -> Result<BatchRequest, ProtoError> {
    let kind = c.u8()?;
    let max_steps = if kind == bk::POLYGON { c.u32()? } else { 0 };
    let n = c.u32()? as usize;
    // Items are fixed-size, so a lying count fails on `take` before the
    // reserve below could matter; the cap only bounds a hostile reserve.
    let cap = n.min(1 << 16);
    Ok(match kind {
        bk::INCIDENT => {
            let mut points = Vec::with_capacity(cap);
            for _ in 0..n {
                points.push(c.point()?);
            }
            BatchRequest::Incident(points)
        }
        bk::SECOND => {
            let mut items = Vec::with_capacity(cap);
            for _ in 0..n {
                items.push((SegId(c.u32()?), c.point()?));
            }
            BatchRequest::Second(items)
        }
        bk::NEAREST => {
            let mut points = Vec::with_capacity(cap);
            for _ in 0..n {
                points.push(c.point()?);
            }
            BatchRequest::Nearest(points)
        }
        bk::KNN => {
            let mut items = Vec::with_capacity(cap);
            for _ in 0..n {
                items.push((c.point()?, c.u32()?));
            }
            BatchRequest::Knn(items)
        }
        bk::WINDOW => {
            let mut windows = Vec::with_capacity(cap);
            for _ in 0..n {
                let (a, b) = (c.point()?, c.point()?);
                windows.push(Rect::bounding(a, b));
            }
            BatchRequest::Window(windows)
        }
        bk::POLYGON => {
            let mut points = Vec::with_capacity(cap);
            for _ in 0..n {
                points.push(c.point()?);
            }
            BatchRequest::Polygon { points, max_steps }
        }
        _ => return Err(ProtoError::BadField("batch kind")),
    })
}

impl Request {
    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Ping => buf.push(op::PING),
            Request::Hello { version } => {
                buf.push(op::HELLO);
                buf.push(*version);
            }
            Request::Incident(p) => {
                buf.push(op::INCIDENT);
                put_point(buf, *p);
            }
            Request::Second { id, at } => {
                buf.push(op::SECOND);
                buf.extend_from_slice(&id.0.to_le_bytes());
                put_point(buf, *at);
            }
            Request::Nearest(p) => {
                buf.push(op::NEAREST);
                put_point(buf, *p);
            }
            Request::Knn { at, k } => {
                buf.push(op::KNN);
                put_point(buf, *at);
                buf.extend_from_slice(&k.to_le_bytes());
            }
            Request::Window(w) => {
                buf.push(op::WINDOW);
                put_point(buf, w.min);
                put_point(buf, w.max);
            }
            Request::Polygon { at, max_steps } => {
                buf.push(op::POLYGON);
                put_point(buf, *at);
                buf.extend_from_slice(&max_steps.to_le_bytes());
            }
            Request::Batch(batch) => put_batch(buf, batch),
            Request::Stats => buf.push(op::STATS),
            Request::Shutdown => buf.push(op::SHUTDOWN),
            Request::Insert(seg) => {
                buf.push(op::INSERT);
                put_point(buf, seg.a);
                put_point(buf, seg.b);
            }
            Request::Delete { id } => {
                buf.push(op::DELETE);
                buf.extend_from_slice(&id.0.to_le_bytes());
            }
            Request::Flush => buf.push(op::FLUSH),
            Request::OpenMap { name } => {
                buf.push(op::OPEN_MAP);
                put_string16(buf, name);
            }
            Request::ListMaps => buf.push(op::LIST_MAPS),
            Request::CloseMap { name } => {
                buf.push(op::CLOSE_MAP);
                put_string16(buf, name);
            }
        }
    }

    /// Serialize to a v1 frame payload (no length prefix, no envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24);
        self.encode_body(&mut buf);
        buf
    }

    /// Serialize to a v2 frame payload: version marker, correlation id,
    /// then the same opcode + body as [`Request::encode`].
    pub fn encode_v2(&self, corr: u32) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        buf.push(V2_MARKER);
        buf.extend_from_slice(&corr.to_le_bytes());
        self.encode_body(&mut buf);
        buf
    }

    /// Serialize to a v3 frame payload: version marker, correlation id,
    /// the catalog id of the map this request is routed to, then the
    /// same opcode + body as [`Request::encode`].
    pub fn encode_v3(&self, corr: u32, map: u32) -> Vec<u8> {
        let mut buf = Vec::with_capacity(36);
        buf.push(V3_MARKER);
        buf.extend_from_slice(&corr.to_le_bytes());
        buf.extend_from_slice(&map.to_le_bytes());
        self.encode_body(&mut buf);
        buf
    }

    /// Deserialize a *v1* frame payload (opcode-first). Total: never
    /// panics on any byte sequence. For version-aware decoding (v1 or
    /// v2), use [`decode_request`].
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8().map_err(|_| ProtoError::Empty)?;
        let req = match opcode {
            op::PING => Request::Ping,
            op::HELLO => Request::Hello { version: c.u8()? },
            op::INCIDENT => Request::Incident(c.point()?),
            op::SECOND => Request::Second {
                id: SegId(c.u32()?),
                at: c.point()?,
            },
            op::NEAREST => Request::Nearest(c.point()?),
            op::KNN => Request::Knn {
                at: c.point()?,
                k: c.u32()?,
            },
            op::WINDOW => {
                let (a, b) = (c.point()?, c.point()?);
                Request::Window(Rect::bounding(a, b))
            }
            op::POLYGON => Request::Polygon {
                at: c.point()?,
                max_steps: c.u32()?,
            },
            op::BATCH => Request::Batch(get_batch(&mut c)?),
            op::STATS => Request::Stats,
            op::SHUTDOWN => Request::Shutdown,
            op::INSERT => Request::Insert(Segment {
                a: c.point()?,
                b: c.point()?,
            }),
            op::DELETE => Request::Delete {
                id: SegId(c.u32()?),
            },
            op::FLUSH => Request::Flush,
            op::OPEN_MAP => Request::OpenMap {
                name: c.string16()?,
            },
            op::LIST_MAPS => Request::ListMaps,
            op::CLOSE_MAP => Request::CloseMap {
                name: c.string16()?,
            },
            other => return Err(ProtoError::UnknownOp(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A decoded request plus its envelope: which layout the frame used
/// (`corr` is `Some` for v2/v3), which map it is routed to, and the
/// envelope version — everything a server needs to route the request
/// and its reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RequestFrame {
    /// The v2/v3 correlation id, echoed in the reply envelope; `None`
    /// for a v1 frame.
    pub corr: Option<u32>,
    /// The catalog id this request is routed to. v1/v2 frames carry no
    /// map field and land on map `0`, the catalog's default.
    pub map: u32,
    /// The envelope version the frame used (1, 2 or 3) — what decides
    /// the reply envelope and the `STATS` reply shape.
    pub version: u8,
    pub request: Request,
}

/// A request decode failure plus whatever envelope could still be
/// recovered — a v2 frame with a bad body keeps its correlation id, so
/// the error reply can be matched by a pipelining client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeFailure {
    pub corr: Option<u32>,
    pub error: ProtoError,
}

/// Version-aware request decoding: dispatches on the first payload byte
/// (version marker → v2/v3 envelope, anything else → v1 compatibility
/// path). Total: never panics on any byte sequence.
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, DecodeFailure> {
    match payload.first() {
        Some(&b) if is_version_marker(b) => {
            let version = b & 0x0F;
            if version != 2 && version != PROTOCOL_VERSION {
                return Err(DecodeFailure {
                    corr: None,
                    error: ProtoError::UnsupportedVersion(version),
                });
            }
            let mut c = Cursor::new(&payload[1..]);
            let corr = c
                .u32()
                .map_err(|error| DecodeFailure { corr: None, error })?;
            let map = if version == 3 {
                c.u32().map_err(|error| DecodeFailure {
                    corr: Some(corr),
                    error,
                })?
            } else {
                0
            };
            let body = &payload[1 + c.pos..];
            match Request::decode(body) {
                Ok(request) => Ok(RequestFrame {
                    corr: Some(corr),
                    map,
                    version,
                    request,
                }),
                Err(error) => Err(DecodeFailure {
                    corr: Some(corr),
                    error,
                }),
            }
        }
        _ => match Request::decode(payload) {
            Ok(request) => Ok(RequestFrame {
                corr: None,
                map: 0,
                version: 1,
                request,
            }),
            Err(error) => Err(DecodeFailure { corr: None, error }),
        },
    }
}

/// Version-aware reply decoding (the client side of [`decode_request`]):
/// returns the correlation id for enveloped replies. v2 and v3 reply
/// envelopes are identical (marker + correlation id — replies carry no
/// map field).
pub fn decode_reply(payload: &[u8]) -> Result<(Option<u32>, Reply), ProtoError> {
    match payload.first() {
        Some(&b) if is_version_marker(b) => {
            let version = b & 0x0F;
            if version != 2 && version != PROTOCOL_VERSION {
                return Err(ProtoError::UnsupportedVersion(version));
            }
            let mut c = Cursor::new(&payload[1..]);
            let corr = c.u32()?;
            Ok((Some(corr), Reply::decode(&payload[5..])?))
        }
        _ => Ok((None, Reply::decode(payload)?)),
    }
}

impl Reply {
    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::Pong => buf.push(rop::PONG),
            Reply::Hello { version } => {
                buf.push(rop::HELLO);
                buf.push(*version);
            }
            Reply::Batch(items) => {
                buf.push(rop::BATCH);
                buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    let inner = item.encode();
                    buf.extend_from_slice(&(inner.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&inner);
                }
            }
            Reply::Segs { ids, stats } => {
                buf.push(rop::SEGS);
                put_stats(buf, *stats);
                put_ids(buf, ids);
            }
            Reply::Nearest { id, stats } => {
                buf.push(rop::NEAREST);
                put_stats(buf, *stats);
                match id {
                    Some(id) => {
                        buf.push(1);
                        buf.extend_from_slice(&id.0.to_le_bytes());
                    }
                    None => buf.push(0),
                }
            }
            Reply::Polygon { walk, stats } => {
                buf.push(rop::POLYGON);
                put_stats(buf, *stats);
                match walk {
                    Some((boundary, closed)) => {
                        buf.push(1);
                        buf.push(*closed as u8);
                        put_ids(buf, boundary);
                    }
                    None => buf.push(0),
                }
            }
            Reply::Stats { queries, totals } => {
                buf.push(rop::STATS);
                buf.extend_from_slice(&queries.to_le_bytes());
                put_stats(buf, *totals);
            }
            Reply::Bye => buf.push(rop::BYE),
            Reply::Inserted { id, lsn } => {
                buf.push(rop::INSERTED);
                buf.extend_from_slice(&id.0.to_le_bytes());
                buf.extend_from_slice(&lsn.to_le_bytes());
            }
            Reply::Deleted { removed, lsn } => {
                buf.push(rop::DELETED);
                buf.push(*removed as u8);
                buf.extend_from_slice(&lsn.to_le_bytes());
            }
            Reply::Flushed { lsn } => {
                buf.push(rop::FLUSHED);
                buf.extend_from_slice(&lsn.to_le_bytes());
            }
            Reply::MapOpened { id, len } => {
                buf.push(rop::MAP_OPENED);
                buf.extend_from_slice(&id.to_le_bytes());
                buf.extend_from_slice(&len.to_le_bytes());
            }
            Reply::MapList(maps) => {
                buf.push(rop::MAP_LIST);
                buf.extend_from_slice(&(maps.len() as u32).to_le_bytes());
                for m in maps {
                    buf.extend_from_slice(&m.id.to_le_bytes());
                    buf.push(m.open as u8);
                    put_string16(buf, &m.name);
                }
            }
            Reply::MapClosed { was_open } => {
                buf.push(rop::MAP_CLOSED);
                buf.push(*was_open as u8);
            }
            Reply::StatsV3 {
                queries,
                totals,
                budget,
                maps,
            } => {
                buf.push(rop::STATS_V3);
                buf.extend_from_slice(&queries.to_le_bytes());
                put_stats(buf, *totals);
                for v in [budget.total, budget.used, budget.admissions, budget.denials] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                buf.extend_from_slice(&(maps.len() as u32).to_le_bytes());
                for m in maps {
                    buf.extend_from_slice(&m.id.to_le_bytes());
                    buf.push(m.open as u8);
                    put_string16(buf, &m.name);
                    buf.extend_from_slice(&m.queries.to_le_bytes());
                    put_stats(buf, m.totals);
                    for v in [
                        m.cache.resident_pages,
                        m.cache.cached_pages,
                        m.cache.capacity_pages,
                        m.cache.hits,
                        m.cache.misses,
                        m.cache.evictions,
                    ] {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                    buf.push(m.reply_cache.enabled as u8);
                    for v in [
                        m.reply_cache.entries,
                        m.reply_cache.bytes,
                        m.reply_cache.hits,
                        m.reply_cache.misses,
                        m.reply_cache.insertions,
                        m.reply_cache.evictions,
                        m.reply_cache.invalidations,
                        m.reply_cache.rejections,
                    ] {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Reply::Error { code, message } => {
                buf.push(rop::ERROR);
                buf.push(*code as u8);
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                buf.extend_from_slice(&(len as u16).to_le_bytes());
                buf.extend_from_slice(&msg[..len]);
            }
        }
    }

    /// Serialize to a v1 frame payload (no length prefix, no envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_body(&mut buf);
        buf
    }

    /// Serialize to a v2 frame payload: version marker, the correlation
    /// id of the request being answered, then the v1 body.
    pub fn encode_v2(&self, corr: u32) -> Vec<u8> {
        let mut buf = Vec::with_capacity(72);
        buf.push(V2_MARKER);
        buf.extend_from_slice(&corr.to_le_bytes());
        self.encode_body(&mut buf);
        buf
    }

    /// Serialize to a v3 frame payload. The v3 reply envelope matches
    /// v2's (marker + correlation id; replies carry no map field).
    pub fn encode_v3(&self, corr: u32) -> Vec<u8> {
        let mut buf = Vec::with_capacity(72);
        buf.push(V3_MARKER);
        buf.extend_from_slice(&corr.to_le_bytes());
        self.encode_body(&mut buf);
        buf
    }

    /// Wrap an already-encoded v1 reply body in a v2 envelope: exactly
    /// the bytes [`Reply::encode_v2`] would produce for the decoded
    /// body. The reply cache serves stored bodies through this without
    /// re-encoding.
    pub fn envelope_v2(corr: u32, body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(5 + body.len());
        buf.push(V2_MARKER);
        buf.extend_from_slice(&corr.to_le_bytes());
        buf.extend_from_slice(body);
        buf
    }

    /// Wrap an already-encoded v1 reply body in a v3 envelope (see
    /// [`Reply::envelope_v2`]).
    pub fn envelope_v3(corr: u32, body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(5 + body.len());
        buf.push(V3_MARKER);
        buf.extend_from_slice(&corr.to_le_bytes());
        buf.extend_from_slice(body);
        buf
    }

    /// Deserialize a *v1* frame payload. Never panics on any byte
    /// sequence. For version-aware decoding use [`decode_reply`].
    pub fn decode(payload: &[u8]) -> Result<Reply, ProtoError> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8().map_err(|_| ProtoError::Empty)?;
        let reply = match opcode {
            rop::PONG => Reply::Pong,
            rop::SEGS => Reply::Segs {
                stats: get_stats(&mut c)?,
                ids: get_ids(&mut c)?,
            },
            rop::NEAREST => {
                let stats = get_stats(&mut c)?;
                let id = match c.u8()? {
                    0 => None,
                    1 => Some(SegId(c.u32()?)),
                    _ => return Err(ProtoError::BadField("nearest presence flag")),
                };
                Reply::Nearest { id, stats }
            }
            rop::POLYGON => {
                let stats = get_stats(&mut c)?;
                let walk = match c.u8()? {
                    0 => None,
                    1 => {
                        let closed = match c.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(ProtoError::BadField("polygon closed flag")),
                        };
                        Some((get_ids(&mut c)?, closed))
                    }
                    _ => return Err(ProtoError::BadField("polygon presence flag")),
                };
                Reply::Polygon { walk, stats }
            }
            rop::STATS => Reply::Stats {
                queries: c.u64()?,
                totals: get_stats(&mut c)?,
            },
            rop::BYE => Reply::Bye,
            rop::INSERTED => Reply::Inserted {
                id: SegId(c.u32()?),
                lsn: c.u64()?,
            },
            rop::DELETED => {
                let removed = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtoError::BadField("deleted flag")),
                };
                Reply::Deleted {
                    removed,
                    lsn: c.u64()?,
                }
            }
            rop::FLUSHED => Reply::Flushed { lsn: c.u64()? },
            rop::MAP_OPENED => Reply::MapOpened {
                id: c.u32()?,
                len: c.u64()?,
            },
            rop::MAP_LIST => {
                let n = c.u32()? as usize;
                let mut maps = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    maps.push(MapInfo {
                        id: c.u32()?,
                        open: match c.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(ProtoError::BadField("map open flag")),
                        },
                        name: c.string16()?,
                    });
                }
                Reply::MapList(maps)
            }
            rop::MAP_CLOSED => Reply::MapClosed {
                was_open: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtoError::BadField("map closed flag")),
                },
            },
            rop::STATS_V3 => {
                let queries = c.u64()?;
                let totals = get_stats(&mut c)?;
                let budget = BudgetWire {
                    total: c.u64()?,
                    used: c.u64()?,
                    admissions: c.u64()?,
                    denials: c.u64()?,
                };
                let n = c.u32()? as usize;
                let mut maps = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    maps.push(MapStatsWire {
                        id: c.u32()?,
                        open: match c.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(ProtoError::BadField("map open flag")),
                        },
                        name: c.string16()?,
                        queries: c.u64()?,
                        totals: get_stats(&mut c)?,
                        cache: CacheWire {
                            resident_pages: c.u64()?,
                            cached_pages: c.u64()?,
                            capacity_pages: c.u64()?,
                            hits: c.u64()?,
                            misses: c.u64()?,
                            evictions: c.u64()?,
                        },
                        reply_cache: ReplyCacheWire {
                            enabled: match c.u8()? {
                                0 => false,
                                1 => true,
                                _ => return Err(ProtoError::BadField("reply cache enabled flag")),
                            },
                            entries: c.u64()?,
                            bytes: c.u64()?,
                            hits: c.u64()?,
                            misses: c.u64()?,
                            insertions: c.u64()?,
                            evictions: c.u64()?,
                            invalidations: c.u64()?,
                            rejections: c.u64()?,
                        },
                    });
                }
                Reply::StatsV3 {
                    queries,
                    totals,
                    budget,
                    maps,
                }
            }
            rop::HELLO => Reply::Hello { version: c.u8()? },
            rop::BATCH => {
                let n = c.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let len = c.u32()? as usize;
                    let inner = Reply::decode(c.bytes(len)?)?;
                    if matches!(inner, Reply::Batch(_)) {
                        return Err(ProtoError::BadField("nested batch reply"));
                    }
                    items.push(inner);
                }
                Reply::Batch(items)
            }
            rop::ERROR => {
                let code = ErrorCode::from_u8(c.u8()?).ok_or(ProtoError::BadField("error code"))?;
                let len = u16::from_le_bytes(c.take::<2>()?) as usize;
                let mut msg = Vec::with_capacity(len);
                for _ in 0..len {
                    msg.push(c.u8()?);
                }
                Reply::Error {
                    code,
                    message: String::from_utf8_lossy(&msg).into_owned(),
                }
            }
            other => return Err(ProtoError::UnknownOp(other)),
        };
        c.finish()?;
        Ok(reply)
    }

    /// The per-query counter block, for replies that carry one.
    pub fn stats(&self) -> Option<QueryStats> {
        match self {
            Reply::Segs { stats, .. }
            | Reply::Nearest { stats, .. }
            | Reply::Polygon { stats, .. } => Some(*stats),
            _ => None,
        }
    }

    /// Result cardinality (segments returned / boundary steps), the
    /// quantity the workload drivers average.
    pub fn result_size(&self) -> usize {
        match self {
            Reply::Segs { ids, .. } => ids.len(),
            Reply::Nearest { id, .. } => id.is_some() as usize,
            Reply::Polygon { walk, .. } => walk.as_ref().map_or(0, |(b, _)| b.len()),
            Reply::Batch(items) => items.iter().map(Reply::result_size).sum(),
            _ => 0,
        }
    }
}

// ---------------------------------------------------------------- framing

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete payload arrived.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly (EOF before any header
    /// byte).
    Eof,
    /// The read timed out before any header byte arrived — the connection
    /// is idle, not broken. (A timeout *mid-frame* is an error instead:
    /// the stream can no longer be re-synchronized.)
    Idle,
}

/// A framing-level receive failure.
#[derive(Debug)]
pub enum FrameError {
    /// The declared payload length exceeds `max_len`. The stream cannot be
    /// resynchronized (the payload was not consumed); the connection must
    /// be closed after reporting the error.
    Oversized(u32),
    /// The underlying transport failed (including timeouts mid-frame).
    Io(io::Error),
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "oversized frame: {n} bytes"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Write one frame: length prefix then payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, distinguishing clean EOF and idle timeouts (both only
/// *before* the first header byte) from transport failures. An empty frame
/// (`len == 0`) and an overlong one are both [`FrameError::Oversized`]-class
/// protocol violations; zero length is reported as `Oversized(0)` since the
/// stream stays synchronized either way only for well-formed lengths.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<FrameEvent, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(FrameEvent::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) && got == 0 => return Ok(FrameEvent::Idle),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len == 0 || len > max_len {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(FrameEvent::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Incident(Point::new(-5, 7)),
            Request::Second {
                id: SegId(42),
                at: Point::new(0, i32::MIN),
            },
            Request::Nearest(Point::new(i32::MAX, -1)),
            Request::Knn {
                at: Point::new(3, 4),
                k: 17,
            },
            Request::Window(Rect::new(-10, -10, 10, 10)),
            Request::Polygon {
                at: Point::new(1, 2),
                max_steps: 6000,
            },
            Request::Stats,
            Request::Shutdown,
            Request::Insert(Segment {
                a: Point::new(i32::MIN, 4),
                b: Point::new(9, i32::MAX),
            }),
            Request::Delete { id: SegId(831) },
            Request::Flush,
        ];
        for r in reqs {
            let bytes = r.encode();
            assert!(bytes.len() <= MAX_REQUEST_FRAME as usize);
            assert_eq!(Request::decode(&bytes).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn reply_roundtrip() {
        let stats = QueryStats {
            disk: DiskStats {
                reads: 3,
                writes: 1,
            },
            seg_comps: 12,
            bbox_comps: 99,
            seg_disk: DiskStats {
                reads: 2,
                writes: 0,
            },
        };
        let replies = [
            Reply::Pong,
            Reply::Segs {
                ids: vec![SegId(1), SegId(9)],
                stats,
            },
            Reply::Segs { ids: vec![], stats },
            Reply::Nearest {
                id: Some(SegId(7)),
                stats,
            },
            Reply::Nearest { id: None, stats },
            Reply::Polygon {
                walk: Some((vec![SegId(3), SegId(3), SegId(5)], true)),
                stats,
            },
            Reply::Polygon {
                walk: Some((vec![], false)),
                stats,
            },
            Reply::Polygon { walk: None, stats },
            Reply::Stats {
                queries: 12345,
                totals: stats,
            },
            Reply::Bye,
            Reply::Inserted {
                id: SegId(512),
                lsn: u64::MAX,
            },
            Reply::Deleted {
                removed: true,
                lsn: 9,
            },
            Reply::Deleted {
                removed: false,
                lsn: 0,
            },
            Reply::Flushed { lsn: 77 },
            Reply::Error {
                code: ErrorCode::UnknownOp,
                message: "nope".into(),
            },
        ];
        for r in replies {
            assert_eq!(Reply::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        for r in [
            Request::Incident(Point::new(1, 2)).encode(),
            Request::Window(Rect::new(0, 0, 4, 4)).encode(),
            Request::Knn {
                at: Point::new(0, 0),
                k: 3,
            }
            .encode(),
        ] {
            for cut in 0..r.len() {
                let e = Request::decode(&r[..cut]);
                assert!(e.is_err(), "cut at {cut} must fail");
            }
        }
        assert_eq!(Request::decode(&[]), Err(ProtoError::Empty));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Nearest(Point::new(1, 1)).encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtoError::Trailing { .. })
        ));
    }

    #[test]
    fn garbage_bytes_never_panic() {
        // A tiny deterministic fuzz: xorshift bytes at every length up to
        // a window request's size.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        for len in 0..64usize {
            for _ in 0..64 {
                let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
                let _ = Request::decode(&bytes); // must not panic
                let _ = Reply::decode(&bytes); // must not panic
            }
        }
    }

    #[test]
    fn frame_io_roundtrip() {
        let payload = Request::Window(Rect::new(1, 2, 3, 4)).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        match read_frame(&mut r, MAX_REQUEST_FRAME).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, payload),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut r, MAX_REQUEST_FRAME).unwrap() {
            FrameEvent::Eof => {}
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn oversized_and_zero_length_frames_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_REQUEST_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            read_frame(&mut &wire[..], MAX_REQUEST_FRAME),
            Err(FrameError::Oversized(n)) if n == MAX_REQUEST_FRAME + 1
        ));
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &zero[..], MAX_REQUEST_FRAME),
            Err(FrameError::Oversized(0))
        ));
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Hello { version: 2 },
            Request::Incident(Point::new(-5, 7)),
            Request::Second {
                id: SegId(42),
                at: Point::new(0, i32::MIN),
            },
            Request::Nearest(Point::new(i32::MAX, -1)),
            Request::Knn {
                at: Point::new(3, 4),
                k: 17,
            },
            Request::Window(Rect::new(-10, -10, 10, 10)),
            Request::Polygon {
                at: Point::new(1, 2),
                max_steps: 6000,
            },
            Request::Stats,
            Request::Shutdown,
            Request::Batch(BatchRequest::Incident(vec![
                Point::new(1, 2),
                Point::new(3, 4),
            ])),
            Request::Batch(BatchRequest::Second(vec![(SegId(9), Point::new(5, 6))])),
            Request::Batch(BatchRequest::Nearest(vec![Point::new(7, 8)])),
            Request::Batch(BatchRequest::Knn(vec![(Point::new(1, 1), 3)])),
            Request::Batch(BatchRequest::Window(vec![
                Rect::new(0, 0, 9, 9),
                Rect::new(-4, -4, 4, 4),
            ])),
            Request::Batch(BatchRequest::Polygon {
                points: vec![Point::new(2, 3)],
                max_steps: 777,
            }),
            Request::Batch(BatchRequest::Window(vec![])),
            Request::Insert(Segment {
                a: Point::new(1, 2),
                b: Point::new(3, 4),
            }),
            Request::Delete { id: SegId(0) },
            Request::Flush,
        ]
    }

    #[test]
    fn v2_request_roundtrip_preserves_correlation_id() {
        for (i, r) in sample_requests().into_iter().enumerate() {
            let corr = (i as u32).wrapping_mul(0x9E3779B9);
            let bytes = r.encode_v2(corr);
            assert!(is_version_marker(bytes[0]));
            let frame = decode_request(&bytes).unwrap();
            assert_eq!(frame.corr, Some(corr), "{r:?}");
            assert_eq!(frame.request, r);
            // The v1 compatibility path still decodes the plain body.
            let v1 = decode_request(&r.encode()).unwrap();
            assert_eq!(v1.corr, None);
            assert_eq!(v1.request, r);
        }
    }

    #[test]
    fn v2_reply_roundtrip_preserves_correlation_id() {
        let stats = QueryStats::default();
        let replies = [
            Reply::Pong,
            Reply::Hello { version: 2 },
            Reply::Batch(vec![
                Reply::Segs {
                    ids: vec![SegId(4)],
                    stats,
                },
                Reply::Nearest {
                    id: Some(SegId(2)),
                    stats,
                },
                Reply::Polygon { walk: None, stats },
                Reply::Error {
                    code: ErrorCode::BadArgument,
                    message: "x".into(),
                },
            ]),
            Reply::Batch(vec![]),
        ];
        for (i, r) in replies.into_iter().enumerate() {
            let corr = 1000 + i as u32;
            let (got_corr, got) = decode_reply(&r.encode_v2(corr)).unwrap();
            assert_eq!(got_corr, Some(corr), "{r:?}");
            assert_eq!(got, r);
            let (none, got) = decode_reply(&r.encode()).unwrap();
            assert_eq!(none, None);
            assert_eq!(got, r);
        }
    }

    #[test]
    fn unsupported_version_marker_is_structured_not_a_panic() {
        for v in 0..=0x0F {
            if v == 2 || v == PROTOCOL_VERSION {
                continue;
            }
            let mut bytes = Request::Ping.encode_v2(7);
            bytes[0] = 0xB0 | v;
            let fail = decode_request(&bytes).unwrap_err();
            assert_eq!(fail.error, ProtoError::UnsupportedVersion(v));
            assert_eq!(fail.error.code(), ErrorCode::UnsupportedVersion);
            assert!(matches!(
                decode_reply(&bytes),
                Err(ProtoError::UnsupportedVersion(got)) if got == v
            ));
        }
    }

    #[test]
    fn v3_request_roundtrip_preserves_correlation_and_map_ids() {
        let mut reqs = sample_requests();
        reqs.push(Request::OpenMap {
            name: "c12-7".into(),
        });
        reqs.push(Request::ListMaps);
        reqs.push(Request::CloseMap {
            name: "Baltimore".into(),
        });
        for (i, r) in reqs.into_iter().enumerate() {
            let corr = (i as u32).wrapping_mul(0x9E3779B9);
            let map = (i as u32).wrapping_mul(7) % 20;
            let bytes = r.encode_v3(corr, map);
            assert_eq!(bytes[0], V3_MARKER);
            let frame = decode_request(&bytes).unwrap();
            assert_eq!(frame.corr, Some(corr), "{r:?}");
            assert_eq!(frame.map, map);
            assert_eq!(frame.version, 3);
            assert_eq!(frame.request, r);
            // The same body in a v1 frame still decodes (map defaults
            // to 0), so compatibility tooling can speak the new ops too.
            let v1 = decode_request(&r.encode()).unwrap();
            assert_eq!((v1.corr, v1.map, v1.version), (None, 0, 1));
            assert_eq!(v1.request, r);
        }
    }

    #[test]
    fn v2_frames_still_decode_and_route_to_the_default_map() {
        for r in sample_requests() {
            let frame = decode_request(&r.encode_v2(99)).unwrap();
            assert_eq!(frame.corr, Some(99));
            assert_eq!(frame.map, 0, "v2 frames land on the default map");
            assert_eq!(frame.version, 2);
            assert_eq!(frame.request, r);
        }
        // A v2 reply envelope is accepted by the v3 client decoder.
        let (corr, got) = decode_reply(&Reply::Pong.encode_v2(5)).unwrap();
        assert_eq!((corr, got), (Some(5), Reply::Pong));
    }

    #[test]
    fn map_replies_roundtrip() {
        let stats = QueryStats {
            disk: DiskStats {
                reads: 10,
                writes: 0,
            },
            seg_comps: 44,
            bbox_comps: 210,
            seg_disk: DiskStats {
                reads: 7,
                writes: 0,
            },
        };
        let replies = [
            Reply::MapOpened {
                id: 17,
                len: 50_998,
            },
            Reply::MapList(vec![
                MapInfo {
                    id: 0,
                    open: true,
                    name: "default".into(),
                },
                MapInfo {
                    id: 1,
                    open: false,
                    name: "c0-1".into(),
                },
            ]),
            Reply::MapList(vec![]),
            Reply::MapClosed { was_open: true },
            Reply::MapClosed { was_open: false },
            Reply::StatsV3 {
                queries: 1234,
                totals: stats,
                budget: BudgetWire {
                    total: 1 << 20,
                    used: 123_456,
                    admissions: 88,
                    denials: 3,
                },
                maps: vec![
                    MapStatsWire {
                        id: 0,
                        open: true,
                        name: "c0-0".into(),
                        queries: 1000,
                        totals: stats,
                        cache: CacheWire {
                            resident_pages: 64,
                            cached_pages: 32,
                            capacity_pages: 64,
                            hits: 900,
                            misses: 100,
                            evictions: 32,
                        },
                        reply_cache: ReplyCacheWire {
                            enabled: true,
                            entries: 41,
                            bytes: 17_204,
                            hits: 812,
                            misses: 188,
                            insertions: 120,
                            evictions: 79,
                            invalidations: 11,
                            rejections: 4,
                        },
                    },
                    MapStatsWire {
                        id: 1,
                        open: false,
                        name: "c0-1".into(),
                        queries: 234,
                        totals: stats,
                        cache: CacheWire::default(),
                        reply_cache: ReplyCacheWire::default(),
                    },
                ],
            },
            Reply::StatsV3 {
                queries: 0,
                totals: QueryStats::default(),
                budget: BudgetWire::default(),
                maps: vec![],
            },
            Reply::Error {
                code: ErrorCode::UnknownMap,
                message: "no such map".into(),
            },
        ];
        for r in replies {
            assert_eq!(Reply::decode(&r.encode()).unwrap(), r, "{r:?}");
            let (corr, got) = decode_reply(&r.encode_v3(0xC0FFEE)).unwrap();
            assert_eq!(corr, Some(0xC0FFEE));
            assert_eq!(got, r);
        }
    }

    #[test]
    fn truncated_v3_frames_error_not_panic() {
        let reqs = [
            Request::OpenMap {
                name: "c3-3".into(),
            },
            Request::Window(Rect::new(-10, -10, 10, 10)),
            Request::ListMaps,
        ];
        for r in reqs {
            let bytes = r.encode_v3(0xDEAD_BEEF, 12);
            for cut in 0..bytes.len() {
                assert!(
                    decode_request(&bytes[..cut]).is_err(),
                    "{r:?} cut at {cut} must fail"
                );
            }
        }
        // A wounded v3 body still recovers the correlation id.
        let mut bytes = Request::Incident(Point::new(3, 4)).encode_v3(0x5151_5151, 9);
        bytes.truncate(bytes.len() - 2);
        let fail = decode_request(&bytes).unwrap_err();
        assert_eq!(fail.corr, Some(0x5151_5151));
    }

    #[test]
    fn truncated_cache_bearing_stats_error_not_panic() {
        // A StatsV3 frame carrying nonzero reply-cache counters: every
        // proper prefix must fail cleanly (never panic, never decode),
        // in particular cuts landing inside the new cache block.
        let reply = Reply::StatsV3 {
            queries: 42,
            totals: QueryStats::default(),
            budget: BudgetWire {
                total: 1 << 24,
                used: 99,
                admissions: 7,
                denials: 1,
            },
            maps: vec![MapStatsWire {
                id: 3,
                open: true,
                name: "hot".into(),
                queries: 40,
                totals: QueryStats::default(),
                cache: CacheWire::default(),
                reply_cache: ReplyCacheWire {
                    enabled: true,
                    entries: 5,
                    bytes: 1234,
                    hits: 30,
                    misses: 10,
                    insertions: 8,
                    evictions: 3,
                    invalidations: 2,
                    rejections: 1,
                },
            }],
        };
        let bytes = reply.encode();
        for cut in 0..bytes.len() {
            assert!(
                Reply::decode(&bytes[..cut]).is_err(),
                "StatsV3 cut at {cut} must fail"
            );
        }
        assert_eq!(Reply::decode(&bytes).unwrap(), reply);
        // An out-of-range enabled flag is a BadField, not a bool.
        let flag_at = bytes.len() - 65; // enabled byte precedes 8 u64s
        assert_eq!(bytes[flag_at], 1);
        let mut bad = bytes.clone();
        bad[flag_at] = 2;
        assert!(matches!(
            Reply::decode(&bad),
            Err(ProtoError::BadField("reply cache enabled flag"))
        ));
        // Fuzz the tail of the frame: random bytes over the cache block
        // must never panic.
        let mut state = 0xD1B5_4A32_D192_ED03u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        for _ in 0..256 {
            let mut fuzzed = bytes.clone();
            for b in fuzzed.iter_mut().skip(flag_at) {
                *b = next();
            }
            let _ = Reply::decode(&fuzzed); // must not panic
        }
    }

    #[test]
    fn truncated_v2_frames_error_not_panic() {
        // Every proper prefix of every v2 encoding must fail cleanly —
        // including cuts inside the marker/correlation header.
        for r in sample_requests() {
            let bytes = r.encode_v2(0xDEAD_BEEF);
            for cut in 0..bytes.len() {
                assert!(
                    decode_request(&bytes[..cut]).is_err(),
                    "{r:?} cut at {cut} must fail"
                );
            }
        }
        // Marker-led garbage: random bytes after a valid v2 marker.
        let mut state = 0xA076_1D64_78BD_642Fu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        for len in 0..48usize {
            for _ in 0..64 {
                let mut bytes = vec![V2_MARKER];
                bytes.extend((0..len).map(|_| next()));
                let _ = decode_request(&bytes); // must not panic
                let _ = decode_reply(&bytes); // must not panic
            }
        }
    }

    #[test]
    fn bad_v2_body_still_recovers_correlation_id() {
        let mut bytes = Request::Incident(Point::new(3, 4)).encode_v2(0x1234_5678);
        bytes.truncate(bytes.len() - 2); // wound the body, keep the header
        let fail = decode_request(&bytes).unwrap_err();
        assert_eq!(
            fail.corr,
            Some(0x1234_5678),
            "error reply must be matchable"
        );
        assert!(matches!(fail.error, ProtoError::Truncated { .. }));
    }

    #[test]
    fn nested_batch_replies_are_rejected() {
        let inner = Reply::Batch(vec![Reply::Pong]);
        let mut bytes = vec![rop::BATCH];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let inner_bytes = inner.encode();
        bytes.extend_from_slice(&(inner_bytes.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&inner_bytes);
        assert_eq!(
            Reply::decode(&bytes),
            Err(ProtoError::BadField("nested batch reply"))
        );
    }

    #[test]
    fn batch_item_count_mismatch_is_rejected() {
        // Declared count beyond the actual items must error, not panic
        // or over-allocate.
        let mut bytes = Request::Batch(BatchRequest::Nearest(vec![Point::new(1, 1)])).encode();
        // Body layout: opcode, kind, count u32, items. Bump the count.
        bytes[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn mid_header_and_mid_payload_eof_are_errors() {
        let wire = [5u8, 0]; // half a header
        assert!(matches!(
            read_frame(&mut &wire[..], 64),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(&[1, 2, 3]); // 3 of 8 payload bytes
        assert!(matches!(
            read_frame(&mut &wire[..], 64),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }
}
