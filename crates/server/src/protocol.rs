//! The `lsdb` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or reply — is one *frame*:
//!
//! ```text
//! +-------------+---------------------+
//! | len: u32 LE | payload (len bytes) |
//! +-------------+---------------------+
//! ```
//!
//! `len` counts only the payload and must be in `1..=max`, where the
//! maximum is direction-specific ([`MAX_REQUEST_FRAME`] for requests,
//! [`MAX_REPLY_FRAME`] for replies). The payload starts with a one-byte
//! opcode; all integers are little-endian, coordinates are `i32` (the
//! geometry's native type), counters are `u64`.
//!
//! Requests cover the paper's query set — incident (query 1), second
//! endpoint (query 2), nearest (query 3), k-nearest (its ranked extension),
//! enclosing polygon (query 4), window (query 5) — plus three service ops:
//! `PING`, `STATS` (the paper's three counters aggregated server-wide) and
//! `SHUTDOWN`. Every query reply carries a per-query [`QueryStats`] block,
//! so a remote caller sees exactly the metrics an in-process
//! [`lsdb_core::QueryCtx`] would have reported.
//!
//! Decoding never panics: malformed bytes produce a [`ProtoError`], which
//! the server answers with a structured [`Reply::Error`] frame instead of
//! dropping the connection.

use lsdb_core::{DiskStats, QueryStats, SegId};
use lsdb_geom::{Point, Rect};
use std::io::{self, Read, Write};

/// Largest request payload the server will read. Requests are tiny (the
/// biggest is `WINDOW`: opcode + four `i32`s); anything bigger is garbage.
pub const MAX_REQUEST_FRAME: u32 = 64;

/// Largest reply payload a client will read. Bounds a window query over an
/// entire county (hundreds of thousands of `u32` segment ids) with room to
/// spare.
pub const MAX_REPLY_FRAME: u32 = 16 * 1024 * 1024;

/// Request opcodes (first payload byte).
mod op {
    pub const PING: u8 = 0x01;
    pub const INCIDENT: u8 = 0x02;
    pub const SECOND: u8 = 0x03;
    pub const NEAREST: u8 = 0x04;
    pub const KNN: u8 = 0x05;
    pub const WINDOW: u8 = 0x06;
    pub const POLYGON: u8 = 0x07;
    pub const STATS: u8 = 0x08;
    pub const SHUTDOWN: u8 = 0x09;
}

/// Reply opcodes (first payload byte).
mod rop {
    pub const PONG: u8 = 0x80;
    pub const SEGS: u8 = 0x81;
    pub const NEAREST: u8 = 0x82;
    pub const POLYGON: u8 = 0x83;
    pub const STATS: u8 = 0x84;
    pub const BYE: u8 = 0x85;
    pub const ERROR: u8 = 0xEE;
}

/// One client request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness probe; answered with [`Reply::Pong`].
    Ping,
    /// Query 1: all segments incident at the point.
    Incident(Point),
    /// Query 2: all segments at the *other* endpoint of segment `id`,
    /// given that `at` is one of its endpoints.
    Second { id: SegId, at: Point },
    /// Query 3: the nearest segment.
    Nearest(Point),
    /// Ranked query 3: the `k` nearest segments, closest first.
    Knn { at: Point, k: u32 },
    /// Query 5: all segments intersecting the window.
    Window(Rect),
    /// Query 4: the minimal enclosing polygon, traversed for at most
    /// `max_steps` boundary edges (the cap the in-process drivers use).
    Polygon { at: Point, max_steps: u32 },
    /// Server-wide totals of the paper's counters.
    Stats,
    /// Graceful shutdown: drain in-flight requests, refuse new
    /// connections, exit.
    Shutdown,
}

/// One server reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Reply {
    Pong,
    /// Segment-set answer (incident / second / knn / window). For `KNN`
    /// the ids are ordered closest-first; otherwise order is
    /// structure-defined but deterministic.
    Segs {
        ids: Vec<SegId>,
        stats: QueryStats,
    },
    /// Nearest-segment answer; `id` is `None` only for an empty index.
    Nearest {
        id: Option<SegId>,
        stats: QueryStats,
    },
    /// Enclosing-polygon answer: boundary edges in traversal order, or
    /// `None` for an empty index. `closed` is false if the walk hit the
    /// step cap.
    Polygon {
        walk: Option<(Vec<SegId>, bool)>,
        stats: QueryStats,
    },
    /// Server-wide aggregates: queries served and summed counters.
    Stats {
        queries: u64,
        totals: QueryStats,
    },
    /// Shutdown acknowledged.
    Bye,
    /// Structured error frame.
    Error {
        code: ErrorCode,
        message: String,
    },
}

/// Error codes carried by [`Reply::Error`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ErrorCode {
    /// Payload bytes do not decode as any request.
    Malformed = 1,
    /// First byte is not a known opcode.
    UnknownOp = 2,
    /// Frame length exceeds the direction's maximum.
    Oversized = 3,
    /// Request decoded but refers to something the server does not have
    /// (e.g. a segment id beyond the map).
    BadArgument = 4,
    /// Server is draining; no further requests are served.
    ShuttingDown = 5,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownOp,
            3 => ErrorCode::Oversized,
            4 => ErrorCode::BadArgument,
            5 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// Why a payload failed to decode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtoError {
    /// Payload ended before the fields its opcode promises.
    Truncated { expected: usize, got: usize },
    /// Payload has bytes beyond its opcode's fixed layout.
    Trailing { expected: usize, got: usize },
    /// Unknown opcode byte.
    UnknownOp(u8),
    /// Empty payload.
    Empty,
    /// A field holds an impossible value (reply decoding).
    BadField(&'static str),
}

impl ProtoError {
    /// The wire error code a server reports for this decode failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtoError::UnknownOp(_) => ErrorCode::UnknownOp,
            _ => ErrorCode::Malformed,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { expected, got } => {
                write!(f, "payload truncated: need {expected} bytes, got {got}")
            }
            ProtoError::Trailing { expected, got } => {
                write!(f, "trailing bytes: layout is {expected} bytes, got {got}")
            }
            ProtoError::UnknownOp(b) => write!(f, "unknown opcode {b:#04x}"),
            ProtoError::Empty => write!(f, "empty payload"),
            ProtoError::BadField(what) => write!(f, "bad field: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- encoding

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        if self.pos + N > self.buf.len() {
            return Err(ProtoError::Truncated {
                expected: self.pos + N,
                got: self.buf.len(),
            });
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn point(&mut self) -> Result<Point, ProtoError> {
        Ok(Point::new(self.i32()?, self.i32()?))
    }

    /// Every request has a fixed layout, so decoding must consume the
    /// whole payload.
    fn finish(self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Trailing {
                expected: self.pos,
                got: self.buf.len(),
            });
        }
        Ok(())
    }
}

fn put_point(buf: &mut Vec<u8>, p: Point) {
    buf.extend_from_slice(&p.x.to_le_bytes());
    buf.extend_from_slice(&p.y.to_le_bytes());
}

fn put_stats(buf: &mut Vec<u8>, s: QueryStats) {
    for v in [
        s.disk.reads,
        s.disk.writes,
        s.seg_comps,
        s.bbox_comps,
        s.seg_disk.reads,
        s.seg_disk.writes,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_stats(c: &mut Cursor) -> Result<QueryStats, ProtoError> {
    Ok(QueryStats {
        disk: DiskStats {
            reads: c.u64()?,
            writes: c.u64()?,
        },
        seg_comps: c.u64()?,
        bbox_comps: c.u64()?,
        seg_disk: DiskStats {
            reads: c.u64()?,
            writes: c.u64()?,
        },
    })
}

fn put_ids(buf: &mut Vec<u8>, ids: &[SegId]) {
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for id in ids {
        buf.extend_from_slice(&id.0.to_le_bytes());
    }
}

fn get_ids(c: &mut Cursor) -> Result<Vec<SegId>, ProtoError> {
    let n = c.u32()? as usize;
    let mut ids = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ids.push(SegId(c.u32()?));
    }
    Ok(ids)
}

impl Request {
    /// Serialize to a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24);
        match *self {
            Request::Ping => buf.push(op::PING),
            Request::Incident(p) => {
                buf.push(op::INCIDENT);
                put_point(&mut buf, p);
            }
            Request::Second { id, at } => {
                buf.push(op::SECOND);
                buf.extend_from_slice(&id.0.to_le_bytes());
                put_point(&mut buf, at);
            }
            Request::Nearest(p) => {
                buf.push(op::NEAREST);
                put_point(&mut buf, p);
            }
            Request::Knn { at, k } => {
                buf.push(op::KNN);
                put_point(&mut buf, at);
                buf.extend_from_slice(&k.to_le_bytes());
            }
            Request::Window(w) => {
                buf.push(op::WINDOW);
                put_point(&mut buf, w.min);
                put_point(&mut buf, w.max);
            }
            Request::Polygon { at, max_steps } => {
                buf.push(op::POLYGON);
                put_point(&mut buf, at);
                buf.extend_from_slice(&max_steps.to_le_bytes());
            }
            Request::Stats => buf.push(op::STATS),
            Request::Shutdown => buf.push(op::SHUTDOWN),
        }
        buf
    }

    /// Deserialize a frame payload. Total: never panics on any byte
    /// sequence.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8().map_err(|_| ProtoError::Empty)?;
        let req = match opcode {
            op::PING => Request::Ping,
            op::INCIDENT => Request::Incident(c.point()?),
            op::SECOND => Request::Second {
                id: SegId(c.u32()?),
                at: c.point()?,
            },
            op::NEAREST => Request::Nearest(c.point()?),
            op::KNN => Request::Knn {
                at: c.point()?,
                k: c.u32()?,
            },
            op::WINDOW => {
                let (a, b) = (c.point()?, c.point()?);
                Request::Window(Rect::bounding(a, b))
            }
            op::POLYGON => Request::Polygon {
                at: c.point()?,
                max_steps: c.u32()?,
            },
            op::STATS => Request::Stats,
            op::SHUTDOWN => Request::Shutdown,
            other => return Err(ProtoError::UnknownOp(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Reply {
    /// Serialize to a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            Reply::Pong => buf.push(rop::PONG),
            Reply::Segs { ids, stats } => {
                buf.push(rop::SEGS);
                put_stats(&mut buf, *stats);
                put_ids(&mut buf, ids);
            }
            Reply::Nearest { id, stats } => {
                buf.push(rop::NEAREST);
                put_stats(&mut buf, *stats);
                match id {
                    Some(id) => {
                        buf.push(1);
                        buf.extend_from_slice(&id.0.to_le_bytes());
                    }
                    None => buf.push(0),
                }
            }
            Reply::Polygon { walk, stats } => {
                buf.push(rop::POLYGON);
                put_stats(&mut buf, *stats);
                match walk {
                    Some((boundary, closed)) => {
                        buf.push(1);
                        buf.push(*closed as u8);
                        put_ids(&mut buf, boundary);
                    }
                    None => buf.push(0),
                }
            }
            Reply::Stats { queries, totals } => {
                buf.push(rop::STATS);
                buf.extend_from_slice(&queries.to_le_bytes());
                put_stats(&mut buf, *totals);
            }
            Reply::Bye => buf.push(rop::BYE),
            Reply::Error { code, message } => {
                buf.push(rop::ERROR);
                buf.push(*code as u8);
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                buf.extend_from_slice(&(len as u16).to_le_bytes());
                buf.extend_from_slice(&msg[..len]);
            }
        }
        buf
    }

    /// Deserialize a frame payload. Never panics on any byte sequence.
    pub fn decode(payload: &[u8]) -> Result<Reply, ProtoError> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8().map_err(|_| ProtoError::Empty)?;
        let reply = match opcode {
            rop::PONG => Reply::Pong,
            rop::SEGS => Reply::Segs {
                stats: get_stats(&mut c)?,
                ids: get_ids(&mut c)?,
            },
            rop::NEAREST => {
                let stats = get_stats(&mut c)?;
                let id = match c.u8()? {
                    0 => None,
                    1 => Some(SegId(c.u32()?)),
                    _ => return Err(ProtoError::BadField("nearest presence flag")),
                };
                Reply::Nearest { id, stats }
            }
            rop::POLYGON => {
                let stats = get_stats(&mut c)?;
                let walk = match c.u8()? {
                    0 => None,
                    1 => {
                        let closed = match c.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(ProtoError::BadField("polygon closed flag")),
                        };
                        Some((get_ids(&mut c)?, closed))
                    }
                    _ => return Err(ProtoError::BadField("polygon presence flag")),
                };
                Reply::Polygon { walk, stats }
            }
            rop::STATS => Reply::Stats {
                queries: c.u64()?,
                totals: get_stats(&mut c)?,
            },
            rop::BYE => Reply::Bye,
            rop::ERROR => {
                let code = ErrorCode::from_u8(c.u8()?).ok_or(ProtoError::BadField("error code"))?;
                let len = u16::from_le_bytes(c.take::<2>()?) as usize;
                let mut msg = Vec::with_capacity(len);
                for _ in 0..len {
                    msg.push(c.u8()?);
                }
                Reply::Error {
                    code,
                    message: String::from_utf8_lossy(&msg).into_owned(),
                }
            }
            other => return Err(ProtoError::UnknownOp(other)),
        };
        c.finish()?;
        Ok(reply)
    }

    /// The per-query counter block, for replies that carry one.
    pub fn stats(&self) -> Option<QueryStats> {
        match self {
            Reply::Segs { stats, .. }
            | Reply::Nearest { stats, .. }
            | Reply::Polygon { stats, .. } => Some(*stats),
            _ => None,
        }
    }

    /// Result cardinality (segments returned / boundary steps), the
    /// quantity the workload drivers average.
    pub fn result_size(&self) -> usize {
        match self {
            Reply::Segs { ids, .. } => ids.len(),
            Reply::Nearest { id, .. } => id.is_some() as usize,
            Reply::Polygon { walk, .. } => walk.as_ref().map_or(0, |(b, _)| b.len()),
            _ => 0,
        }
    }
}

// ---------------------------------------------------------------- framing

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete payload arrived.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly (EOF before any header
    /// byte).
    Eof,
    /// The read timed out before any header byte arrived — the connection
    /// is idle, not broken. (A timeout *mid-frame* is an error instead:
    /// the stream can no longer be re-synchronized.)
    Idle,
}

/// A framing-level receive failure.
#[derive(Debug)]
pub enum FrameError {
    /// The declared payload length exceeds `max_len`. The stream cannot be
    /// resynchronized (the payload was not consumed); the connection must
    /// be closed after reporting the error.
    Oversized(u32),
    /// The underlying transport failed (including timeouts mid-frame).
    Io(io::Error),
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "oversized frame: {n} bytes"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Write one frame: length prefix then payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, distinguishing clean EOF and idle timeouts (both only
/// *before* the first header byte) from transport failures. An empty frame
/// (`len == 0`) and an overlong one are both [`FrameError::Oversized`]-class
/// protocol violations; zero length is reported as `Oversized(0)` since the
/// stream stays synchronized either way only for well-formed lengths.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<FrameEvent, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(FrameEvent::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) && got == 0 => return Ok(FrameEvent::Idle),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len == 0 || len > max_len {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(FrameEvent::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Incident(Point::new(-5, 7)),
            Request::Second {
                id: SegId(42),
                at: Point::new(0, i32::MIN),
            },
            Request::Nearest(Point::new(i32::MAX, -1)),
            Request::Knn {
                at: Point::new(3, 4),
                k: 17,
            },
            Request::Window(Rect::new(-10, -10, 10, 10)),
            Request::Polygon {
                at: Point::new(1, 2),
                max_steps: 6000,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for r in reqs {
            let bytes = r.encode();
            assert!(bytes.len() <= MAX_REQUEST_FRAME as usize);
            assert_eq!(Request::decode(&bytes).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn reply_roundtrip() {
        let stats = QueryStats {
            disk: DiskStats {
                reads: 3,
                writes: 1,
            },
            seg_comps: 12,
            bbox_comps: 99,
            seg_disk: DiskStats {
                reads: 2,
                writes: 0,
            },
        };
        let replies = [
            Reply::Pong,
            Reply::Segs {
                ids: vec![SegId(1), SegId(9)],
                stats,
            },
            Reply::Segs { ids: vec![], stats },
            Reply::Nearest {
                id: Some(SegId(7)),
                stats,
            },
            Reply::Nearest { id: None, stats },
            Reply::Polygon {
                walk: Some((vec![SegId(3), SegId(3), SegId(5)], true)),
                stats,
            },
            Reply::Polygon {
                walk: Some((vec![], false)),
                stats,
            },
            Reply::Polygon { walk: None, stats },
            Reply::Stats {
                queries: 12345,
                totals: stats,
            },
            Reply::Bye,
            Reply::Error {
                code: ErrorCode::UnknownOp,
                message: "nope".into(),
            },
        ];
        for r in replies {
            assert_eq!(Reply::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        for r in [
            Request::Incident(Point::new(1, 2)).encode(),
            Request::Window(Rect::new(0, 0, 4, 4)).encode(),
            Request::Knn {
                at: Point::new(0, 0),
                k: 3,
            }
            .encode(),
        ] {
            for cut in 0..r.len() {
                let e = Request::decode(&r[..cut]);
                assert!(e.is_err(), "cut at {cut} must fail");
            }
        }
        assert_eq!(Request::decode(&[]), Err(ProtoError::Empty));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Nearest(Point::new(1, 1)).encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtoError::Trailing { .. })
        ));
    }

    #[test]
    fn garbage_bytes_never_panic() {
        // A tiny deterministic fuzz: xorshift bytes at every length up to
        // a window request's size.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        for len in 0..64usize {
            for _ in 0..64 {
                let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
                let _ = Request::decode(&bytes); // must not panic
                let _ = Reply::decode(&bytes); // must not panic
            }
        }
    }

    #[test]
    fn frame_io_roundtrip() {
        let payload = Request::Window(Rect::new(1, 2, 3, 4)).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        match read_frame(&mut r, MAX_REQUEST_FRAME).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, payload),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut r, MAX_REQUEST_FRAME).unwrap() {
            FrameEvent::Eof => {}
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn oversized_and_zero_length_frames_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_REQUEST_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            read_frame(&mut &wire[..], MAX_REQUEST_FRAME),
            Err(FrameError::Oversized(n)) if n == MAX_REQUEST_FRAME + 1
        ));
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &zero[..], MAX_REQUEST_FRAME),
            Err(FrameError::Oversized(0))
        ));
    }

    #[test]
    fn mid_header_and_mid_payload_eof_are_errors() {
        let wire = [5u8, 0]; // half a header
        assert!(matches!(
            read_frame(&mut &wire[..], 64),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(&[1, 2, 3]); // 3 of 8 payload bytes
        assert!(matches!(
            read_frame(&mut &wire[..], 64),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }
}
