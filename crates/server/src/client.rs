//! Blocking client for the `lsdb` wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests
//! synchronously — the closed-loop shape the load generator and the CLI
//! both want. Server-side error frames surface as
//! [`std::io::ErrorKind::Other`] errors carrying the structured code and
//! message.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, FrameEvent, Reply, Request, MAX_REPLY_FRAME,
};
use lsdb_core::{QueryStats, SegId};
use lsdb_geom::{Point, Rect};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A server-reported error frame, preserved through [`io::Error`].
#[derive(Clone, Debug)]
pub struct ServerError {
    pub code: ErrorCode,
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error ({:?}): {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with default timeouts (10 s read and write).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit read/write timeout.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Issue one request and wait for its reply. Error frames are
    /// returned as `Err`, so `Ok` replies are always answers.
    pub fn call(&mut self, req: &Request) -> io::Result<Reply> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = match read_frame(&mut self.stream, MAX_REPLY_FRAME) {
            Ok(FrameEvent::Frame(p)) => p,
            Ok(FrameEvent::Eof) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                ))
            }
            Ok(FrameEvent::Idle) => {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "reply timed out"))
            }
            Err(FrameError::Oversized(n)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("oversized reply frame: {n} bytes"),
                ))
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        match Reply::decode(&payload) {
            Ok(Reply::Error { code, message }) => {
                Err(io::Error::other(ServerError { code, message }))
            }
            Ok(reply) => Ok(reply),
            Err(e) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("undecodable reply: {e}"),
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 1.
    pub fn incident(&mut self, p: Point) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&Request::Incident(p))? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 2.
    pub fn second_endpoint(
        &mut self,
        id: SegId,
        at: Point,
    ) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&Request::Second { id, at })? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 3.
    pub fn nearest(&mut self, p: Point) -> io::Result<(Option<SegId>, QueryStats)> {
        match self.call(&Request::Nearest(p))? {
            Reply::Nearest { id, stats } => Ok((id, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ranked query 3.
    pub fn nearest_k(&mut self, p: Point, k: u32) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&Request::Knn { at: p, k })? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 5.
    pub fn window(&mut self, w: Rect) -> io::Result<(Vec<SegId>, QueryStats)> {
        match self.call(&Request::Window(w))? {
            Reply::Segs { ids, stats } => Ok((ids, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query 4: boundary edges in traversal order plus the closed flag.
    #[allow(clippy::type_complexity)]
    pub fn enclosing_polygon(
        &mut self,
        p: Point,
        max_steps: u32,
    ) -> io::Result<(Option<(Vec<SegId>, bool)>, QueryStats)> {
        match self.call(&Request::Polygon { at: p, max_steps })? {
            Reply::Polygon { walk, stats } => Ok((walk, stats)),
            other => Err(unexpected(&other)),
        }
    }

    /// Server-wide `(queries served, summed counters)`.
    pub fn stats(&mut self) -> io::Result<(u64, QueryStats)> {
        match self.call(&Request::Stats)? {
            Reply::Stats { queries, totals } => Ok((queries, totals)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and exit. The server acknowledges with
    /// `BYE` and then closes this connection.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Reply::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("reply does not match the request: {reply:?}"),
    )
}
